//! Pruned landmark labeling (2-hop labels).
//!
//! The paper introduces NL/NLRNL "inspired by the 1-hop or 2-hop label
//! index [37]" but never compares against an actual 2-hop labeling. This
//! module fills that gap with the standard **pruned landmark labeling**
//! (Akiba, Iwata, Yoshida, SIGMOD'13) scheme, built from scratch:
//!
//! * every vertex `v` holds a label `L(v)` = sorted list of
//!   `(hub, distance)` pairs;
//! * `Dis(u, v) = min over common hubs h of L(u)[h] + L(v)[h]`;
//! * hubs are processed in degree-descending order, and a hub's BFS is
//!   *pruned* wherever the labels built so far already certify a distance
//!   no longer than the current one — which is what keeps labels small on
//!   small-world graphs.
//!
//! The `ablation_oracles` bench compares it against NL/NLRNL; it answers
//! exactly like them but with O(|L(u)| + |L(v)|) merge cost per query and
//! typically far less space than NLRNL on large sparse graphs.
//!
//! ## Parallel construction
//!
//! [`PllIndex::build_parallel`] partitions the hub order into fixed-size
//! batches: every hub of a batch runs its pruned BFS concurrently against
//! the *frozen* labels of all earlier batches (over
//! [`ktg_common::parallel::scope_join`]), then the batch's tentative
//! labels merge sequentially in hub-rank order, re-pruning each entry
//! against everything merged so far (including earlier hubs of the same
//! batch). Because the batch boundaries are a fixed constant — never a
//! function of the worker count — the label set is **deterministic**:
//! byte-identical for every `KTG_THREADS`. Pruning against a rank prefix
//! is the standard batch-PLL relaxation: the labels can be a slight
//! superset of the strictly-sequential ones (an in-batch subtree cut is
//! replaced by per-vertex certification at merge time), but every stored
//! distance is exact and queries return identical answers — the tests
//! below enforce both against [`ExactOracle`](crate::ExactOracle) ground
//! truth.

use crate::oracle::DistanceOracle;
use crate::space::{BuildStats, IndexSpace};
use ktg_common::parallel::{chunk_size, scope_join, worker_count};
use ktg_common::id::vertex_range;
use ktg_common::{Stopwatch, VertexId};
use ktg_graph::Adjacency;

/// Hubs per parallel construction batch. A fixed constant (never derived
/// from the worker count) so the produced labels are identical for every
/// thread setting; 64 keeps per-batch spawn overhead negligible while
/// giving each worker several pruned BFS traversals per join.
const BUILD_BATCH: usize = 64;

/// A pruned-landmark-labeling distance oracle.
pub struct PllIndex {
    /// Per-vertex labels: `(hub rank, distance)`, sorted by hub rank.
    /// Hub *ranks* (position in the processing order) rather than raw ids
    /// keep the merge comparisons cache-friendly and the lists naturally
    /// sorted (a hub only ever appends to labels after all earlier hubs).
    labels: Vec<Vec<(u32, u32)>>,
    stats: BuildStats,
}

/// Reusable per-worker state for one pruned BFS traversal.
struct BfsScratch {
    /// Hub-rank-indexed distances of the current hub's own labels.
    dist_to_hub: Vec<u32>,
    visited_dist: Vec<u32>,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
    touched: Vec<usize>,
}

impl BfsScratch {
    fn new(n: usize) -> Self {
        BfsScratch {
            dist_to_hub: vec![u32::MAX; n],
            visited_dist: vec![u32::MAX; n],
            frontier: Vec::new(),
            next: Vec::new(),
            touched: Vec::new(),
        }
    }
}

/// Pruned BFS from `hub` against the *frozen* `labels`, collecting the
/// surviving `(vertex, depth)` pairs in BFS visit order instead of
/// committing them — the caller merges (and re-prunes) them afterwards.
fn pruned_bfs<A: Adjacency>(
    graph: &A,
    labels: &[Vec<(u32, u32)>],
    hub: VertexId,
    scratch: &mut BfsScratch,
    out: &mut Vec<(VertexId, u32)>,
) {
    let BfsScratch { dist_to_hub, visited_dist, frontier, next, touched } = scratch;
    out.clear();
    for &(h, d) in &labels[hub.index()] {
        dist_to_hub[h as usize] = d;
    }
    frontier.clear();
    frontier.push(hub);
    visited_dist[hub.index()] = 0;
    touched.push(hub.index());
    let mut depth = 0u32;
    while !frontier.is_empty() {
        next.clear();
        for &u in frontier.iter() {
            let certified = labels[u.index()]
                .iter()
                .filter_map(|&(h, d)| {
                    let dh = dist_to_hub[h as usize];
                    // `then` (not `then_some`): the sum must stay lazy or
                    // it overflows on the MAX sentinel.
                    (dh != u32::MAX).then(|| dh + d)
                })
                .min()
                .unwrap_or(u32::MAX);
            if certified <= depth {
                continue;
            }
            out.push((u, depth));
            graph.for_each_neighbor(u, |w| {
                if visited_dist[w.index()] == u32::MAX {
                    visited_dist[w.index()] = depth + 1;
                    touched.push(w.index());
                    next.push(w);
                }
            });
        }
        std::mem::swap(frontier, next);
        depth += 1;
    }
    for &(h, _) in &labels[hub.index()] {
        dist_to_hub[h as usize] = u32::MAX;
    }
    for &i in touched.iter() {
        visited_dist[i] = u32::MAX;
    }
    touched.clear();
}

impl PllIndex {
    /// Builds the labeling with one pruned BFS per vertex, in
    /// degree-descending hub order.
    pub fn build<A: Adjacency>(graph: &A) -> Self {
        let start = Stopwatch::start();
        let n = graph.num_vertices();
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        // Hub order: degree descending, id ascending for determinism.
        let mut order: Vec<VertexId> = vertex_range(n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));

        let mut dist_to_hub: Vec<u32> = vec![u32::MAX; n]; // scratch: hub's own label lookup
        let mut frontier: Vec<VertexId> = Vec::new();
        let mut next: Vec<VertexId> = Vec::new();
        let mut visited_dist: Vec<u32> = vec![u32::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut entries = 0usize;

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            // Load the hub's current labels into the scratch array for
            // O(1) pruning queries.
            for &(h, d) in &labels[hub.index()] {
                dist_to_hub[h as usize] = d;
            }

            frontier.clear();
            frontier.push(hub);
            visited_dist[hub.index()] = 0;
            touched.push(hub.index());
            let mut depth = 0u32;
            while !frontier.is_empty() {
                next.clear();
                for &u in &frontier {
                    // Pruning: if existing labels already certify
                    // Dis(hub, u) ≤ depth, the subtree is redundant.
                    let certified = labels[u.index()]
                        .iter()
                        .filter_map(|&(h, d)| {
                            let dh = dist_to_hub[h as usize];
                            // `then` (not `then_some`): the sum must stay
                            // lazy or it overflows on the MAX sentinel.
                            (dh != u32::MAX).then(|| dh + d)
                        })
                        .min()
                        .unwrap_or(u32::MAX);
                    if certified <= depth {
                        continue;
                    }
                    // New label for u.
                    labels[u.index()].push((rank, depth));
                    entries += 1;
                    let (visited_dist, touched, next) =
                        (&mut visited_dist, &mut touched, &mut next);
                    graph.for_each_neighbor(u, |w| {
                        if visited_dist[w.index()] == u32::MAX {
                            visited_dist[w.index()] = depth + 1;
                            touched.push(w.index());
                            next.push(w);
                        }
                    });
                }
                std::mem::swap(&mut frontier, &mut next);
                depth += 1;
            }

            // Clear scratch.
            for &(h, _) in &labels[hub.index()] {
                dist_to_hub[h as usize] = u32::MAX;
            }
            // The hub's own (rank, 0) label was added in the loop above.
            dist_to_hub[rank as usize] = u32::MAX;
            for &i in &touched {
                visited_dist[i] = u32::MAX;
            }
            touched.clear();
        }

        PllIndex { labels, stats: BuildStats { elapsed: start.elapsed(), traversals: n, entries } }
    }

    /// Builds the labeling with batched parallel pruned BFS (module docs).
    /// Deterministic: the label set depends only on the graph, never on
    /// the worker count.
    pub fn build_parallel<A: Adjacency + Sync>(graph: &A) -> Self {
        Self::build_parallel_with(graph, worker_count())
    }

    /// [`build_parallel`](Self::build_parallel) with an explicit worker
    /// count — exposed so tests can prove thread-count independence
    /// without racing on the `KTG_THREADS` environment variable.
    pub fn build_parallel_with<A: Adjacency + Sync>(graph: &A, workers: usize) -> Self {
        let start = Stopwatch::start();
        let n = graph.num_vertices();
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        // Same hub order as the sequential build: degree descending, id
        // ascending.
        let mut order: Vec<VertexId> = vertex_range(n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));

        let mut entries = 0usize;
        let mut merge_scratch: Vec<u32> = vec![u32::MAX; n];
        let mut base = 0usize;
        for batch in order.chunks(BUILD_BATCH) {
            // Parallel phase: every hub of the batch prunes against the
            // frozen labels of *earlier batches only*. Chunk boundaries
            // affect scheduling, not results — each hub's traversal reads
            // the same frozen prefix, and `scope_join` returns in task
            // order.
            let chunk = chunk_size(batch.len(), workers);
            let frozen = &labels;
            let tentative: Vec<Vec<(VertexId, u32)>> =
                scope_join(batch.chunks(chunk).map(|hubs| {
                    move || {
                        let mut scratch = BfsScratch::new(n);
                        hubs.iter()
                            .map(|&hub| {
                                let mut collected = Vec::new();
                                pruned_bfs(graph, frozen, hub, &mut scratch, &mut collected);
                                collected
                            })
                            .collect::<Vec<_>>()
                    }
                }))
                .into_iter()
                .flatten()
                .collect();

            // Sequential merge in hub-rank order. Each entry is re-pruned
            // against everything merged so far — including earlier hubs
            // of this batch — which restores the certificates the frozen
            // prefix could not see. A hub's own `(rank, 0)` entry always
            // survives: a zero certificate would need a distance-0 label
            // from an earlier hub, which only the vertex itself can hold.
            for (offset, (&hub, collected)) in batch.iter().zip(&tentative).enumerate() {
                let rank = (base + offset) as u32;
                for &(h, d) in &labels[hub.index()] {
                    merge_scratch[h as usize] = d;
                }
                for &(v, depth) in collected {
                    let certified = labels[v.index()]
                        .iter()
                        .filter_map(|&(h, d)| {
                            let dh = merge_scratch[h as usize];
                            (dh != u32::MAX).then(|| dh + d)
                        })
                        .min()
                        .unwrap_or(u32::MAX);
                    if certified <= depth {
                        continue;
                    }
                    labels[v.index()].push((rank, depth));
                    entries += 1;
                }
                for &(h, _) in &labels[hub.index()] {
                    merge_scratch[h as usize] = u32::MAX;
                }
            }
            base += batch.len();
        }

        PllIndex { labels, stats: BuildStats { elapsed: start.elapsed(), traversals: n, entries } }
    }

    /// Reassembles an index from persisted label lists (`persist::load_pll`).
    pub fn from_parts(labels: Vec<Vec<(u32, u32)>>, stats: BuildStats) -> Self {
        PllIndex { labels, stats }
    }

    /// Per-vertex label lists, sorted by hub rank (for persistence).
    pub fn labels(&self) -> &[Vec<(u32, u32)>] {
        &self.labels
    }

    /// Distances from `u` to every vertex of `targets`, written into
    /// `out` (`u32::MAX` = unreachable). One hub-scratch load of `u`'s
    /// labels amortizes each probe to O(|L(v)|). `hub_scratch` must be
    /// empty on first use or reused from a previous call on the same
    /// index; it is restored to all-`MAX` before returning.
    pub fn distances_into(
        &self,
        u: VertexId,
        targets: &[VertexId],
        hub_scratch: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        hub_scratch.resize(self.labels.len(), u32::MAX);
        for &(h, d) in &self.labels[u.index()] {
            hub_scratch[h as usize] = d;
        }
        out.clear();
        for &v in targets {
            if v == u {
                out.push(0);
                continue;
            }
            let mut best = u32::MAX;
            for &(h, d) in &self.labels[v.index()] {
                let dh = hub_scratch[h as usize];
                if dh != u32::MAX {
                    best = best.min(dh + d);
                }
            }
            out.push(best);
        }
        for &(h, _) in &self.labels[u.index()] {
            hub_scratch[h as usize] = u32::MAX;
        }
    }

    /// Exact distance via sorted-label merge; `None` when unreachable.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let (a, b) = (&self.labels[u.index()], &self.labels[v.index()]);
        let mut best = u32::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        (best != u32::MAX).then_some(best)
    }

    /// Total label entries (the classic PLL size metric).
    pub fn label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Storage breakdown.
    pub fn space(&self) -> IndexSpace {
        IndexSpace {
            forward_bytes: self.label_entries() * std::mem::size_of::<(u32, u32)>(),
            reverse_bytes: 0,
            aux_bytes: self.labels.capacity() * std::mem::size_of::<Vec<(u32, u32)>>(),
        }
    }

    /// Construction statistics.
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }
}

impl DistanceOracle for PllIndex {
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        match self.distance(u, v) {
            None => true,
            Some(d) => d > k,
        }
    }

    fn name(&self) -> &'static str {
        "pll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::CsrGraph;
    use crate::exact::ExactOracle;

    fn assert_matches_exact(g: &CsrGraph) {
        let pll = PllIndex::build(g);
        let par = PllIndex::build_parallel_with(g, 3);
        let exact = ExactOracle::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                let truth = exact.distance(u, v);
                let got = pll.distance(u, v);
                let got_par = par.distance(u, v);
                if truth == u32::MAX {
                    assert_eq!(got, None, "({u:?}, {v:?})");
                } else {
                    assert_eq!(got, Some(truth), "({u:?}, {v:?})");
                }
                assert_eq!(got_par, got, "parallel build ({u:?}, {v:?})");
            }
        }
    }

    #[test]
    fn path_distances() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn star_distances() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn disconnected_distances() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn cycle_distances() {
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)],
        )
        .unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn dense_core_with_pendants() {
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (6, 0), (7, 6)],
        )
        .unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn pruning_keeps_labels_small_on_star() {
        // On a star, the hub covers everything: every leaf should hold
        // only its own label plus the hub's — 2 entries — and the hub 1.
        let g = CsrGraph::from_edges(9, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8)]).unwrap();
        let pll = PllIndex::build(&g);
        assert_eq!(pll.label_entries(), 1 + 8 * 2, "hub: 1, each leaf: 2");
    }

    fn random_graph(n: usize, edges: usize, seed: u64) -> CsrGraph {
        let mut rng = ktg_common::rng::Xoshiro256pp::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < edges {
            let u = rng.bounded_u64(n as u64) as u32;
            let v = rng.bounded_u64(n as u64) as u32;
            if u != v {
                set.insert((u.min(v), u.max(v)));
            }
        }
        let list: Vec<(u32, u32)> = set.into_iter().collect();
        CsrGraph::from_edges(n, &list).unwrap()
    }

    #[test]
    fn parallel_build_matches_exact_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(60, 110, 0x9E37_79B9 ^ seed);
            assert_matches_exact(&g);
        }
    }

    #[test]
    fn parallel_build_is_thread_count_independent() {
        // The label *structure* (not just the distances) must be
        // byte-identical for every worker count: batches are fixed-size
        // and the merge is sequential in hub-rank order.
        let g = random_graph(80, 160, 0xC0FF_EE00);
        let one = PllIndex::build_parallel_with(&g, 1);
        for workers in [2usize, 3, 8, 19] {
            let many = PllIndex::build_parallel_with(&g, workers);
            assert_eq!(one.labels, many.labels, "workers={workers}");
        }
    }

    #[test]
    fn distances_into_matches_pointwise_queries() {
        let g = random_graph(50, 80, 42);
        let pll = PllIndex::build_parallel_with(&g, 2);
        let targets: Vec<VertexId> = g.vertices().collect();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for u in g.vertices() {
            pll.distances_into(u, &targets, &mut scratch, &mut out);
            for (&v, &d) in targets.iter().zip(&out) {
                assert_eq!(pll.distance(u, v), (d != u32::MAX).then_some(d), "({u:?},{v:?})");
            }
        }
        assert!(scratch.iter().all(|&d| d == u32::MAX), "scratch restored");
    }

    #[test]
    fn farther_than_semantics() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let pll = PllIndex::build(&g);
        assert!(pll.farther_than(VertexId(0), VertexId(2), 1));
        assert!(!pll.farther_than(VertexId(0), VertexId(2), 2));
        assert!(pll.farther_than(VertexId(0), VertexId(3), 99), "unreachable");
        assert!(!pll.farther_than(VertexId(3), VertexId(3), 0));
    }
}

//! Pruned landmark labeling (2-hop labels).
//!
//! The paper introduces NL/NLRNL "inspired by the 1-hop or 2-hop label
//! index [37]" but never compares against an actual 2-hop labeling. This
//! module fills that gap with the standard **pruned landmark labeling**
//! (Akiba, Iwata, Yoshida, SIGMOD'13) scheme, built from scratch:
//!
//! * every vertex `v` holds a label `L(v)` = sorted list of
//!   `(hub, distance)` pairs;
//! * `Dis(u, v) = min over common hubs h of L(u)[h] + L(v)[h]`;
//! * hubs are processed in degree-descending order, and a hub's BFS is
//!   *pruned* wherever the labels built so far already certify a distance
//!   no longer than the current one — which is what keeps labels small on
//!   small-world graphs.
//!
//! The `ablation_oracles` bench compares it against NL/NLRNL; it answers
//! exactly like them but with O(|L(u)| + |L(v)|) merge cost per query and
//! typically far less space than NLRNL on large sparse graphs.

use crate::oracle::DistanceOracle;
use crate::space::{BuildStats, IndexSpace};
use ktg_common::{Stopwatch, VertexId};
use ktg_graph::CsrGraph;

/// A pruned-landmark-labeling distance oracle.
pub struct PllIndex {
    /// Per-vertex labels: `(hub rank, distance)`, sorted by hub rank.
    /// Hub *ranks* (position in the processing order) rather than raw ids
    /// keep the merge comparisons cache-friendly and the lists naturally
    /// sorted (a hub only ever appends to labels after all earlier hubs).
    labels: Vec<Vec<(u32, u32)>>,
    stats: BuildStats,
}

impl PllIndex {
    /// Builds the labeling with one pruned BFS per vertex, in
    /// degree-descending hub order.
    pub fn build(graph: &CsrGraph) -> Self {
        let start = Stopwatch::start();
        let n = graph.num_vertices();
        let mut labels: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        // Hub order: degree descending, id ascending for determinism.
        let mut order: Vec<VertexId> = graph.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));

        let mut dist_to_hub: Vec<u32> = vec![u32::MAX; n]; // scratch: hub's own label lookup
        let mut frontier: Vec<VertexId> = Vec::new();
        let mut next: Vec<VertexId> = Vec::new();
        let mut visited_dist: Vec<u32> = vec![u32::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut entries = 0usize;

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            // Load the hub's current labels into the scratch array for
            // O(1) pruning queries.
            for &(h, d) in &labels[hub.index()] {
                dist_to_hub[h as usize] = d;
            }

            frontier.clear();
            frontier.push(hub);
            visited_dist[hub.index()] = 0;
            touched.push(hub.index());
            let mut depth = 0u32;
            while !frontier.is_empty() {
                next.clear();
                for &u in &frontier {
                    // Pruning: if existing labels already certify
                    // Dis(hub, u) ≤ depth, the subtree is redundant.
                    let certified = labels[u.index()]
                        .iter()
                        .filter_map(|&(h, d)| {
                            let dh = dist_to_hub[h as usize];
                            // `then` (not `then_some`): the sum must stay
                            // lazy or it overflows on the MAX sentinel.
                            (dh != u32::MAX).then(|| dh + d)
                        })
                        .min()
                        .unwrap_or(u32::MAX);
                    if certified <= depth {
                        continue;
                    }
                    // New label for u.
                    labels[u.index()].push((rank, depth));
                    entries += 1;
                    for &w in graph.neighbors(u) {
                        if visited_dist[w.index()] == u32::MAX {
                            visited_dist[w.index()] = depth + 1;
                            touched.push(w.index());
                            next.push(w);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                depth += 1;
            }

            // Clear scratch.
            for &(h, _) in &labels[hub.index()] {
                dist_to_hub[h as usize] = u32::MAX;
            }
            // The hub's own (rank, 0) label was added in the loop above.
            dist_to_hub[rank as usize] = u32::MAX;
            for &i in &touched {
                visited_dist[i] = u32::MAX;
            }
            touched.clear();
        }

        PllIndex { labels, stats: BuildStats { elapsed: start.elapsed(), traversals: n, entries } }
    }

    /// Exact distance via sorted-label merge; `None` when unreachable.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let (a, b) = (&self.labels[u.index()], &self.labels[v.index()]);
        let mut best = u32::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        (best != u32::MAX).then_some(best)
    }

    /// Total label entries (the classic PLL size metric).
    pub fn label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Storage breakdown.
    pub fn space(&self) -> IndexSpace {
        IndexSpace {
            forward_bytes: self.label_entries() * std::mem::size_of::<(u32, u32)>(),
            reverse_bytes: 0,
            aux_bytes: self.labels.capacity() * std::mem::size_of::<Vec<(u32, u32)>>(),
        }
    }

    /// Construction statistics.
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }
}

impl DistanceOracle for PllIndex {
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        match self.distance(u, v) {
            None => true,
            Some(d) => d > k,
        }
    }

    fn name(&self) -> &'static str {
        "pll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;

    fn assert_matches_exact(g: &CsrGraph) {
        let pll = PllIndex::build(g);
        let exact = ExactOracle::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                let truth = exact.distance(u, v);
                let got = pll.distance(u, v);
                if truth == u32::MAX {
                    assert_eq!(got, None, "({u:?}, {v:?})");
                } else {
                    assert_eq!(got, Some(truth), "({u:?}, {v:?})");
                }
            }
        }
    }

    #[test]
    fn path_distances() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn star_distances() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn disconnected_distances() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn cycle_distances() {
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)],
        )
        .unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn dense_core_with_pendants() {
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (6, 0), (7, 6)],
        )
        .unwrap();
        assert_matches_exact(&g);
    }

    #[test]
    fn pruning_keeps_labels_small_on_star() {
        // On a star, the hub covers everything: every leaf should hold
        // only its own label plus the hub's — 2 entries — and the hub 1.
        let g = CsrGraph::from_edges(9, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8)]).unwrap();
        let pll = PllIndex::build(&g);
        assert_eq!(pll.label_entries(), 1 + 8 * 2, "hub: 1, each leaf: 2");
    }

    #[test]
    fn farther_than_semantics() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let pll = PllIndex::build(&g);
        assert!(pll.farther_than(VertexId(0), VertexId(2), 1));
        assert!(!pll.farther_than(VertexId(0), VertexId(2), 2));
        assert!(pll.farther_than(VertexId(0), VertexId(3), 99), "unreachable");
        assert!(!pll.farther_than(VertexId(3), VertexId(3), 0));
    }
}

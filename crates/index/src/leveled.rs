//! Compact per-vertex hop-level lists.
//!
//! Both the NL and NLRNL indexes store, per vertex, a sequence of hop
//! levels, each a sorted vertex list. [`LeveledList`] packs one vertex's
//! levels into a single allocation (concatenated data + level boundaries)
//! — two boxed slices instead of a `Vec<Vec<_>>` per vertex, which matters
//! when the index covers hundreds of thousands of vertices.

use ktg_common::VertexId;

/// A sequence of sorted hop-level lists packed into one allocation.
///
/// Levels are addressed 1-based by the *caller's* numbering: the structure
/// itself stores `num_levels` consecutive levels and leaves their semantic
/// offset (NL starts at hop 1, NLRNL reverse lists start at hop `c+1`) to
/// the owning index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeveledList {
    data: Box<[VertexId]>,
    /// `bounds[i]` = end offset (exclusive) of level `i` in `data`;
    /// level `i` spans `bounds[i-1]..bounds[i]` with `bounds[-1] = 0`.
    bounds: Box<[u32]>,
}

impl LeveledList {
    /// Builds from explicit levels. Each level must be sorted (checked in
    /// debug builds).
    pub fn from_levels(levels: &[Vec<VertexId>]) -> Self {
        let total: usize = levels.iter().map(Vec::len).sum();
        debug_assert!(total <= u32::MAX as usize);
        let mut data = Vec::with_capacity(total);
        let mut bounds = Vec::with_capacity(levels.len());
        for level in levels {
            debug_assert!(level.windows(2).all(|w| w[0] < w[1]), "level not sorted");
            data.extend_from_slice(level);
            bounds.push(data.len() as u32);
        }
        LeveledList { data: data.into_boxed_slice(), bounds: bounds.into_boxed_slice() }
    }

    /// Number of levels held.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.bounds.len()
    }

    /// The sorted list at 0-based slot `slot` (empty slice if out of range).
    #[inline]
    pub fn level(&self, slot: usize) -> &[VertexId] {
        if slot >= self.bounds.len() {
            return &[];
        }
        let start = if slot == 0 { 0 } else { self.bounds[slot - 1] as usize };
        &self.data[start..self.bounds[slot] as usize]
    }

    /// Binary-searches `v` in slot `slot`.
    #[inline]
    pub fn contains(&self, slot: usize, v: VertexId) -> bool {
        self.level(slot).binary_search(&v).is_ok()
    }

    /// Searches `v` across slots `0..=max_slot`, returning the slot where
    /// found.
    #[inline]
    pub fn find_up_to(&self, max_slot: usize, v: VertexId) -> Option<usize> {
        let end = max_slot.min(self.bounds.len().saturating_sub(1));
        if self.bounds.is_empty() {
            return None;
        }
        (0..=end).find(|&s| self.contains(s, v))
    }

    /// Total entries across all levels.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// The concatenated level data (persistence).
    #[inline]
    pub fn raw_data(&self) -> &[VertexId] {
        &self.data
    }

    /// The per-level end offsets (persistence).
    #[inline]
    pub fn raw_bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Reassembles a list from its packed parts, validating that the
    /// bounds are monotonic, the final bound covers `data` exactly, and
    /// every level is strictly sorted.
    ///
    /// # Errors
    /// [`ktg_common::KtgError::InvalidInput`] on any structural violation.
    pub fn from_flat(data: Vec<VertexId>, bounds: Vec<u32>) -> ktg_common::Result<Self> {
        let total = data.len();
        if total > u32::MAX as usize {
            return Err(ktg_common::KtgError::input("leveled list data exceeds u32 offsets"));
        }
        let mut prev = 0u32;
        for &b in &bounds {
            if b < prev || b as usize > total {
                return Err(ktg_common::KtgError::input("leveled list bounds not monotonic"));
            }
            if !data[prev as usize..b as usize].windows(2).all(|w| w[0] < w[1]) {
                return Err(ktg_common::KtgError::input("leveled list level not sorted"));
            }
            prev = b;
        }
        if bounds.last().copied().unwrap_or(0) as usize != total {
            return Err(ktg_common::KtgError::input("leveled list bounds do not cover data"));
        }
        Ok(LeveledList { data: data.into_boxed_slice(), bounds: bounds.into_boxed_slice() })
    }

    /// Heap bytes used by this list.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<VertexId>()
            + self.bounds.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn levels_roundtrip() {
        let ll = LeveledList::from_levels(&[v(&[1, 3]), v(&[]), v(&[0, 2, 9])]);
        assert_eq!(ll.num_levels(), 3);
        assert_eq!(ll.level(0), v(&[1, 3]).as_slice());
        assert_eq!(ll.level(1), &[]);
        assert_eq!(ll.level(2), v(&[0, 2, 9]).as_slice());
        assert_eq!(ll.level(3), &[], "out of range is empty");
        assert_eq!(ll.total_len(), 5);
    }

    #[test]
    fn contains_per_level() {
        let ll = LeveledList::from_levels(&[v(&[1, 3]), v(&[5])]);
        assert!(ll.contains(0, VertexId(3)));
        assert!(!ll.contains(0, VertexId(5)));
        assert!(ll.contains(1, VertexId(5)));
        assert!(!ll.contains(9, VertexId(5)));
    }

    #[test]
    fn find_up_to_scans_prefix() {
        let ll = LeveledList::from_levels(&[v(&[1]), v(&[2]), v(&[3])]);
        assert_eq!(ll.find_up_to(2, VertexId(3)), Some(2));
        assert_eq!(ll.find_up_to(1, VertexId(3)), None);
        assert_eq!(ll.find_up_to(10, VertexId(2)), Some(1), "clamped");
        assert_eq!(ll.find_up_to(10, VertexId(7)), None);
    }

    #[test]
    fn empty_list() {
        let ll = LeveledList::from_levels(&[]);
        assert_eq!(ll.num_levels(), 0);
        assert_eq!(ll.find_up_to(5, VertexId(0)), None);
        assert_eq!(ll.total_len(), 0);
    }
}

//! Self-contained dynamic NLRNL maintenance.
//!
//! [`crate::NlrnlIndex`]'s `prepare_update`/`apply_update` pair is
//! deliberately low-level: the caller owns the graph and must sequence
//! snapshot → mutate → apply correctly. [`DynamicNlrnl`] packages the
//! common case — one mutable graph with one index kept consistent — into
//! a misuse-proof API: `insert_edge`/`remove_edge` do all three steps.

use crate::nlrnl::NlrnlIndex;
use crate::oracle::DistanceOracle;
use ktg_common::{Result, VertexId};
use ktg_graph::{Adjacency, DynamicGraph};

/// A mutable graph bundled with an always-consistent NLRNL index.
pub struct DynamicNlrnl {
    graph: DynamicGraph,
    index: NlrnlIndex,
}

impl DynamicNlrnl {
    /// Builds from an initial graph (any [`Adjacency`] representation).
    pub fn new<A: Adjacency>(graph: &A) -> Self {
        let graph = DynamicGraph::from_graph(graph);
        let index = NlrnlIndex::build(&graph);
        DynamicNlrnl { graph, index }
    }

    /// Builds from a graph plus a pre-built index over that exact graph
    /// (the bundle-reload path: skip the per-vertex BFS construction).
    ///
    /// # Errors
    /// [`ktg_common::KtgError::IndexMismatch`] when the index covers a
    /// different vertex count than the graph.
    pub fn with_index<A: Adjacency>(graph: &A, index: NlrnlIndex) -> Result<Self> {
        if index.num_vertices() != graph.num_vertices() {
            return Err(ktg_common::KtgError::IndexMismatch(format!(
                "index covers {} vertices, graph has {}",
                index.num_vertices(),
                graph.num_vertices()
            )));
        }
        Ok(DynamicNlrnl { graph: DynamicGraph::from_graph(graph), index })
    }

    /// The current graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The current index.
    pub fn index(&self) -> &NlrnlIndex {
        &self.index
    }

    /// Inserts edge `{u, v}`, maintaining the index. Returns whether the
    /// edge was new (a duplicate insert leaves the index untouched).
    ///
    /// # Errors
    /// Propagates graph validation errors (range, self-loop).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        self.validate(u, v)?;
        if self.graph.has_edge(u, v) {
            return Ok(false);
        }
        let update = self.index.prepare_update(&self.graph, u, v);
        self.graph.insert_edge(u, v)?;
        self.index.apply_update(&self.graph, update);
        Ok(true)
    }

    /// Removes edge `{u, v}`, maintaining the index. Returns whether the
    /// edge existed.
    ///
    /// # Errors
    /// Propagates graph validation errors (range, self-loop).
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        self.validate(u, v)?;
        if !self.graph.has_edge(u, v) {
            return Ok(false);
        }
        let update = self.index.prepare_update(&self.graph, u, v);
        self.graph.remove_edge(u, v)?;
        self.index.apply_update(&self.graph, update);
        Ok(true)
    }

    /// Range/self-loop validation shared by both mutations (performed
    /// *before* any snapshotting so errors leave the pair untouched).
    fn validate(&self, u: VertexId, v: VertexId) -> Result<()> {
        let n = self.graph.num_vertices();
        if u.index() >= n || v.index() >= n {
            return Err(ktg_common::KtgError::input(format!(
                "edge ({u}, {v}) out of range for {n} vertices"
            )));
        }
        if u == v {
            return Err(ktg_common::KtgError::input(format!("self-loop at {u}")));
        }
        Ok(())
    }
}

impl DistanceOracle for DynamicNlrnl {
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        self.index.farther_than(u, v, k)
    }

    fn name(&self) -> &'static str {
        "nlrnl-dynamic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use ktg_graph::CsrGraph;

    fn check_consistency(d: &DynamicNlrnl) {
        let csr = d.graph().to_csr();
        let exact = ExactOracle::build(&csr);
        let n = csr.num_vertices();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                for k in 0..(n as u32 + 2) {
                    assert_eq!(
                        d.farther_than(VertexId(u), VertexId(v), k),
                        exact.farther_than(VertexId(u), VertexId(v), k),
                        "({u}, {v}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn stays_consistent_across_mutations() {
        let csr = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]).unwrap();
        let mut d = DynamicNlrnl::new(&csr);
        assert!(d.insert_edge(VertexId(3), VertexId(4)).unwrap());
        check_consistency(&d);
        assert!(d.remove_edge(VertexId(1), VertexId(2)).unwrap());
        check_consistency(&d);
        assert!(d.insert_edge(VertexId(0), VertexId(7)).unwrap());
        check_consistency(&d);
    }

    #[test]
    fn duplicate_operations_are_noops() {
        let csr = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut d = DynamicNlrnl::new(&csr);
        assert!(!d.insert_edge(VertexId(0), VertexId(1)).unwrap());
        assert!(!d.remove_edge(VertexId(1), VertexId(2)).unwrap());
        check_consistency(&d);
    }

    #[test]
    fn invalid_edges_propagate_errors() {
        let csr = CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
        let mut d = DynamicNlrnl::new(&csr);
        assert!(d.insert_edge(VertexId(0), VertexId(9)).is_err());
        assert!(d.remove_edge(VertexId(1), VertexId(1)).is_err());
    }
}

//! The **NL** index — per-vertex h-hop neighbor lists (paper §V-A).
//!
//! For every vertex the index stores the hop levels `1..=h`, where `h` is
//! chosen as *the level with the most neighbors* ("we choose the number of
//! m-hop neighbors with the maximal one as h value"). Checking whether
//! `Dis(u, v) > k` (Algorithm 2) then has two regimes:
//!
//! * `h ≥ k` — scan the stored levels `1..=k` for `v`; miss ⇒ farther.
//! * `h < k` — scan the stored levels, then **expand** level by level
//!   (neighbors of the current deepest level, minus everything already
//!   within it) up to level `k`. Expanded levels are cached back into the
//!   index, mirroring the paper's `L[u_j][j+1] = expandNeighbor(...)`
//!   assignment. This expansion is the cost the NLRNL index removes, and
//!   is why NL degrades for large `k` (paper Figure 7b).
//!
//! Unlike NLRNL, NL stores *full* lists — both directions of every pair —
//! which is why its space footprint is larger (paper Figure 9a).

use crate::leveled::LeveledList;
use crate::oracle::DistanceOracle;
use crate::space::{BuildStats, IndexSpace};
use ktg_common::{parallel, EpochMarker, FxHashMap, Stopwatch, VertexId};
use ktg_graph::{bfs, Adjacency, BfsScratch, CsrGraph};
use std::sync::{Mutex, MutexGuard};

/// Number of expansion-cache shards. Expansion state is keyed by the
/// *source* vertex, so striping the cache by a vertex-hash lets
/// concurrent queries (the batched executor fans out over workers that
/// share one index) expand different sources without serializing on a
/// single lock. A small fixed power of two keeps the shard pick one
/// multiply + shift.
const EXPANSION_SHARDS: usize = 16;

/// The NL (h-hop neighbors list) index.
pub struct NlIndex<'g, G: Adjacency = CsrGraph> {
    graph: &'g G,
    /// Per-vertex `h` (0 for isolated vertices).
    h: Vec<u32>,
    /// Per-vertex stored levels `1..=h` (slot `i` ⇔ hop `i + 1`).
    levels: Vec<LeveledList>,
    /// Query-time cache of expanded levels, striped by source-vertex
    /// hash: vertex → levels `h+1, h+2, …`. An empty level marks frontier
    /// exhaustion (all deeper levels empty).
    expanded: [Mutex<ExpansionShard>; EXPANSION_SHARDS],
    stats: BuildStats,
}

/// One stripe of the expansion cache. Each shard owns a private
/// [`EpochMarker`] (grown lazily to `|V|` on first expansion through the
/// shard, preserving the wrap-around epoch semantics), so concurrent
/// expansions in different shards never share marking state.
#[derive(Default)]
struct ExpansionShard {
    extra: FxHashMap<u32, Vec<Vec<VertexId>>>,
    marker: EpochMarker,
}

/// Fibonacci-hash shard pick for a source vertex.
#[inline]
fn shard_of(u: VertexId) -> usize {
    ((u.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % EXPANSION_SHARDS
}

impl<'g, G: Adjacency + Sync> NlIndex<'g, G> {
    /// Builds the index with one full BFS per vertex, parallelized across
    /// available cores.
    pub fn build(graph: &'g G) -> Self {
        let start = Stopwatch::start();
        let n = graph.num_vertices();
        let mut h = vec![0u32; n];
        let mut levels: Vec<LeveledList> = vec![LeveledList::default(); n];

        let chunk = parallel::chunk_size(n, parallel::worker_count());
        let entries: usize = parallel::scope_join(
            h.chunks_mut(chunk)
                .zip(levels.chunks_mut(chunk))
                .enumerate()
                .map(|(ci, (h_chunk, level_chunk))| {
                    move || {
                        let mut scratch = BfsScratch::new(n);
                        let base = ci * chunk;
                        let mut local_entries = 0usize;
                        for (off, (hv, lv)) in
                            h_chunk.iter_mut().zip(level_chunk.iter_mut()).enumerate()
                        {
                            let v = VertexId::new(base + off);
                            // The paper picks `h` as the widest level. Hop
                            // widths of small-world graphs are unimodal, so
                            // the traversal stops one level past the first
                            // width decrease — this truncation is what makes
                            // the NL build cheaper than NLRNL's full BFS
                            // (Figure 9b). A later width peak would merely
                            // pick a smaller `h`; correctness never depends
                            // on the choice (deeper levels expand on demand).
                            let mut levels =
                                bfs::collect_levels_while(graph, v, &mut scratch, |lv| {
                                    lv.len() < 2
                                        || lv[lv.len() - 1].len() >= lv[lv.len() - 2].len()
                                });
                            for level in &mut levels {
                                level.sort_unstable();
                            }
                            let chosen = argmax_level(&levels);
                            *hv = chosen as u32;
                            *lv = LeveledList::from_levels(&levels[..chosen]);
                            local_entries += lv.total_len();
                        }
                        local_entries
                    }
                }),
        )
        .into_iter()
        .sum();

        NlIndex {
            graph,
            h,
            levels,
            // Shard markers start empty and grow to |V| on first use, so
            // an index over a graph that never needs expansion pays no
            // per-shard arena cost.
            expanded: std::array::from_fn(|_| Mutex::new(ExpansionShard::default())),
            stats: BuildStats { elapsed: start.elapsed(), traversals: n, entries },
        }
    }

    /// Locks one expansion shard, recovering from poisoning: a panicking
    /// expander can leave at most a *shorter* cached prefix of levels,
    /// never an inconsistent one (levels are pushed fully formed).
    fn shard(&self, u: VertexId) -> MutexGuard<'_, ExpansionShard> {
        match self.expanded[shard_of(u)].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The per-vertex `h` value.
    pub fn h(&self, v: VertexId) -> u32 {
        self.h[v.index()]
    }

    /// Construction statistics.
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }

    /// Storage breakdown. NL has no reverse lists; the expansion cache is
    /// query-time state and reported under `aux_bytes`, summed across the
    /// shards.
    pub fn space(&self) -> IndexSpace {
        let forward_bytes: usize = self.levels.iter().map(LeveledList::heap_bytes).sum();
        let mut cache_bytes = 0usize;
        for shard in &self.expanded {
            let shard = match shard.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            cache_bytes += shard
                .extra
                .values()
                .flat_map(|lvls| lvls.iter())
                .map(|l| l.len() * std::mem::size_of::<VertexId>())
                .sum::<usize>();
        }
        IndexSpace {
            forward_bytes,
            reverse_bytes: 0,
            aux_bytes: self.h.len() * std::mem::size_of::<u32>() + cache_bytes,
        }
    }

    /// Algorithm 2: `true` iff `Dis(u, v) > k`, answered from `u`'s lists.
    fn check(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        if u == v {
            return false;
        }
        if k == 0 {
            return true; // distinct vertices are at distance ≥ 1 > 0
        }
        let h = self.h[u.index()];
        let lists = &self.levels[u.index()];
        if h >= k {
            // Case 1: everything we need is stored.
            return lists.find_up_to(k as usize - 1, v).is_none();
        }
        // Case 2: scan what is stored, then expand h+1 ..= k.
        if lists.find_up_to(h.saturating_sub(1) as usize, v).is_some() {
            return false;
        }
        self.check_with_expansion(u, v, k, h)
    }

    /// Expands `u`'s hop levels beyond `h` up to level `k`, caching the
    /// results, and reports whether `v` was found (⇒ within `k`).
    /// Only `u`'s shard is locked, so expansions from sources hashing to
    /// different stripes proceed concurrently.
    fn check_with_expansion(&self, u: VertexId, v: VertexId, k: u32, h: u32) -> bool {
        let mut shard = self.shard(u);
        let ExpansionShard { extra, marker } = &mut *shard;
        let extra = extra.entry(u.0).or_default();

        // Check already-cached expansion levels (h+1 ..= h+len).
        for (i, level) in extra.iter().enumerate() {
            if h + 1 + i as u32 > k {
                return true;
            }
            if level.binary_search(&v).is_ok() {
                return false;
            }
            if level.is_empty() {
                return true; // frontier exhausted earlier
            }
        }

        let mut depth = h + extra.len() as u32;
        if depth >= k {
            return true;
        }

        // Mark everything within `depth` hops of u.
        marker.grow(self.graph.num_vertices());
        marker.reset();
        marker.mark_vertex(u);
        let stored = &self.levels[u.index()];
        for slot in 0..stored.num_levels() {
            for &x in stored.level(slot) {
                marker.mark_vertex(x);
            }
        }
        for level in extra.iter() {
            for &x in level {
                marker.mark_vertex(x);
            }
        }

        while depth < k {
            // The current deepest level is the expansion frontier.
            let frontier: Vec<VertexId> = if depth == 0 {
                vec![u]
            } else if depth <= h {
                stored.level(depth as usize - 1).to_vec()
            } else {
                extra[(depth - h) as usize - 1].clone()
            };
            let mut next: Vec<VertexId> = Vec::new();
            for x in frontier {
                self.graph.for_each_neighbor(x, |y| {
                    if marker.mark_vertex(y) {
                        next.push(y);
                    }
                });
            }
            next.sort_unstable();
            let found = next.binary_search(&v).is_ok();
            let exhausted = next.is_empty();
            extra.push(next);
            depth += 1;
            if found {
                return false;
            }
            if exhausted {
                return true;
            }
        }
        true
    }
}

impl<G: Adjacency + Sync> DistanceOracle for NlIndex<'_, G> {
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        self.check(u, v, k)
    }

    fn name(&self) -> &'static str {
        "nl"
    }
}

/// 1-based index of the widest level (0 for no levels). Ties pick the
/// shallowest, maximizing how many checks stay in Case 1.
fn argmax_level(levels: &[Vec<VertexId>]) -> usize {
    let mut best = 0usize;
    let mut best_len = 0usize;
    for (i, level) in levels.iter().enumerate() {
        if level.len() > best_len {
            best_len = level.len();
            best = i + 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;

    /// Path 0-1-2-3-4-5 — distances are easy to eyeball; every level has
    /// width ≤ 2, h lands at 1.
    fn path6() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap()
    }

    fn assert_matches_exact(g: &CsrGraph, k_max: u32) {
        let nl = NlIndex::build(g);
        let exact = ExactOracle::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                for k in 0..=k_max {
                    assert_eq!(
                        nl.farther_than(u, v, k),
                        exact.farther_than(u, v, k),
                        "({u:?}, {v:?}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn path_all_pairs_all_k() {
        assert_matches_exact(&path6(), 7);
    }

    #[test]
    fn star_all_pairs() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_matches_exact(&g, 4);
    }

    #[test]
    fn disconnected_all_pairs() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        assert_matches_exact(&g, 5);
    }

    #[test]
    fn h_is_widest_level() {
        // Star from 0: level 1 has 5 vertices → h(0) = 1. Leaf 1: level 1
        // = {0}, level 2 = {2,3,4,5} → h(1) = 2.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let nl = NlIndex::build(&g);
        assert_eq!(nl.h(VertexId(0)), 1);
        assert_eq!(nl.h(VertexId(1)), 2);
    }

    #[test]
    fn expansion_is_cached_and_consistent() {
        let g = path6();
        let nl = NlIndex::build(&g);
        // k = 4 from vertex 0 forces expansion past h.
        let first = nl.farther_than(VertexId(0), VertexId(5), 4);
        let second = nl.farther_than(VertexId(0), VertexId(5), 4);
        assert_eq!(first, second);
        assert!(first, "Dis(0,5) = 5 > 4");
        assert!(!nl.farther_than(VertexId(0), VertexId(4), 4));
        let space = nl.space();
        assert!(space.aux_bytes > 0, "expansion cache accounted");
    }

    /// Four threads hammer the same index with expansion-forcing queries
    /// (k far past every per-vertex h): every answer must match the exact
    /// oracle no matter how the striped shards interleave, and the cache
    /// must end up populated.
    #[test]
    fn concurrent_expansion_matches_exact() {
        let g = CsrGraph::from_edges(
            10,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9)],
        )
        .unwrap();
        let nl = NlIndex::build(&g);
        let exact = ExactOracle::build(&g);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let nl = &nl;
                let exact = &exact;
                let g = &g;
                s.spawn(move || {
                    for u in g.vertices() {
                        for v in g.vertices() {
                            // Different threads sweep k in different
                            // orders to vary the expansion interleaving.
                            for i in 0..=10u32 {
                                let k = if t % 2 == 0 { i } else { 10 - i };
                                assert_eq!(
                                    nl.farther_than(u, v, k),
                                    exact.farther_than(u, v, k),
                                    "({u:?}, {v:?}, k={k})"
                                );
                            }
                        }
                    }
                });
            }
        });
        assert!(nl.space().aux_bytes > 0, "expansion cache populated");
    }

    #[test]
    fn isolated_vertex_always_farther() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let nl = NlIndex::build(&g);
        assert!(nl.farther_than(VertexId(0), VertexId(2), 100));
        assert!(nl.farther_than(VertexId(2), VertexId(0), 100));
        assert_eq!(nl.h(VertexId(2)), 0);
    }

    #[test]
    fn k_zero_semantics() {
        let g = path6();
        let nl = NlIndex::build(&g);
        assert!(nl.farther_than(VertexId(0), VertexId(1), 0));
        assert!(!nl.farther_than(VertexId(0), VertexId(0), 0));
    }

    #[test]
    fn space_positive_for_nonempty() {
        let g = path6();
        let nl = NlIndex::build(&g);
        assert!(nl.space().forward_bytes > 0);
        assert!(nl.build_stats().entries > 0);
        assert_eq!(nl.build_stats().traversals, 6);
    }

    #[test]
    fn cycle_all_pairs() {
        let g =
            CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)])
                .unwrap();
        assert_matches_exact(&g, 6);
    }

    /// Differential audit of the truncation boundary: `argmax_level`
    /// chooses `h` and exactly `levels[..h]` (hops `1..=h`) is stored, so
    /// any off-by-one between the stored depth and the Case-1/Case-2 split
    /// in `check` shows up as a disagreement with brute-force BFS. Random
    /// graphs across densities exercise `h = 0` (isolated), `h = 1`
    /// (dense), deep truncated BFS (sparse paths), and disconnected pairs.
    #[test]
    fn truncation_boundary_matches_bfs_on_random_graphs() {
        let mut rng = ktg_common::SeededRng::seed_from_u64(0xA11CE);
        for case in 0..40 {
            let n = rng.gen_range(2usize..18);
            let density = rng.gen_range(0.0..0.5);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(density) {
                        edges.push((u as u32, v as u32));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges).unwrap();
            let nl = NlIndex::build(&g);
            let exact = ExactOracle::build(&g);
            // k sweeps past the diameter, and past every per-vertex h.
            for u in g.vertices() {
                for v in g.vertices() {
                    for k in 0..(n as u32 + 2) {
                        assert_eq!(
                            nl.farther_than(u, v, k),
                            exact.farther_than(u, v, k),
                            "case {case} n={n} ({u:?}, {v:?}, k={k}), h(u)={}",
                            nl.h(u)
                        );
                    }
                }
            }
        }
    }

    /// The boundary ks specifically: for every vertex, query exactly at
    /// `k = h - 1`, `h`, and `h + 1`, where Case 1 hands over to Case 2.
    #[test]
    fn queries_at_the_stored_depth_boundary() {
        let mut rng = ktg_common::SeededRng::seed_from_u64(0xB0B);
        for _ in 0..20 {
            let n = rng.gen_range(3usize..14);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.25) {
                        edges.push((u as u32, v as u32));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges).unwrap();
            let nl = NlIndex::build(&g);
            let exact = ExactOracle::build(&g);
            for u in g.vertices() {
                let h = nl.h(u);
                for v in g.vertices() {
                    for k in h.saturating_sub(1)..=h + 1 {
                        assert_eq!(
                            nl.farther_than(u, v, k),
                            exact.farther_than(u, v, k),
                            "boundary ({u:?}, {v:?}) h={h} k={k}"
                        );
                    }
                }
            }
        }
    }
}

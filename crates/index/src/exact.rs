//! All-pairs ground-truth oracle.
//!
//! Precomputes every distance by repeated BFS (O(n·m) build, O(n²) space).
//! Only suitable for small graphs: it is the reference the property tests
//! compare every other oracle against, and a pragmatic choice for the
//! Figure-1-sized examples.

use crate::oracle::DistanceOracle;
use ktg_common::VertexId;
use ktg_graph::{bfs, Adjacency};

/// Exact distances from an all-pairs BFS table.
#[derive(Clone, Debug)]
pub struct ExactOracle {
    dist: Vec<Vec<u32>>,
}

impl ExactOracle {
    /// Builds the full distance table of `graph`.
    pub fn build<A: Adjacency>(graph: &A) -> Self {
        ExactOracle { dist: bfs::all_pairs_distances(graph) }
    }

    /// The exact distance (`u32::MAX` for unreachable).
    #[inline]
    pub fn distance(&self, u: VertexId, v: VertexId) -> u32 {
        self.dist[u.index()][v.index()]
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.dist.len()
    }
}

impl DistanceOracle for ExactOracle {
    #[inline]
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        self.distance(u, v) > k
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::CsrGraph;

    #[test]
    fn path_distances() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let o = ExactOracle::build(&g);
        assert_eq!(o.distance(VertexId(0), VertexId(3)), 3);
        assert!(o.farther_than(VertexId(0), VertexId(3), 2));
        assert!(!o.farther_than(VertexId(0), VertexId(3), 3));
        assert!(o.is_kline(VertexId(0), VertexId(1), 1));
    }

    #[test]
    fn unreachable_is_farther_than_everything() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let o = ExactOracle::build(&g);
        assert!(o.farther_than(VertexId(0), VertexId(2), u32::MAX - 1));
    }

    #[test]
    fn self_distance_zero() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
        let o = ExactOracle::build(&g);
        assert_eq!(o.distance(VertexId(1), VertexId(1)), 0);
        assert!(!o.farther_than(VertexId(1), VertexId(1), 0));
    }
}

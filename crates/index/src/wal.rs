//! Durable write-ahead logging for the serving layer.
//!
//! Bundles (`persist::save_bundle`) give cold-start persistence, but a
//! serving process dies with every `insert`/`remove` applied since the
//! bundle was written. This module closes that gap: the server appends
//! each accepted update line to an append-only log *before* applying it
//! to the session, and recovery replays the log over the reloaded
//! bundle — the recovered session is byte-identical to one that never
//! crashed, because replay runs the exact same `apply_item` path the
//! live server runs.
//!
//! ## Format
//!
//! Little-endian throughout:
//!
//! ```text
//! magic    8 bytes  "KTGWAL__"
//! version  u32      currently 1
//! base_seq u64      seq already folded into the bundle (0 for a fresh log)
//! records, each:
//!   len      u32    payload byte length (8 ≤ len ≤ MAX_PAYLOAD)
//!   payload  seq u64, then the raw update line bytes (UTF-8)
//!   checksum u64    FNV-1a over the payload
//! ```
//!
//! Sequence numbers are strictly consecutive: record `i` carries
//! `base_seq + i + 1`, and replay rejects any gap or repeat. The
//! checksum is FNV-1a (not the Fx hash the bundle envelope uses): one
//! multiply per byte, order-sensitive, and independent of the hasher
//! family used for in-memory maps, so a WAL checksum bug can never be
//! masked by — or mask — a bundle checksum bug.
//!
//! ## The torn-tail rule
//!
//! A crash while appending leaves a *prefix* of the record on disk
//! (appends go through one `write_all`; the kernel persists some prefix
//! of it). Replay therefore distinguishes exactly two failure shapes:
//!
//! * **Torn tail** — the final record's bytes run out before its
//!   declared end (or the file ends inside the header). This is the
//!   crash signature; replay drops that one partial record, reports
//!   `torn_tail = true`, and [`WalWriter::open`] truncates the file
//!   back to the last whole record so appending can resume.
//! * **Mid-log corruption** — a record that is *fully present* but
//!   wrong: checksum mismatch, impossible length, a sequence gap, or
//!   invalid UTF-8. No crash produces these (a prefix of a valid record
//!   never has a complete-but-wrong body), so they are storage-level
//!   damage and replay returns a typed [`KtgError`] — never a panic,
//!   and never a silent truncation that would rewrite history.
//!
//! ## Checkpointing
//!
//! The log stays bounded by checkpointing: the server rewrites the
//! bundle (temp file + atomic rename) from the live session, then calls
//! [`WalWriter::truncate`], which resets the log to an empty record set
//! with `base_seq` advanced to the current sequence. A crash *between*
//! the rename and the truncate is benign: replaying the whole old log
//! onto the post-log state is a fixpoint (each update line sets the
//! presence of one specific edge, so the final state after replay
//! equals the state the checkpoint captured).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use ktg_common::fault::{self, FaultSite};
use ktg_common::{KtgError, Result};

const MAGIC: &[u8; 8] = b"KTGWAL__";
const VERSION: u32 = 1;
/// Header bytes: magic + version + base_seq.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Payload cap: the 8-byte seq plus one workload line (the serving
/// protocol caps lines at 4096 bytes; the slack keeps the two caps
/// decoupled).
const MAX_PAYLOAD: usize = 8 + 4096 + 64;
/// Under [`WalSync::Batch`], fsync once per this many appends (and on
/// [`WalWriter::sync`] / [`WalWriter::truncate`]).
const BATCH_SYNC_EVERY: u32 = 64;

/// FNV-1a over `bytes` (64-bit offset basis / prime).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `fsync` after every append: an acknowledged update is durable
    /// before it is applied (the strongest guarantee, one sync per
    /// update).
    #[default]
    Always,
    /// `fsync` every [`BATCH_SYNC_EVERY`] appends and at sync points
    /// (drain, shutdown, checkpoint). A crash can lose the unsynced
    /// tail; the torn-tail rule makes that loss a clean truncation, not
    /// corruption.
    Batch,
}

impl WalSync {
    /// Parses a `--wal-sync` flag value.
    pub fn parse(value: &str) -> Result<Self> {
        match value {
            "always" => Ok(WalSync::Always),
            "batch" => Ok(WalSync::Batch),
            other => Err(KtgError::input(format!(
                "unknown --wal-sync policy `{other}` (expected always|batch)"
            ))),
        }
    }

    /// Flag-facing name.
    pub fn name(self) -> &'static str {
        match self {
            WalSync::Always => "always",
            WalSync::Batch => "batch",
        }
    }
}

/// One replayed log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number (`base_seq + position + 1`).
    pub seq: u64,
    /// The raw update line as the server accepted it.
    pub line: String,
}

/// The result of reading a log back: every whole record, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// `base_seq` from the header: the sequence already folded into the
    /// bundle this log extends.
    pub base_seq: u64,
    /// Whole records after the base, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn tail record (or torn header) was dropped.
    pub torn_tail: bool,
    /// Byte length of the valid prefix (header + whole records); the
    /// length [`WalWriter::open`] truncates the file to.
    valid_len: u64,
}

impl WalReplay {
    /// An empty log (no file yet).
    fn empty() -> Self {
        WalReplay { base_seq: 0, records: Vec::new(), torn_tail: false, valid_len: 0 }
    }

    /// The sequence number of the last durable update (base if none).
    pub fn last_seq(&self) -> u64 {
        self.base_seq + self.records.len() as u64
    }
}

/// Reads `path` back under the torn-tail rule. A missing file is an
/// empty log (the server may be starting with a `--wal` path that does
/// not exist yet).
///
/// # Errors
/// Mid-log corruption (checksum mismatch, impossible length, sequence
/// gap, invalid UTF-8, bad magic/version) returns a typed
/// [`KtgError`]; I/O failures propagate as [`KtgError::Io`].
pub fn replay(path: &Path) -> Result<WalReplay> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::empty()),
        Err(e) => return Err(e.into()),
    }
    replay_bytes(&buf)
}

fn replay_bytes(buf: &[u8]) -> Result<WalReplay> {
    if buf.is_empty() {
        return Ok(WalReplay::empty());
    }
    if buf.len() < HEADER_LEN {
        // The creating process died inside the header write: nothing
        // was ever logged, so dropping the partial header loses nothing.
        return Ok(WalReplay { torn_tail: true, ..WalReplay::empty() });
    }
    if &buf[..8] != MAGIC {
        return Err(KtgError::input("not a KTG write-ahead log (bad magic)"));
    }
    let version = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if version != VERSION {
        return Err(KtgError::input(format!(
            "unsupported WAL version {version} (expected {VERSION})"
        )));
    }
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&buf[12..HEADER_LEN]);
    let base_seq = u64::from_le_bytes(seq_bytes);

    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    let mut torn_tail = false;
    while off < buf.len() {
        let remaining = buf.len() - off;
        if remaining < 4 {
            torn_tail = true;
            break;
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&buf[off..off + 4]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        // A crash leaves a *prefix*, and a prefix of ≥ 4 bytes carries
        // the true length — so an impossible length is corruption, not
        // a torn write.
        if !(8..=MAX_PAYLOAD).contains(&len) {
            return Err(KtgError::input(format!(
                "corrupt WAL record at byte {off}: impossible payload length {len}"
            )));
        }
        if remaining < 4 + len + 8 {
            torn_tail = true;
            break;
        }
        let payload = &buf[off + 4..off + 4 + len];
        let mut ck_bytes = [0u8; 8];
        ck_bytes.copy_from_slice(&buf[off + 4 + len..off + 4 + len + 8]);
        let stored = u64::from_le_bytes(ck_bytes);
        if fnv1a(payload) != stored {
            return Err(KtgError::input(format!(
                "corrupt WAL record at byte {off}: checksum mismatch"
            )));
        }
        let mut rec_seq_bytes = [0u8; 8];
        rec_seq_bytes.copy_from_slice(&payload[..8]);
        let seq = u64::from_le_bytes(rec_seq_bytes);
        let expected = base_seq + records.len() as u64 + 1;
        if seq != expected {
            return Err(KtgError::input(format!(
                "corrupt WAL record at byte {off}: sequence {seq} (expected {expected})"
            )));
        }
        let line = String::from_utf8(payload[8..].to_vec()).map_err(|_| {
            KtgError::input(format!("corrupt WAL record at byte {off}: invalid UTF-8"))
        })?;
        records.push(WalRecord { seq, line });
        off += 4 + len + 8;
    }
    let valid_len = off as u64;
    Ok(WalReplay {
        base_seq,
        records,
        torn_tail,
        valid_len: if torn_tail && valid_len < HEADER_LEN as u64 { 0 } else { valid_len },
    })
}

/// The append half: an open log file positioned at its valid end.
pub struct WalWriter {
    file: File,
    /// Sequence of the last appended (or replayed) record.
    seq: u64,
    sync: WalSync,
    unsynced: u32,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path` with the given base
    /// sequence, writing and syncing the header.
    pub fn create(path: &Path, base_seq: u64, sync: WalSync) -> Result<Self> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        write_header(&mut file, base_seq)?;
        file.sync_data()?;
        Ok(WalWriter { file, seq: base_seq, sync, unsynced: 0 })
    }

    /// Opens `path` for appending: replays it (torn-tail rule), chops a
    /// torn tail off the file, and positions at the valid end. Returns
    /// the replay so the caller can re-apply the surviving records. A
    /// missing or header-torn file is recreated empty with base 0.
    pub fn open(path: &Path, sync: WalSync) -> Result<(Self, WalReplay)> {
        let rep = replay(path)?;
        if rep.valid_len < HEADER_LEN as u64 {
            let writer = WalWriter::create(path, rep.base_seq, sync)?;
            return Ok((writer, rep));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(rep.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        if rep.torn_tail {
            // Make the truncation itself durable before new appends.
            file.sync_data()?;
        }
        Ok((WalWriter { file, seq: rep.last_seq(), sync, unsynced: 0 }, rep))
    }

    /// The sequence number of the last appended record.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Appends one update line, returning its sequence number. Under
    /// [`WalSync::Always`] the record is durable on return; under
    /// [`WalSync::Batch`] it is durable within [`BATCH_SYNC_EVERY`]
    /// appends or the next explicit [`WalWriter::sync`].
    pub fn append(&mut self, line: &str) -> Result<u64> {
        fault::inject(FaultSite::WalAppend);
        let seq = self.seq + 1;
        let payload_len = 8 + line.len();
        if payload_len > MAX_PAYLOAD {
            return Err(KtgError::input(format!(
                "WAL record too large: {payload_len} bytes (cap {MAX_PAYLOAD})"
            )));
        }
        let mut rec = Vec::with_capacity(4 + payload_len + 8);
        rec.extend_from_slice(&(payload_len as u32).to_le_bytes());
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.extend_from_slice(line.as_bytes());
        let checksum = fnv1a(&rec[4..]);
        rec.extend_from_slice(&checksum.to_le_bytes());
        self.file.write_all(&rec)?;
        self.seq = seq;
        match self.sync {
            WalSync::Always => self.file.sync_data()?,
            WalSync::Batch => {
                self.unsynced += 1;
                if self.unsynced >= BATCH_SYNC_EVERY {
                    self.sync()?;
                }
            }
        }
        Ok(seq)
    }

    /// Forces everything appended so far to disk.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Empties the log after a checkpoint: the record set resets and
    /// `base_seq` advances to the current sequence, so numbering stays
    /// monotonic across checkpoints. Durable on return.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        write_header(&mut self.file, self.seq)?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

fn write_header(file: &mut File, base_seq: u64) -> Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..].copy_from_slice(&base_seq.to_le_bytes());
    file.write_all(&header)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ktg-wal-{name}-{}", std::process::id()));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn lines(rep: &WalReplay) -> Vec<&str> {
        rep.records.iter().map(|r| r.line.as_str()).collect()
    }

    #[test]
    fn roundtrip_preserves_lines_and_seqs() {
        let path = temp_path("roundtrip");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        assert_eq!(w.append("insert 0 5").unwrap(), 1);
        assert_eq!(w.append("remove 0 5").unwrap(), 2);
        assert_eq!(w.append("insert 2 7").unwrap(), 3);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn_tail);
        assert_eq!(rep.base_seq, 0);
        assert_eq!(lines(&rep), ["insert 0 5", "remove 0 5", "insert 2 7"]);
        assert_eq!(rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(), [1, 2, 3]);
        assert_eq!(rep.last_seq(), 3);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp_path("missing");
        let rep = replay(&path).unwrap();
        assert_eq!(rep, WalReplay::empty());
    }

    #[test]
    fn every_byte_truncation_of_the_tail_record_is_torn_not_fatal() {
        let path = temp_path("torn");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append("insert 0 5").unwrap();
        let full_one = std::fs::read(&path).unwrap();
        w.append("remove 0 5").unwrap();
        let full_two = std::fs::read(&path).unwrap();
        // Chop the second record at every possible crash point: replay
        // must keep record one, drop the tail, and flag it torn.
        for cut in full_one.len() + 1..full_two.len() {
            let rep = replay_bytes(&full_two[..cut]).unwrap();
            assert!(rep.torn_tail, "cut at {cut} must be torn");
            assert_eq!(lines(&rep), ["insert 0 5"], "cut at {cut}");
            assert_eq!(rep.valid_len, full_one.len() as u64, "cut at {cut}");
        }
        // Chopping inside the *first* record leaves zero records.
        for cut in HEADER_LEN + 1..full_one.len() {
            let rep = replay_bytes(&full_two[..cut]).unwrap();
            assert!(rep.torn_tail, "cut at {cut} must be torn");
            assert!(rep.records.is_empty(), "cut at {cut}");
        }
        // And inside the header: empty log, nothing lost.
        for cut in [0usize, 1, HEADER_LEN - 1] {
            let rep = replay_bytes(&full_two[..cut]).unwrap();
            assert!(rep.records.is_empty());
            assert_eq!(rep.torn_tail, cut > 0);
        }
    }

    #[test]
    fn open_truncates_torn_tail_and_resumes_numbering() {
        let path = temp_path("resume");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append("insert 0 5").unwrap();
        w.append("remove 0 5").unwrap();
        drop(w);
        // Simulate a crash mid-append: lop 5 bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut w, rep) = WalWriter::open(&path, WalSync::Always).unwrap();
        assert!(rep.torn_tail);
        assert_eq!(lines(&rep), ["insert 0 5"]);
        assert_eq!(w.seq(), 1, "numbering resumes after the survivor");
        w.append("insert 2 7").unwrap();
        let rep = replay(&path).unwrap();
        assert!(!rep.torn_tail, "open() chopped the torn bytes off the file");
        assert_eq!(lines(&rep), ["insert 0 5", "insert 2 7"]);
        assert_eq!(rep.records[1].seq, 2);
    }

    #[test]
    fn mid_log_bitflip_is_a_typed_error_never_a_panic() {
        let path = temp_path("bitflip");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append("insert 0 5").unwrap();
        w.append("remove 0 5").unwrap();
        w.append("insert 2 7").unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit in every byte of the first record's payload and
        // checksum: all must be detected as corruption (the record is
        // fully present, so the torn-tail rule does not apply).
        for pos in HEADER_LEN + 4..HEADER_LEN + 4 + 18 + 8 {
            let mut bad = clean.clone();
            bad[pos] ^= 0x10;
            let err = replay_bytes(&bad).expect_err("bitflip must be detected");
            assert!(err.to_string().contains("corrupt WAL record"), "pos {pos}: {err}");
        }
    }

    #[test]
    fn impossible_length_and_sequence_gap_are_corruption() {
        let path = temp_path("len");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append("insert 0 5").unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Length below the seq-word minimum.
        let mut bad = clean.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&3u32.to_le_bytes());
        assert!(replay_bytes(&bad).is_err());
        // Length far past the cap, with plenty of bytes behind it.
        let mut bad = clean.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        bad.extend_from_slice(&vec![0u8; MAX_PAYLOAD + 64]);
        assert!(replay_bytes(&bad).is_err());
        // A sequence gap: record claims seq 2 where 1 is expected.
        let mut bad = clean.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&2u64.to_le_bytes());
        let payload_len = u32::from_le_bytes([
            clean[HEADER_LEN],
            clean[HEADER_LEN + 1],
            clean[HEADER_LEN + 2],
            clean[HEADER_LEN + 3],
        ]) as usize;
        let ck = fnv1a(&bad[HEADER_LEN + 4..HEADER_LEN + 4 + payload_len]);
        let ck_at = HEADER_LEN + 4 + payload_len;
        bad[ck_at..ck_at + 8].copy_from_slice(&ck.to_le_bytes());
        let err = replay_bytes(&bad).expect_err("sequence gap must be detected");
        assert!(err.to_string().contains("sequence"), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..8].copy_from_slice(b"NOTAWAL_");
        assert!(replay_bytes(&bytes).is_err());
        bytes[..8].copy_from_slice(MAGIC);
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(replay_bytes(&bytes).is_err());
    }

    #[test]
    fn truncate_advances_base_and_keeps_numbering_monotonic() {
        let path = temp_path("truncate");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Batch).unwrap();
        w.append("insert 0 5").unwrap();
        w.append("remove 0 5").unwrap();
        w.truncate().unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(rep.base_seq, 2);
        assert!(rep.records.is_empty());
        assert_eq!(w.append("insert 2 7").unwrap(), 3, "numbering continues");
        let rep = replay(&path).unwrap();
        assert_eq!(lines(&rep), ["insert 2 7"]);
        assert_eq!(rep.records[0].seq, 3);
        assert_eq!(rep.last_seq(), 3);
    }

    #[test]
    fn oversized_line_is_rejected_before_touching_the_file() {
        let path = temp_path("oversize");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        let huge = "x".repeat(MAX_PAYLOAD);
        assert!(w.append(&huge).is_err());
        assert_eq!(w.seq(), 0, "failed append must not consume a sequence number");
        assert!(replay(&path).unwrap().records.is_empty());
    }

    #[test]
    fn nonzero_base_seq_roundtrips() {
        let path = temp_path("base");
        let _c = Cleanup(path.clone());
        let mut w = WalWriter::create(&path, 41, WalSync::Always).unwrap();
        assert_eq!(w.append("insert 1 2").unwrap(), 42);
        drop(w);
        let (w, rep) = WalWriter::open(&path, WalSync::Always).unwrap();
        assert_eq!(rep.base_seq, 41);
        assert_eq!(rep.records[0].seq, 42);
        assert_eq!(w.seq(), 42);
    }
}

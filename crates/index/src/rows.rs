//! Cross-query reuse of k-line conflict rows.
//!
//! A conflict-bitmap row for candidate `c` is determined by the ball
//! `{v : 0 < dist(c, v) ≤ k}` — a function of the *graph* and `k` only,
//! never of the query keywords. Queries served against one shared graph
//! overwhelmingly repeat the same `k` values (the paper evaluates
//! `k ∈ {1..4}`), so the batched executor memoizes those balls in a
//! [`NeighborhoodCache`] keyed `(vertex, k)` and remaps them onto each
//! query's private candidate index space instead of re-running one
//! bounded BFS per candidate per query.
//!
//! The cache is sharded (fixed stripe array, hashed by `(vertex, k)`) so
//! executor workers do not serialize on one lock, bounded (benefit-score
//! eviction per shard — see below) so a long-running server cannot grow
//! without limit, and **epoch-stamped**: every entry records the graph
//! epoch it was computed at, and a lookup under a different epoch is a
//! miss that drops the stale generation. The executor bumps its epoch on
//! every edge update, which makes stale conflict rows unreachable by
//! construction.
//!
//! **Eviction policy.** Each entry carries a deterministic cost proxy
//! (its ball length — the frontier work a recomputation would pay) and
//! the shard-local logical tick of its last hit. A full shard evicts the
//! entry with the minimum *benefit score* — cost halved once per
//! [`HALF_LIFE`] ticks of disuse — with the insertion sequence number as
//! a total-order tie break. Clocks are purely logical (access counters,
//! never wall time, per lint L4), so the retained set is a pure function
//! of the access sequence.

#[cfg(test)]
use crate::batch::kline_conflict_bitmaps;
use ktg_common::{FixedBitSet, FxHashMap, VertexId};
use ktg_graph::bfs::{bfs_levels, BfsScratch};
use ktg_graph::csr::Adjacency;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of cache stripes; a small power of two keeps the shard pick a
/// multiply + shift while letting a handful of workers proceed in
/// parallel.
const ROW_SHARDS: usize = 16;

/// Recency half-life in shard ticks: an entry's benefit score halves for
/// every `HALF_LIFE` shard accesses since it was last hit, so a large
/// ball that stopped being referenced eventually loses to small but live
/// rows.
const HALF_LIFE: u64 = 64;

/// Benefit of keeping an entry: what recomputing it would cost, decayed
/// by how long it has gone unreferenced.
fn benefit_score(cost: u64, age: u64) -> u64 {
    cost >> (age / HALF_LIFE).min(63)
}

/// A `(vertex, k)` ball: every vertex at hop distance `1..=k` of the
/// key vertex, in BFS discovery order. Graph-space ids — query
/// independent by design.
type Row = Arc<Vec<VertexId>>;

struct RowEntry {
    row: Row,
    /// Recomputation-cost proxy: ball length + 1 (deterministic, unlike
    /// the BFS nanos it stands in for).
    cost: u64,
    /// Shard tick of the last hit (or the insert).
    last_touch: u64,
    /// Insertion sequence number; unique per shard, so eviction's
    /// `(score, seq)` minimum is always a single entry.
    seq: u64,
}

struct RowShard {
    /// Graph epoch this shard's entries were computed at.
    epoch: u64,
    map: FxHashMap<(u32, u32), RowEntry>,
    /// Logical access clock: bumped once per lookup.
    tick: u64,
    /// Insertion counter feeding [`RowEntry::seq`].
    seq: u64,
}

/// A bounded, sharded, epoch-guarded memo of per-`(vertex, k)` conflict
/// rows shared by every query the executor serves.
pub struct NeighborhoodCache {
    shards: Vec<Mutex<RowShard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl NeighborhoodCache {
    /// Creates a cache holding at most `capacity` rows in total
    /// (rounded up to a multiple of the stripe count; a zero capacity
    /// still admits one row per stripe).
    pub fn new(capacity: usize) -> Self {
        NeighborhoodCache {
            shards: (0..ROW_SHARDS)
                .map(|_| {
                    Mutex::new(RowShard {
                        epoch: 0,
                        map: FxHashMap::default(),
                        tick: 0,
                        seq: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(ROW_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Rows served from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Rows computed by a fresh bounded BFS so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Rows displaced by benefit-score eviction so far (epoch drops and
    /// stale-generation clears do not count).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn shard(&self, v: VertexId, k: u32) -> MutexGuard<'_, RowShard> {
        let idx = Self::shard_index(v, k);
        // Entries are immutable Arcs inserted whole, so a panicking
        // borrower cannot leave a shard half-written: recover the lock.
        match self.shards[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the within-`k` ball of `v` at graph `epoch`, serving it
    /// from the memo when a same-epoch entry exists and computing (and
    /// caching) it by bounded BFS otherwise.
    ///
    /// An epoch change invalidates lazily: the first access under the new
    /// epoch drops the shard's previous generation wholesale. The caller
    /// must pass a monotonically nondecreasing epoch for a given graph
    /// state (the executor's update path guarantees this).
    pub fn row<A: Adjacency>(
        &self,
        graph: &A,
        v: VertexId,
        k: u32,
        epoch: u64,
        scratch: &mut BfsScratch,
    ) -> Row {
        {
            let mut shard = self.shard(v, k);
            shard.tick += 1;
            let tick = shard.tick;
            if shard.epoch != epoch {
                shard.map.clear();
                shard.epoch = epoch;
            } else if let Some(entry) = shard.map.get_mut(&(v.0, k)) {
                entry.last_touch = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.row);
            }
        }
        // Compute outside the lock so concurrent misses in one stripe do
        // not serialize their BFS work (a racing duplicate is benign: the
        // later insert overwrites with an identical row).
        self.misses.fetch_add(1, Ordering::Relaxed);
        scratch.fit(graph.num_vertices());
        let mut ball = Vec::new();
        bfs_levels(graph, v, k as usize, scratch, |w, _| ball.push(w));
        let row: Row = Arc::new(ball);
        let mut shard = self.shard(v, k);
        if shard.epoch == epoch && !shard.map.contains_key(&(v.0, k)) {
            if shard.map.len() >= self.per_shard_capacity {
                let tick = shard.tick;
                // An empty shard (capacity clamps to >= 1, so this only
                // happens if capacity were 0) needs no eviction.
                let victim = shard
                    .map
                    .iter()
                    .map(|(&key, e)| {
                        (benefit_score(e.cost, tick.saturating_sub(e.last_touch)), e.seq, key)
                    })
                    .min();
                if let Some((_, _, key)) = victim {
                    shard.map.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.tick += 1;
            shard.seq += 1;
            let (tick, seq) = (shard.tick, shard.seq);
            shard.map.insert(
                (v.0, k),
                RowEntry { row: Arc::clone(&row), cost: row.len() as u64 + 1, last_touch: tick, seq },
            );
        }
        row
    }

    /// Shard index a key hashes to (also used by tests that need to
    /// co-locate keys in one stripe).
    fn shard_index(v: VertexId, k: u32) -> usize {
        let key = ((v.0 as u64) << 32 | k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (key >> 60) as usize % ROW_SHARDS
    }
}

/// Reusable per-worker scratch for [`conflict_bitmaps_cached`]: the BFS
/// arena plus the graph-sized vertex → candidate-index map, kept between
/// queries so steady-state kernel construction allocates nothing.
#[derive(Default)]
pub struct KernelScratch {
    bfs: BfsScratch,
    /// `index_of[v] = i` while building a kernel whose `sources[i] = v`;
    /// `u32::MAX` elsewhere. Restored to all-`MAX` before returning, so
    /// the reset costs O(|sources|), not O(|V|).
    index_of: Vec<u32>,
}

/// [`kline_conflict_bitmaps`](crate::batch::kline_conflict_bitmaps)'s memoizing twin: builds the same
/// per-candidate conflict bitsets, but sources each candidate's
/// within-`k` ball from `cache` (computing only the missing rows) and
/// remaps graph-space balls onto the query's candidate index space with
/// the pooled `scratch.index_of` table. `out` rows are recycled via
/// [`FixedBitSet::reset`].
///
/// The result is bit-for-bit the matrix that
/// [`kline_conflict_bitmaps`](crate::batch::kline_conflict_bitmaps)
/// returns for the same `(graph, sources, k)` — both answer "is
/// `dist(sources[i], sources[j])` in `1..=k`" from the same BFS ground
/// truth — which is what keeps cached serving byte-identical to fresh
/// solves.
pub fn conflict_bitmaps_cached<A: Adjacency>(
    graph: &A,
    sources: &[VertexId],
    k: u32,
    cache: &NeighborhoodCache,
    epoch: u64,
    scratch: &mut KernelScratch,
    out: &mut Vec<FixedBitSet>,
) {
    let m = sources.len();
    if scratch.index_of.len() < graph.num_vertices() {
        scratch.index_of.resize(graph.num_vertices(), u32::MAX);
    }
    for (i, v) in sources.iter().enumerate() {
        scratch.index_of[v.index()] = i as u32;
    }

    out.truncate(m);
    while out.len() < m {
        out.push(FixedBitSet::new(m));
    }
    for (i, (src, bitmap)) in sources.iter().zip(out.iter_mut()).enumerate() {
        bitmap.reset(m);
        let row = cache.row(graph, *src, k, epoch, &mut scratch.bfs);
        for w in row.iter() {
            let j = scratch.index_of[w.index()];
            if j != u32::MAX {
                debug_assert!(j as usize != i, "BFS never reports its source");
                bitmap.insert(j as usize);
            }
        }
    }

    // Sparse undo: only candidate slots were written.
    for v in sources {
        scratch.index_of[v.index()] = u32::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::csr::CsrGraph;

    fn random_graph(n: u32, density: f64, seed: u64) -> CsrGraph {
        let mut rng = ktg_common::SeededRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(density) {
                    edges.push((u, v));
                }
            }
        }
        CsrGraph::from_edges(n as usize, &edges).unwrap()
    }

    #[test]
    fn cached_matches_uncached_and_hits_on_repeat() {
        let g = random_graph(40, 0.08, 0xCAFE);
        let cache = NeighborhoodCache::new(1024);
        let mut scratch = KernelScratch::default();
        let mut out = Vec::new();
        for k in [1u32, 2, 3] {
            let sources: Vec<VertexId> =
                (0..40).filter(|u| u % (k + 2) != 1).map(VertexId).collect();
            let fresh = kline_conflict_bitmaps(&g, &sources, k);
            conflict_bitmaps_cached(&g, &sources, k, &cache, 7, &mut scratch, &mut out);
            assert_eq!(out, fresh, "k={k}");
            // Second build over a *different* candidate subset sharing
            // vertices: rows come from the memo, result still matches.
            let misses_before = cache.misses();
            let subset: Vec<VertexId> = sources.iter().copied().step_by(2).collect();
            let fresh_subset = kline_conflict_bitmaps(&g, &subset, k);
            conflict_bitmaps_cached(&g, &subset, k, &cache, 7, &mut scratch, &mut out);
            assert_eq!(out, fresh_subset, "subset k={k}");
            assert_eq!(cache.misses(), misses_before, "all subset rows memoized");
            assert!(cache.hits() > 0);
        }
        // index_of must have been restored for every candidate slot.
        assert!(scratch.index_of.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn epoch_change_invalidates() {
        let g1 = random_graph(20, 0.15, 1);
        let g2 = random_graph(20, 0.15, 2);
        let sources: Vec<VertexId> = (0..20).map(VertexId).collect();
        let cache = NeighborhoodCache::new(1024);
        let mut scratch = KernelScratch::default();
        let mut out = Vec::new();
        conflict_bitmaps_cached(&g1, &sources, 2, &cache, 1, &mut scratch, &mut out);
        // Same keys at a new epoch against a different graph: the cached
        // generation must not leak through.
        conflict_bitmaps_cached(&g2, &sources, 2, &cache, 2, &mut scratch, &mut out);
        assert_eq!(out, kline_conflict_bitmaps(&g2, &sources, 2));
        let misses_after_two = cache.misses();
        assert_eq!(misses_after_two, 40, "every row recomputed at the new epoch");
        // Back at epoch 2 everything hits.
        conflict_bitmaps_cached(&g2, &sources, 2, &cache, 2, &mut scratch, &mut out);
        assert_eq!(cache.misses(), misses_after_two);
    }

    #[test]
    fn capacity_is_bounded() {
        let g = random_graph(64, 0.1, 3);
        let cache = NeighborhoodCache::new(16);
        let mut scratch = KernelScratch::default();
        let sources: Vec<VertexId> = (0..64).map(VertexId).collect();
        let mut out = Vec::new();
        conflict_bitmaps_cached(&g, &sources, 2, &cache, 1, &mut scratch, &mut out);
        let cached: usize = (0..64)
            .filter(|&u| {
                let mut s = BfsScratch::new(64);
                let before = cache.hits();
                cache.row(&g, VertexId(u), 2, 1, &mut s);
                cache.hits() > before
            })
            .count();
        // 16 stripes × ceil(16/16)=1 row each at most.
        assert!(cached <= 16, "{cached} rows retained past the bound");
    }

    #[test]
    fn benefit_score_decays_with_age() {
        assert_eq!(benefit_score(1024, 0), 1024);
        assert_eq!(benefit_score(1024, HALF_LIFE - 1), 1024);
        assert_eq!(benefit_score(1024, HALF_LIFE), 512);
        assert_eq!(benefit_score(1024, 10 * HALF_LIFE), 1);
        assert_eq!(benefit_score(1024, 64 * HALF_LIFE), 0, "shift clamps at 63");
        assert_eq!(benefit_score(u64::MAX, u64::MAX), 1, "no overflow at extremes");
    }

    #[test]
    fn eviction_keeps_the_expensive_row_and_drops_the_oldest_cheap_one() {
        // Star: the hub's k=1 ball is every leaf (expensive to rebuild);
        // a leaf's ball is just the hub (cheap).
        let n = 128u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges).unwrap();

        // Leaves co-located with the hub's (0, k=1) key in one stripe.
        let hub_stripe = NeighborhoodCache::shard_index(VertexId(0), 1);
        let stripe_leaves: Vec<u32> = (1..n)
            .filter(|&v| NeighborhoodCache::shard_index(VertexId(v), 1) == hub_stripe)
            .collect();
        assert!(stripe_leaves.len() >= 4, "fixture must co-locate enough keys");

        // Capacity 64 → 4 rows per stripe.
        let cache = NeighborhoodCache::new(64);
        let mut scratch = BfsScratch::new(n as usize);
        cache.row(&g, VertexId(0), 1, 0, &mut scratch); // cost 128
        for &v in &stripe_leaves[..3] {
            cache.row(&g, VertexId(v), 1, 0, &mut scratch); // cost 2 each
        }
        assert_eq!(cache.evictions(), 0);

        // Fifth key in a full stripe: the victim is the minimum
        // (benefit, seq) — the *first-inserted cheap leaf*, never the
        // expensive hub row even though the hub is the oldest insert.
        cache.row(&g, VertexId(stripe_leaves[3]), 1, 0, &mut scratch);
        assert_eq!(cache.evictions(), 1);

        let hits_before = cache.hits();
        cache.row(&g, VertexId(0), 1, 0, &mut scratch);
        assert_eq!(cache.hits(), hits_before + 1, "hub row survived");
        let misses_before = cache.misses();
        cache.row(&g, VertexId(stripe_leaves[0]), 1, 0, &mut scratch);
        assert_eq!(cache.misses(), misses_before + 1, "oldest cheap row was evicted");
        assert_eq!(cache.evictions(), 2, "its re-insert displaced the next-oldest leaf");
    }

    #[test]
    fn rows_exclude_the_source() {
        let g = random_graph(12, 0.3, 9);
        let cache = NeighborhoodCache::new(64);
        let mut scratch = BfsScratch::new(12);
        for u in 0..12 {
            let row = cache.row(&g, VertexId(u), 3, 0, &mut scratch);
            assert!(!row.contains(&VertexId(u)));
        }
    }
}

//! Cross-query reuse of k-line conflict rows.
//!
//! A conflict-bitmap row for candidate `c` is determined by the ball
//! `{v : 0 < dist(c, v) ≤ k}` — a function of the *graph* and `k` only,
//! never of the query keywords. Queries served against one shared graph
//! overwhelmingly repeat the same `k` values (the paper evaluates
//! `k ∈ {1..4}`), so the batched executor memoizes those balls in a
//! [`NeighborhoodCache`] keyed `(vertex, k)` and remaps them onto each
//! query's private candidate index space instead of re-running one
//! bounded BFS per candidate per query.
//!
//! The cache is sharded (fixed stripe array, hashed by `(vertex, k)`) so
//! executor workers do not serialize on one lock, bounded (FIFO eviction
//! per shard) so a long-running server cannot grow without limit, and
//! **epoch-stamped**: every entry records the graph epoch it was computed
//! at, and a lookup under a different epoch is a miss that drops the
//! stale generation. The executor bumps its epoch on every edge update,
//! which makes stale conflict rows unreachable by construction.

#[cfg(test)]
use crate::batch::kline_conflict_bitmaps;
use ktg_common::{FixedBitSet, FxHashMap, VertexId};
use ktg_graph::bfs::{bfs_levels, BfsScratch};
use ktg_graph::csr::Adjacency;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of cache stripes; a small power of two keeps the shard pick a
/// multiply + shift while letting a handful of workers proceed in
/// parallel.
const ROW_SHARDS: usize = 16;

/// A `(vertex, k)` ball: every vertex at hop distance `1..=k` of the
/// key vertex, in BFS discovery order. Graph-space ids — query
/// independent by design.
type Row = Arc<Vec<VertexId>>;

struct RowShard {
    /// Graph epoch this shard's entries were computed at.
    epoch: u64,
    map: FxHashMap<(u32, u32), Row>,
    /// Insertion order for FIFO eviction.
    fifo: VecDeque<(u32, u32)>,
}

/// A bounded, sharded, epoch-guarded memo of per-`(vertex, k)` conflict
/// rows shared by every query the executor serves.
pub struct NeighborhoodCache {
    shards: Vec<Mutex<RowShard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl NeighborhoodCache {
    /// Creates a cache holding at most `capacity` rows in total
    /// (rounded up to a multiple of the stripe count; a zero capacity
    /// still admits one row per stripe).
    pub fn new(capacity: usize) -> Self {
        NeighborhoodCache {
            shards: (0..ROW_SHARDS)
                .map(|_| {
                    Mutex::new(RowShard {
                        epoch: 0,
                        map: FxHashMap::default(),
                        fifo: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(ROW_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Rows served from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Rows computed by a fresh bounded BFS so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn shard(&self, v: VertexId, k: u32) -> MutexGuard<'_, RowShard> {
        let key = ((v.0 as u64) << 32 | k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (key >> 60) as usize % ROW_SHARDS;
        // Entries are immutable Arcs inserted whole, so a panicking
        // borrower cannot leave a shard half-written: recover the lock.
        match self.shards[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the within-`k` ball of `v` at graph `epoch`, serving it
    /// from the memo when a same-epoch entry exists and computing (and
    /// caching) it by bounded BFS otherwise.
    ///
    /// An epoch change invalidates lazily: the first access under the new
    /// epoch drops the shard's previous generation wholesale. The caller
    /// must pass a monotonically nondecreasing epoch for a given graph
    /// state (the executor's update path guarantees this).
    pub fn row<A: Adjacency>(
        &self,
        graph: &A,
        v: VertexId,
        k: u32,
        epoch: u64,
        scratch: &mut BfsScratch,
    ) -> Row {
        {
            let mut shard = self.shard(v, k);
            if shard.epoch != epoch {
                shard.map.clear();
                shard.fifo.clear();
                shard.epoch = epoch;
            } else if let Some(row) = shard.map.get(&(v.0, k)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(row);
            }
        }
        // Compute outside the lock so concurrent misses in one stripe do
        // not serialize their BFS work (a racing duplicate is benign: the
        // later insert overwrites with an identical row).
        self.misses.fetch_add(1, Ordering::Relaxed);
        scratch.fit(graph.num_vertices());
        let mut ball = Vec::new();
        bfs_levels(graph, v, k as usize, scratch, |w, _| ball.push(w));
        let row: Row = Arc::new(ball);
        let mut shard = self.shard(v, k);
        if shard.epoch == epoch && shard.map.insert((v.0, k), Arc::clone(&row)).is_none() {
            shard.fifo.push_back((v.0, k));
            if shard.fifo.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.fifo.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
        }
        row
    }
}

/// Reusable per-worker scratch for [`conflict_bitmaps_cached`]: the BFS
/// arena plus the graph-sized vertex → candidate-index map, kept between
/// queries so steady-state kernel construction allocates nothing.
#[derive(Default)]
pub struct KernelScratch {
    bfs: BfsScratch,
    /// `index_of[v] = i` while building a kernel whose `sources[i] = v`;
    /// `u32::MAX` elsewhere. Restored to all-`MAX` before returning, so
    /// the reset costs O(|sources|), not O(|V|).
    index_of: Vec<u32>,
}

/// [`kline_conflict_bitmaps`](crate::batch::kline_conflict_bitmaps)'s memoizing twin: builds the same
/// per-candidate conflict bitsets, but sources each candidate's
/// within-`k` ball from `cache` (computing only the missing rows) and
/// remaps graph-space balls onto the query's candidate index space with
/// the pooled `scratch.index_of` table. `out` rows are recycled via
/// [`FixedBitSet::reset`].
///
/// The result is bit-for-bit the matrix that
/// [`kline_conflict_bitmaps`](crate::batch::kline_conflict_bitmaps)
/// returns for the same `(graph, sources, k)` — both answer "is
/// `dist(sources[i], sources[j])` in `1..=k`" from the same BFS ground
/// truth — which is what keeps cached serving byte-identical to fresh
/// solves.
pub fn conflict_bitmaps_cached<A: Adjacency>(
    graph: &A,
    sources: &[VertexId],
    k: u32,
    cache: &NeighborhoodCache,
    epoch: u64,
    scratch: &mut KernelScratch,
    out: &mut Vec<FixedBitSet>,
) {
    let m = sources.len();
    if scratch.index_of.len() < graph.num_vertices() {
        scratch.index_of.resize(graph.num_vertices(), u32::MAX);
    }
    for (i, v) in sources.iter().enumerate() {
        scratch.index_of[v.index()] = i as u32;
    }

    out.truncate(m);
    while out.len() < m {
        out.push(FixedBitSet::new(m));
    }
    for (i, (src, bitmap)) in sources.iter().zip(out.iter_mut()).enumerate() {
        bitmap.reset(m);
        let row = cache.row(graph, *src, k, epoch, &mut scratch.bfs);
        for w in row.iter() {
            let j = scratch.index_of[w.index()];
            if j != u32::MAX {
                debug_assert!(j as usize != i, "BFS never reports its source");
                bitmap.insert(j as usize);
            }
        }
    }

    // Sparse undo: only candidate slots were written.
    for v in sources {
        scratch.index_of[v.index()] = u32::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::csr::CsrGraph;

    fn random_graph(n: u32, density: f64, seed: u64) -> CsrGraph {
        let mut rng = ktg_common::SeededRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(density) {
                    edges.push((u, v));
                }
            }
        }
        CsrGraph::from_edges(n as usize, &edges).unwrap()
    }

    #[test]
    fn cached_matches_uncached_and_hits_on_repeat() {
        let g = random_graph(40, 0.08, 0xCAFE);
        let cache = NeighborhoodCache::new(1024);
        let mut scratch = KernelScratch::default();
        let mut out = Vec::new();
        for k in [1u32, 2, 3] {
            let sources: Vec<VertexId> =
                (0..40).filter(|u| u % (k + 2) != 1).map(VertexId).collect();
            let fresh = kline_conflict_bitmaps(&g, &sources, k);
            conflict_bitmaps_cached(&g, &sources, k, &cache, 7, &mut scratch, &mut out);
            assert_eq!(out, fresh, "k={k}");
            // Second build over a *different* candidate subset sharing
            // vertices: rows come from the memo, result still matches.
            let misses_before = cache.misses();
            let subset: Vec<VertexId> = sources.iter().copied().step_by(2).collect();
            let fresh_subset = kline_conflict_bitmaps(&g, &subset, k);
            conflict_bitmaps_cached(&g, &subset, k, &cache, 7, &mut scratch, &mut out);
            assert_eq!(out, fresh_subset, "subset k={k}");
            assert_eq!(cache.misses(), misses_before, "all subset rows memoized");
            assert!(cache.hits() > 0);
        }
        // index_of must have been restored for every candidate slot.
        assert!(scratch.index_of.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn epoch_change_invalidates() {
        let g1 = random_graph(20, 0.15, 1);
        let g2 = random_graph(20, 0.15, 2);
        let sources: Vec<VertexId> = (0..20).map(VertexId).collect();
        let cache = NeighborhoodCache::new(1024);
        let mut scratch = KernelScratch::default();
        let mut out = Vec::new();
        conflict_bitmaps_cached(&g1, &sources, 2, &cache, 1, &mut scratch, &mut out);
        // Same keys at a new epoch against a different graph: the cached
        // generation must not leak through.
        conflict_bitmaps_cached(&g2, &sources, 2, &cache, 2, &mut scratch, &mut out);
        assert_eq!(out, kline_conflict_bitmaps(&g2, &sources, 2));
        let misses_after_two = cache.misses();
        assert_eq!(misses_after_two, 40, "every row recomputed at the new epoch");
        // Back at epoch 2 everything hits.
        conflict_bitmaps_cached(&g2, &sources, 2, &cache, 2, &mut scratch, &mut out);
        assert_eq!(cache.misses(), misses_after_two);
    }

    #[test]
    fn capacity_is_bounded() {
        let g = random_graph(64, 0.1, 3);
        let cache = NeighborhoodCache::new(16);
        let mut scratch = KernelScratch::default();
        let sources: Vec<VertexId> = (0..64).map(VertexId).collect();
        let mut out = Vec::new();
        conflict_bitmaps_cached(&g, &sources, 2, &cache, 1, &mut scratch, &mut out);
        let cached: usize = (0..64)
            .filter(|&u| {
                let mut s = BfsScratch::new(64);
                let before = cache.hits();
                cache.row(&g, VertexId(u), 2, 1, &mut s);
                cache.hits() > before
            })
            .count();
        // 16 stripes × ceil(16/16)=1 row each at most.
        assert!(cached <= 16, "{cached} rows retained past the bound");
    }

    #[test]
    fn rows_exclude_the_source() {
        let g = random_graph(12, 0.3, 9);
        let cache = NeighborhoodCache::new(64);
        let mut scratch = BfsScratch::new(12);
        for u in 0..12 {
            let row = cache.row(&g, VertexId(u), 3, 0, &mut scratch);
            assert!(!row.contains(&VertexId(u)));
        }
    }
}

//! The **NLRNL** index — (c−1)-hop lists + reverse c-hop lists (paper §V-B).
//!
//! For each vertex `a` the widest hop level `c` is deliberately *not*
//! stored. Below it, the forward lists hold levels `1..=c-1`; above it,
//! the *reverse* lists hold levels `c+1..=ecc(a)` — the neighbors whose
//! distance from `a` is greater than `c`. A distance check never expands
//! anything:
//!
//! * `k ≤ c−1` — scan forward levels `1..=k`; miss ⇒ farther than `k`.
//! * `k ≥ c` — scan reverse levels `k+1..=ecc`; hit ⇒ farther than `k`,
//!   miss ⇒ within `k` (the pair is reachable and its distance is some
//!   finite level ≤ k).
//!
//! Two details the paper leaves implicit, made explicit here:
//!
//! 1. The `k ≥ c` rule is only sound for *reachable* pairs — an
//!    unreachable pair appears in no list but is farther than every `k`.
//!    We store connected-component labels (O(n) extra) to disambiguate.
//! 2. Half storage: a pair `{a, b}` with `a < b` is recorded only in `a`'s
//!    lists ("we only store the hop neighbor whose id is greater than the
//!    user"), so every check first routes to the smaller endpoint.
//!
//! Dynamic maintenance (edge insert/delete) follows the paper's sketch:
//! identify the vertices whose shortest-path structure the edge touches,
//! and rebuild exactly their lists. See [`NlrnlIndex::insert_edge`].

use crate::leveled::LeveledList;
use crate::oracle::DistanceOracle;
use crate::space::{BuildStats, IndexSpace};
use ktg_common::{parallel, Stopwatch, VertexId};
use ktg_graph::components::Components;
use ktg_graph::{bfs, Adjacency, BfsScratch};

/// The NLRNL ((c−1)-hop neighbors list + reverse c-hop neighbors list)
/// index.
///
/// Unlike [`crate::NlIndex`], NLRNL never consults the graph after
/// construction, so it owns no graph reference and has no lifetime
/// parameter; dynamic maintenance takes the mutated graph as an argument.
pub struct NlrnlIndex {
    n: usize,
    /// Per-vertex `c` (0 for vertices with no neighbors).
    c: Vec<u32>,
    /// Forward levels `1..=c-1`, ids > owner only (slot `i` ⇔ hop `i + 1`).
    forward: Vec<LeveledList>,
    /// Reverse levels `c+1..=ecc`, ids > owner only (slot `i` ⇔ hop `c+1+i`).
    reverse: Vec<LeveledList>,
    components: Components,
    stats: BuildStats,
}

impl NlrnlIndex {
    /// Builds the index with one full BFS per vertex, parallelized across
    /// available cores.
    ///
    /// ```
    /// use ktg_graph::CsrGraph;
    /// use ktg_index::{DistanceOracle, NlrnlIndex};
    /// use ktg_common::VertexId;
    ///
    /// let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    /// let idx = NlrnlIndex::build(&g);
    /// assert!(idx.farther_than(VertexId(0), VertexId(4), 3)); // Dis = 4 > 3
    /// assert!(!idx.farther_than(VertexId(0), VertexId(4), 4));
    /// assert_eq!(idx.distance(VertexId(0), VertexId(3)), Some(3));
    /// ```
    pub fn build<A: Adjacency + Sync>(graph: &A) -> Self {
        Self::build_with_threads(graph, parallel::worker_count())
    }

    /// Partitioned parallel construction with an explicit worker count.
    ///
    /// The vertex space is split into roughly `4 × threads` contiguous
    /// ranges; worker `w` owns ranges `w, w + threads, w + 2·threads, …`
    /// (interleaved static assignment, which evens out degree skew across
    /// workers without work stealing or shared counters). Each range is
    /// built independently and the per-range results are merged back
    /// positionally, so the index is **byte-identical for every thread
    /// count** — `build_with_threads(g, 1)` is the sequential reference.
    pub fn build_with_threads<A: Adjacency + Sync>(graph: &A, threads: usize) -> Self {
        let start = Stopwatch::start();
        let n = graph.num_vertices();
        let threads = threads.max(1);
        let num_parts = (threads * 4).min(n.max(1));
        let part_len = parallel::chunk_size(n, num_parts);

        struct Partition {
            base: usize,
            c: Vec<u32>,
            forward: Vec<LeveledList>,
            reverse: Vec<LeveledList>,
        }

        let per_worker: Vec<Vec<Partition>> = parallel::scope_join((0..threads).map(|w| {
            move || {
                let mut scratch = BfsScratch::new(n);
                let mut built = Vec::new();
                let mut p = w;
                while p * part_len < n {
                    let base = p * part_len;
                    let end = (base + part_len).min(n);
                    let len = end - base;
                    let mut part = Partition {
                        base,
                        c: Vec::with_capacity(len),
                        forward: Vec::with_capacity(len),
                        reverse: Vec::with_capacity(len),
                    };
                    for v in base..end {
                        let (cv, fwd, rev) = build_vertex(graph, VertexId::new(v), &mut scratch);
                        part.c.push(cv);
                        part.forward.push(fwd);
                        part.reverse.push(rev);
                    }
                    built.push(part);
                    p += threads;
                }
                built
            }
        }));

        // Positional merge: every partition lands at its own base offset,
        // so arrival order is irrelevant and the result is deterministic.
        let mut c = vec![0u32; n];
        let mut forward: Vec<LeveledList> = vec![LeveledList::default(); n];
        let mut reverse: Vec<LeveledList> = vec![LeveledList::default(); n];
        let mut entries = 0usize;
        for part in per_worker.into_iter().flatten() {
            let base = part.base;
            for (off, ((cv, fwd), rev)) in part
                .c
                .into_iter()
                .zip(part.forward)
                .zip(part.reverse)
                .enumerate()
            {
                entries += fwd.total_len() + rev.total_len();
                c[base + off] = cv;
                forward[base + off] = fwd;
                reverse[base + off] = rev;
            }
        }

        NlrnlIndex {
            n,
            c,
            forward,
            reverse,
            components: Components::compute(graph),
            stats: BuildStats { elapsed: start.elapsed(), traversals: n, entries },
        }
    }

    /// The per-vertex `c` value.
    pub fn c(&self, v: VertexId) -> u32 {
        self.c[v.index()]
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The connected-component label of `v`.
    pub fn component(&self, v: VertexId) -> u32 {
        self.components.label(v)
    }

    /// The forward hop-level lists of `v` (levels `1..=c-1`).
    pub fn forward_lists(&self, v: VertexId) -> &LeveledList {
        &self.forward[v.index()]
    }

    /// The reverse hop-level lists of `v` (levels `c+1..=ecc`).
    pub fn reverse_lists(&self, v: VertexId) -> &LeveledList {
        &self.reverse[v.index()]
    }

    /// Reassembles an index from its serialized parts (see
    /// [`crate::persist`]). The caller is responsible for the parts being
    /// mutually consistent — `load_nlrnl` validates them structurally and
    /// via checksum before calling this.
    pub(crate) fn from_parts(
        n: usize,
        c: Vec<u32>,
        forward: Vec<LeveledList>,
        reverse: Vec<LeveledList>,
        component_labels: Vec<u32>,
    ) -> Self {
        let entries = forward.iter().chain(reverse.iter()).map(LeveledList::total_len).sum();
        NlrnlIndex {
            n,
            c,
            forward,
            reverse,
            components: Components::from_labels(component_labels),
            stats: BuildStats { elapsed: std::time::Duration::ZERO, traversals: 0, entries },
        }
    }

    /// Construction statistics.
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }

    /// Storage breakdown (forward lists, reverse lists, component labels).
    pub fn space(&self) -> IndexSpace {
        IndexSpace {
            forward_bytes: self.forward.iter().map(LeveledList::heap_bytes).sum(),
            reverse_bytes: self.reverse.iter().map(LeveledList::heap_bytes).sum(),
            aux_bytes: self.c.len() * std::mem::size_of::<u32>() + self.components.heap_bytes(),
        }
    }

    /// `true` iff `Dis(u, v) > k`.
    fn check(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        if u == v {
            return false;
        }
        if !self.components.same_component(u, v) {
            return true; // infinite distance
        }
        if k == 0 {
            return true; // distinct vertices: distance ≥ 1
        }
        // Route to the smaller id: the pair is stored only there.
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let c = self.c[a.index()];
        debug_assert!(c >= 1, "reachable pair implies the owner has neighbors");
        if k <= c.saturating_sub(1) {
            // Forward regime: levels 1..=k are all stored.
            self.forward[a.index()].find_up_to(k as usize - 1, b).is_none()
        } else {
            // Reverse regime: distance is finite; > k iff it appears at a
            // reverse level ≥ k+1, i.e. slot ≥ (k+1)-(c+1).
            let rev = &self.reverse[a.index()];
            let from_slot = (k - c) as usize;
            (from_slot..rev.num_levels()).any(|slot| rev.contains(slot, b))
        }
    }

    /// Recovers the **exact** hop distance of a pair from the stored lists:
    /// a forward hit at slot `i` means distance `i + 1`, a reverse hit at
    /// slot `j` means distance `c + 1 + j`, a total miss within the same
    /// component means distance exactly `c`, and different components mean
    /// unreachable (`None`). The index is a complete distance oracle, not
    /// just a threshold oracle.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        if !self.components.same_component(u, v) {
            return None;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let c = self.c[a.index()];
        if let Some(slot) = self.forward[a.index()].find_up_to(usize::MAX, b) {
            return Some(slot as u32 + 1);
        }
        let rev = &self.reverse[a.index()];
        if let Some(slot) = rev.find_up_to(usize::MAX, b) {
            return Some(c + 1 + slot as u32);
        }
        Some(c)
    }

    /// Snapshots the state needed to maintain the index across one edge
    /// mutation. Call **before** mutating the graph, then mutate, then call
    /// [`NlrnlIndex::apply_update`] with the mutated graph.
    pub fn prepare_update<A: Adjacency>(&self, graph: &A, x: VertexId, y: VertexId) -> EdgeUpdate {
        debug_assert_eq!(graph.num_vertices(), self.n, "graph/index size mismatch");
        let mut scratch = BfsScratch::new(self.n);
        EdgeUpdate {
            x,
            y,
            dx_old: distances_from(graph, x, &mut scratch),
            dy_old: distances_from(graph, y, &mut scratch),
        }
    }

    /// Maintains the index across the edge mutation captured by `update`
    /// (insertion or deletion of `{x, y}`): `graph` is the **post-mutation**
    /// graph.
    ///
    /// The rebuilt set is exact, derived from the shortest-path subpath
    /// property: if `Dis(s, t)` changed, the witnessing path runs through
    /// the mutated edge, so at least one endpoint changed its distance to
    /// `x` or `y` ("primary" set `A`). Because a pair is stored only under
    /// its smaller endpoint, a second pass compares the recovered old
    /// distance with the fresh BFS from each `b ∈ A` and pulls stale owners
    /// `a < b, a ∉ A` into the rebuild set. Components are recomputed.
    pub fn apply_update<A: Adjacency>(&mut self, graph: &A, update: EdgeUpdate) {
        debug_assert_eq!(graph.num_vertices(), self.n, "graph/index size mismatch");
        let mut scratch = BfsScratch::new(self.n);
        let dx_new = distances_from(graph, update.x, &mut scratch);
        let dy_new = distances_from(graph, update.y, &mut scratch);

        let primary: Vec<VertexId> = (0..self.n)
            .filter(|&s| update.dx_old[s] != dx_new[s] || update.dy_old[s] != dy_new[s])
            .map(VertexId::new)
            .collect();

        // Pass 1: rebuild every primary vertex, and while its fresh BFS
        // distances are in hand, find smaller non-primary owners whose
        // stored distance to it went stale.
        let mut stale_owners: Vec<VertexId> = Vec::new();
        let mut in_primary = vec![false; self.n];
        for &s in &primary {
            in_primary[s.index()] = true;
        }
        for &b in &primary {
            let mut new_dist = vec![u32::MAX; self.n];
            bfs::bfs_levels(graph, b, usize::MAX, &mut scratch, |t, d| {
                new_dist[t.index()] = d;
            });
            for a in 0..b.index() {
                if in_primary[a] {
                    continue;
                }
                let a_v = VertexId::new(a);
                let old = self.distance(a_v, b).unwrap_or(u32::MAX);
                if old != new_dist[a] {
                    stale_owners.push(a_v);
                }
            }
            let levels = levels_from_distances(&new_dist, b);
            let (cv, fwd, rev) = assemble_vertex(b, &levels);
            self.c[b.index()] = cv;
            self.forward[b.index()] = fwd;
            self.reverse[b.index()] = rev;
        }

        // Pass 2: rebuild the stale owners discovered above.
        stale_owners.sort_unstable();
        stale_owners.dedup();
        for a in stale_owners {
            let (cv, fwd, rev) = build_vertex(graph, a, &mut scratch);
            self.c[a.index()] = cv;
            self.forward[a.index()] = fwd;
            self.reverse[a.index()] = rev;
        }

        self.components = Components::compute(graph);
    }
}

/// Pre-mutation snapshot for [`NlrnlIndex::apply_update`].
pub struct EdgeUpdate {
    x: VertexId,
    y: VertexId,
    dx_old: Vec<u32>,
    dy_old: Vec<u32>,
}

/// Full single-source distances (`u32::MAX` = unreachable).
fn distances_from<A: Adjacency>(graph: &A, source: VertexId, scratch: &mut BfsScratch) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.num_vertices()];
    dist[source.index()] = 0;
    bfs::bfs_levels(graph, source, usize::MAX, scratch, |v, d| {
        dist[v.index()] = d;
    });
    dist
}

/// Converts a distance array into sorted hop levels `1..=ecc`.
fn levels_from_distances(dist: &[u32], source: VertexId) -> Vec<Vec<VertexId>> {
    let mut levels: Vec<Vec<VertexId>> = Vec::new();
    for (i, &d) in dist.iter().enumerate() {
        if d == u32::MAX || i == source.index() {
            continue;
        }
        let d = d as usize;
        if levels.len() < d {
            levels.resize_with(d, Vec::new);
        }
        levels[d - 1].push(VertexId::new(i));
    }
    // Ascending index order ⇒ each level already sorted.
    levels
}

/// Packs full hop levels into the `(c, forward, reverse)` triple with
/// half-storage filtering.
fn assemble_vertex(v: VertexId, full: &[Vec<VertexId>]) -> (u32, LeveledList, LeveledList) {
    let c = argmax_level(full);
    let filter = |levels: &[Vec<VertexId>]| -> Vec<Vec<VertexId>> {
        levels
            .iter()
            .map(|lvl| lvl.iter().copied().filter(|&w| w > v).collect())
            .collect()
    };
    let forward = if c >= 1 { filter(&full[..c - 1]) } else { Vec::new() };
    let reverse = if c >= 1 { filter(full.get(c..).unwrap_or(&[])) } else { Vec::new() };
    (
        c as u32,
        LeveledList::from_levels(&forward),
        LeveledList::from_levels(&reverse),
    )
}

/// Builds one vertex's `(c, forward, reverse)` lists from a full BFS.
/// `c` is chosen on the *full* level widths (the paper's criterion), before
/// half-storage filtering.
fn build_vertex<A: Adjacency>(
    graph: &A,
    v: VertexId,
    scratch: &mut BfsScratch,
) -> (u32, LeveledList, LeveledList) {
    let mut full = bfs::collect_levels(graph, v, usize::MAX, scratch);
    for level in &mut full {
        level.sort_unstable();
    }
    assemble_vertex(v, &full)
}

/// 1-based index of the widest level (0 for no levels); ties pick the
/// shallowest.
fn argmax_level(levels: &[Vec<VertexId>]) -> usize {
    let mut best = 0usize;
    let mut best_len = 0usize;
    for (i, level) in levels.iter().enumerate() {
        if level.len() > best_len {
            best_len = level.len();
            best = i + 1;
        }
    }
    best
}

impl DistanceOracle for NlrnlIndex {
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        self.check(u, v, k)
    }

    fn name(&self) -> &'static str {
        "nlrnl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use ktg_graph::{CsrGraph, DynamicGraph};

    fn assert_matches_exact(g: &CsrGraph, k_max: u32) {
        let idx = NlrnlIndex::build(g);
        let exact = ExactOracle::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                for k in 0..=k_max {
                    assert_eq!(
                        idx.farther_than(u, v, k),
                        exact.farther_than(u, v, k),
                        "({u:?}, {v:?}, k={k})"
                    );
                }
            }
        }
    }


    /// The partitioned parallel build must be byte-identical for every
    /// worker count — serialize the index and compare the files.
    #[test]
    fn build_is_thread_count_independent() {
        let mut rng = ktg_common::rng::SplitMix64::new(0xD15C_0CE4);
        let n = 120u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for _ in 0..3 {
                let v = (rng.next_u64() % n as u64) as u32;
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let g = CsrGraph::from_edges(n as usize, &edges).unwrap();
        let reference = {
            let mut buf = Vec::new();
            crate::persist::save_nlrnl(&NlrnlIndex::build_with_threads(&g, 1), &g, &mut buf)
                .unwrap();
            buf
        };
        for threads in [2usize, 3, 5, 8, 16] {
            let mut buf = Vec::new();
            crate::persist::save_nlrnl(&NlrnlIndex::build_with_threads(&g, threads), &g, &mut buf)
                .unwrap();
            assert_eq!(buf, reference, "threads={threads} diverged from sequential");
        }
    }

    #[test]
    fn path_all_pairs_all_k() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert_matches_exact(&g, 7);
    }

    #[test]
    fn star_all_pairs() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_matches_exact(&g, 4);
    }

    #[test]
    fn disconnected_all_pairs() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        assert_matches_exact(&g, 5);
    }

    #[test]
    fn cycle_all_pairs() {
        let g =
            CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)])
                .unwrap();
        assert_matches_exact(&g, 6);
    }

    #[test]
    fn paper_example_u3_u5() {
        // §V-B's example: checking Dis(u3, u5) > 3 via reverse lists.
        // Reconstruct the Figure 1 topology (see ktg-core fixtures for the
        // full keyword-annotated version).
        let g = CsrGraph::from_edges(
            12,
            &[
                (0, 1), (0, 2), (0, 3), (0, 4), (0, 9), (0, 11),
                (1, 2), (2, 11), (3, 4), (3, 9), (4, 6), (5, 7),
                (6, 7), (6, 8), (7, 10), (9, 8),
            ],
        )
        .unwrap();
        let idx = NlrnlIndex::build(&g);
        let exact = ExactOracle::build(&g);
        assert_eq!(
            idx.farther_than(VertexId(3), VertexId(5), 3),
            exact.farther_than(VertexId(3), VertexId(5), 3)
        );
    }

    #[test]
    fn reverse_space_smaller_than_full_for_dense_level() {
        // On a star the widest level (level 1 of the hub, level 2 of each
        // leaf) is skipped; NLRNL must store strictly fewer entries than NL
        // would.
        let g = CsrGraph::from_edges(8, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7)])
            .unwrap();
        let nlrnl = NlrnlIndex::build(&g);
        let nl = crate::nl::NlIndex::build(&g);
        assert!(
            nlrnl.space().forward_bytes + nlrnl.space().reverse_bytes
                < nl.space().forward_bytes,
            "nlrnl {} vs nl {}",
            nlrnl.space().total_bytes(),
            nl.space().total_bytes()
        );
    }

    #[test]
    fn insert_edge_matches_rebuild() {
        let mut g = DynamicGraph::new(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (4, 5)] {
            g.insert_edge(VertexId(u), VertexId(v)).unwrap();
        }
        let mut idx = NlrnlIndex::build(&g);
        // Connect the two components.
        let update = idx.prepare_update(&g, VertexId(3), VertexId(4));
        g.insert_edge(VertexId(3), VertexId(4)).unwrap();
        idx.apply_update(&g, update);
        let fresh = NlrnlIndex::build(&g);
        let exact = ExactOracle::build(&g.to_csr());
        for u in 0..6 {
            for v in 0..6 {
                for k in 0..8 {
                    let (u, v) = (VertexId(u), VertexId(v));
                    assert_eq!(idx.farther_than(u, v, k), exact.farther_than(u, v, k));
                    assert_eq!(idx.farther_than(u, v, k), fresh.farther_than(u, v, k));
                }
            }
        }
    }

    #[test]
    fn remove_edge_matches_rebuild() {
        let mut g = DynamicGraph::new(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            g.insert_edge(VertexId(u), VertexId(v)).unwrap();
        }
        let mut idx = NlrnlIndex::build(&g);
        let update = idx.prepare_update(&g, VertexId(2), VertexId(3));
        g.remove_edge(VertexId(2), VertexId(3)).unwrap();
        idx.apply_update(&g, update);
        let exact = ExactOracle::build(&g.to_csr());
        for u in 0..6 {
            for v in 0..6 {
                for k in 0..8 {
                    let (u, v) = (VertexId(u), VertexId(v));
                    assert_eq!(idx.farther_than(u, v, k), exact.farther_than(u, v, k));
                }
            }
        }
    }

    #[test]
    fn k_zero_and_self() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let idx = NlrnlIndex::build(&g);
        assert!(!idx.farther_than(VertexId(1), VertexId(1), 0));
        assert!(idx.farther_than(VertexId(0), VertexId(1), 0));
    }

    /// Differential audit of the `c` boundary (mirror of the NL truncation
    /// audit): the widest level `c` is deliberately unstored, so the
    /// forward regime (`k ≤ c−1`), the reverse regime (`k ≥ c`), and the
    /// handover at exactly `k = c` must all agree with brute-force BFS on
    /// random graphs, including disconnected ones.
    #[test]
    fn c_boundary_matches_bfs_on_random_graphs() {
        let mut rng = ktg_common::SeededRng::seed_from_u64(0xC0FFEE);
        for case in 0..40 {
            let n = rng.gen_range(2usize..18);
            let density = rng.gen_range(0.0..0.5);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(density) {
                        edges.push((u as u32, v as u32));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges).unwrap();
            let idx = NlrnlIndex::build(&g);
            let exact = ExactOracle::build(&g);
            for u in g.vertices() {
                for v in g.vertices() {
                    for k in 0..(n as u32 + 2) {
                        assert_eq!(
                            idx.farther_than(u, v, k),
                            exact.farther_than(u, v, k),
                            "case {case} n={n} ({u:?}, {v:?}, k={k}), c={}",
                            idx.c(u.min(v))
                        );
                    }
                    // The exact-distance recovery shares the boundary math.
                    let truth = exact.distance(u, v);
                    let got = idx.distance(u, v);
                    match truth {
                        u32::MAX => assert_eq!(got, None, "({u:?}, {v:?})"),
                        d => assert_eq!(got, Some(d), "({u:?}, {v:?})"),
                    }
                }
            }
        }
    }
}

//! # `ktg-index`
//!
//! Distance oracles for the KTG (ICDE 2023) reproduction — the paper's §V,
//! "Index-based algorithm for fast social distance checking".
//!
//! The k-line filtering step of the branch-and-bound search asks one
//! question over and over: *is the social distance of `u` and `v` greater
//! than the tenuity constraint `k`?* ([`DistanceOracle::farther_than`]).
//! Three implementations answer it:
//!
//! * [`BfsOracle`] — no index: a hop-bounded BFS per (source, k), memoized
//!   for the repeated-source access pattern of k-line filtering. The
//!   baseline every index must beat.
//! * [`NlIndex`] — the paper's **NL** index: per-vertex `h`-hop neighbor
//!   lists where `h` is the hop level with the most neighbors; levels past
//!   `h` are expanded on demand (and cached), exactly as Algorithm 2
//!   mutates `L[u_j][j+1]`.
//! * [`NlrnlIndex`] — the paper's **NLRNL** index: per-vertex `(c−1)`-hop
//!   lists plus *reverse* lists for levels `> c` (level `c` itself — the
//!   widest — is the one deliberately not stored), with id-ordered half
//!   storage. Component labels disambiguate "distance exactly c" from
//!   "unreachable", a detail the paper leaves implicit.
//! * [`ExactOracle`] — all-pairs ground truth for tests and tiny graphs.
//!
//! Both indexes report [`space::IndexSpace`] and [`space::BuildStats`],
//! powering the Figure 9 experiments, and [`NlrnlIndex`] supports the
//! paper's dynamic maintenance under edge insertion/deletion.
//!
//! [`batch::kline_conflict_bitmaps`] is the batch entry point used by the
//! solver's conflict-bitmap kernel: one hop-bounded BFS per candidate, run
//! in parallel, producing per-candidate conflict bitsets that replace
//! oracle probes entirely for small-to-medium candidate sets.
//! [`rows::NeighborhoodCache`] is its memoizing twin for batched query
//! serving: per-`(vertex, k)` conflict rows are cached across queries
//! (sharded, bounded, epoch-guarded against graph updates) and remapped
//! onto each query's candidate index space by
//! [`rows::conflict_bitmaps_cached`].


#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bfs_oracle;
pub mod dynamic;
pub mod exact;
pub mod leveled;
pub mod nl;
pub mod nlrnl;
pub mod oracle;
pub mod persist;
pub mod pll;
pub mod rows;
pub mod space;
pub mod wal;

pub use batch::{kline_conflict_bitmaps, pll_conflict_bitmaps, pll_conflict_bitmaps_into};
pub use bfs_oracle::BfsOracle;
pub use dynamic::DynamicNlrnl;
pub use exact::ExactOracle;
pub use nl::NlIndex;
pub use nlrnl::{EdgeUpdate, NlrnlIndex};
pub use oracle::DistanceOracle;
pub use pll::PllIndex;
pub use rows::{conflict_bitmaps_cached, KernelScratch, NeighborhoodCache};
pub use space::{BuildStats, IndexSpace};
pub use wal::{WalRecord, WalReplay, WalSync, WalWriter};

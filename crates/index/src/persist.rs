//! Index persistence.
//!
//! NL/NLRNL construction costs one BFS per vertex — minutes on large
//! graphs — which is the entire reason the indexes exist. A production
//! deployment builds once and reloads; this module provides a compact,
//! versioned, checksummed binary format for the NLRNL index (the
//! recommended one; NL's query-time expansion cache makes persisting it
//! pointless — rebuilding is as cheap as reloading).
//!
//! ## Format
//!
//! Little-endian throughout:
//!
//! ```text
//! magic   8 bytes  "KTGNLRNL"
//! version u32      currently 1
//! n       u64      vertex count
//! graph fingerprint u64   (vertex count, edge count, degree sequence hash)
//! per vertex:
//!   c        u32
//!   comp     u32
//!   fwd_lvls u32, then per level: len u32, then len × u32 vertex ids
//!   rev_lvls u32, same encoding
//! checksum u64     Fx hash of everything after the magic
//! ```
//!
//! The PLL labeling (magic `"KTGPLL__"`) shares the envelope — version,
//! fingerprint, streaming checksum — with a per-vertex payload of
//! `(hub rank, distance)` pairs sorted by rank.

use crate::leveled::LeveledList;
use crate::nlrnl::NlrnlIndex;
use crate::pll::PllIndex;
use crate::space::BuildStats;
use ktg_common::{KtgError, Result, VertexId};
use ktg_graph::CsrGraph;
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 8] = b"KTGNLRNL";
const PLL_MAGIC: &[u8; 8] = b"KTGPLL__";
const VERSION: u32 = 1;

/// A fingerprint binding a persisted index to the graph it was built for:
/// loading against a different graph is rejected.
pub fn graph_fingerprint(graph: &CsrGraph) -> u64 {
    let mut h = ktg_common::FxHasher64::default();
    h.write_u64(graph.num_vertices() as u64);
    h.write_u64(graph.num_edges() as u64);
    for v in graph.vertices() {
        h.write_u32(graph.degree(v) as u32);
    }
    h.finish()
}

/// A hasher-wrapped writer so the checksum streams with the payload.
struct ChecksumWriter<W: Write> {
    inner: W,
    hasher: ktg_common::FxHasher64,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter { inner, hasher: ktg_common::FxHasher64::default() }
    }

    fn write_u32(&mut self, v: u32) -> Result<()> {
        self.hasher.write(&v.to_le_bytes());
        self.inner.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    fn write_u64(&mut self, v: u64) -> Result<()> {
        self.hasher.write(&v.to_le_bytes());
        self.inner.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    fn checksum(&self) -> u64 {
        self.hasher.finish()
    }
}

struct ChecksumReader<R: Read> {
    inner: R,
    hasher: ktg_common::FxHasher64,
}

impl<R: Read> ChecksumReader<R> {
    fn new(inner: R) -> Self {
        ChecksumReader { inner, hasher: ktg_common::FxHasher64::default() }
    }

    fn read_u32(&mut self) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.inner.read_exact(&mut buf)?;
        self.hasher.write(&buf);
        Ok(u32::from_le_bytes(buf))
    }

    fn read_u64(&mut self) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.inner.read_exact(&mut buf)?;
        self.hasher.write(&buf);
        Ok(u64::from_le_bytes(buf))
    }

    fn checksum(&self) -> u64 {
        self.hasher.finish()
    }
}

/// Serializes an NLRNL index. `graph` must be the graph it was built over
/// (its fingerprint is embedded).
pub fn save_nlrnl<W: Write>(index: &NlrnlIndex, graph: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let mut cw = ChecksumWriter::new(&mut w);
    cw.write_u32(VERSION)?;
    let n = index.num_vertices();
    cw.write_u64(n as u64)?;
    cw.write_u64(graph_fingerprint(graph))?;
    for i in 0..n {
        let v = VertexId::new(i);
        cw.write_u32(index.c(v))?;
        cw.write_u32(index.component(v))?;
        for lists in [index.forward_lists(v), index.reverse_lists(v)] {
            cw.write_u32(lists.num_levels() as u32)?;
            for slot in 0..lists.num_levels() {
                let level = lists.level(slot);
                cw.write_u32(level.len() as u32)?;
                for &x in level {
                    cw.write_u32(x.0)?;
                }
            }
        }
    }
    let checksum = cw.checksum();
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Deserializes an NLRNL index, validating the version, the checksum, and
/// the graph fingerprint.
///
/// # Errors
/// [`KtgError::InvalidInput`] on corruption or version mismatch;
/// [`KtgError::IndexMismatch`] when the graph differs from build time.
pub fn load_nlrnl<R: Read>(graph: &CsrGraph, reader: R) -> Result<NlrnlIndex> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(KtgError::input("not a KTG NLRNL index file"));
    }
    let mut cr = ChecksumReader::new(&mut r);
    let version = cr.read_u32()?;
    if version != VERSION {
        return Err(KtgError::input(format!(
            "unsupported index version {version} (expected {VERSION})"
        )));
    }
    let n = cr.read_u64()? as usize;
    if n != graph.num_vertices() {
        return Err(KtgError::IndexMismatch(format!(
            "index covers {n} vertices, graph has {}",
            graph.num_vertices()
        )));
    }
    let fingerprint = cr.read_u64()?;
    if fingerprint != graph_fingerprint(graph) {
        return Err(KtgError::IndexMismatch(
            "index was built for a different graph (fingerprint mismatch)".to_string(),
        ));
    }

    let mut c = Vec::with_capacity(n);
    let mut components = Vec::with_capacity(n);
    let mut forward = Vec::with_capacity(n);
    let mut reverse = Vec::with_capacity(n);
    for _ in 0..n {
        c.push(cr.read_u32()?);
        components.push(cr.read_u32()?);
        for target in [&mut forward, &mut reverse] {
            let num_levels = cr.read_u32()? as usize;
            if num_levels > n {
                return Err(KtgError::input("corrupt index: level count exceeds |V|"));
            }
            let mut levels = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                let len = cr.read_u32()? as usize;
                if len > n {
                    return Err(KtgError::input("corrupt index: level length exceeds |V|"));
                }
                let mut level = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = cr.read_u32()?;
                    if id as usize >= n {
                        return Err(KtgError::input("corrupt index: vertex id out of range"));
                    }
                    level.push(VertexId(id));
                }
                if !level.windows(2).all(|w| w[0] < w[1]) {
                    return Err(KtgError::input("corrupt index: level not sorted"));
                }
                levels.push(level);
            }
            target.push(LeveledList::from_levels(&levels));
        }
    }
    let expected = cr.checksum();
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    if u64::from_le_bytes(buf) != expected {
        return Err(KtgError::input("corrupt index: checksum mismatch"));
    }
    Ok(NlrnlIndex::from_parts(n, c, forward, reverse, components))
}

/// Serializes a PLL labeling. `graph` must be the graph it was built over
/// (its fingerprint is embedded).
pub fn save_pll<W: Write>(index: &PllIndex, graph: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(PLL_MAGIC)?;
    let mut cw = ChecksumWriter::new(&mut w);
    cw.write_u32(VERSION)?;
    let labels = index.labels();
    cw.write_u64(labels.len() as u64)?;
    cw.write_u64(graph_fingerprint(graph))?;
    for list in labels {
        cw.write_u32(list.len() as u32)?;
        for &(rank, dist) in list {
            cw.write_u32(rank)?;
            cw.write_u32(dist)?;
        }
    }
    let checksum = cw.checksum();
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Deserializes a PLL labeling, validating the version, the checksum, and
/// the graph fingerprint.
///
/// # Errors
/// [`KtgError::InvalidInput`] on corruption or version mismatch;
/// [`KtgError::IndexMismatch`] when the graph differs from build time.
pub fn load_pll<R: Read>(graph: &CsrGraph, reader: R) -> Result<PllIndex> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != PLL_MAGIC {
        return Err(KtgError::input("not a KTG PLL index file"));
    }
    let mut cr = ChecksumReader::new(&mut r);
    let version = cr.read_u32()?;
    if version != VERSION {
        return Err(KtgError::input(format!(
            "unsupported index version {version} (expected {VERSION})"
        )));
    }
    let n = cr.read_u64()? as usize;
    if n != graph.num_vertices() {
        return Err(KtgError::IndexMismatch(format!(
            "index covers {n} vertices, graph has {}",
            graph.num_vertices()
        )));
    }
    let fingerprint = cr.read_u64()?;
    if fingerprint != graph_fingerprint(graph) {
        return Err(KtgError::IndexMismatch(
            "index was built for a different graph (fingerprint mismatch)".to_string(),
        ));
    }

    let mut labels = Vec::with_capacity(n);
    let mut entries = 0usize;
    for _ in 0..n {
        let len = cr.read_u32()? as usize;
        if len > n {
            return Err(KtgError::input("corrupt index: label list exceeds |V|"));
        }
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let rank = cr.read_u32()?;
            if rank as usize >= n {
                return Err(KtgError::input("corrupt index: hub rank out of range"));
            }
            let dist = cr.read_u32()?;
            list.push((rank, dist));
        }
        if !list.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(KtgError::input("corrupt index: labels not sorted by rank"));
        }
        entries += len;
        labels.push(list);
    }
    let expected = cr.checksum();
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    if u64::from_le_bytes(buf) != expected {
        return Err(KtgError::input("corrupt index: checksum mismatch"));
    }
    Ok(PllIndex::from_parts(
        labels,
        BuildStats { traversals: n, entries, ..BuildStats::default() },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DistanceOracle;

    fn sample_graph() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (6, 7)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        let loaded = load_nlrnl(&g, buf.as_slice()).unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                for k in 0..8 {
                    assert_eq!(
                        index.farther_than(u, v, k),
                        loaded.farther_than(u, v, k),
                        "({u:?}, {v:?}, k={k})"
                    );
                }
                assert_eq!(index.distance(u, v), loaded.distance(u, v));
            }
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let g = sample_graph();
        assert!(load_nlrnl(&g, b"NOTANIDX________".as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_nlrnl(&g, buf.as_slice()).is_err());
    }

    #[test]
    fn bitflip_fails_checksum() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        // Flip a byte in the middle of the payload.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(load_nlrnl(&g, buf.as_slice()).is_err());
    }

    #[test]
    fn different_graph_rejected() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        // Same vertex count, different topology.
        let other =
            CsrGraph::from_edges(8, &[(0, 2), (2, 4), (4, 6), (6, 0), (1, 3), (3, 5)]).unwrap();
        match load_nlrnl(&other, buf.as_slice()) {
            Err(KtgError::IndexMismatch(_)) => {}
            Err(other) => panic!("expected IndexMismatch, got error {other}"),
            Ok(_) => panic!("expected IndexMismatch, got a loaded index"),
        }
    }

    #[test]
    fn pll_roundtrip_preserves_answers() {
        let g = sample_graph();
        let index = PllIndex::build_parallel_with(&g, 2);
        let mut buf = Vec::new();
        save_pll(&index, &g, &mut buf).unwrap();
        let loaded = load_pll(&g, buf.as_slice()).unwrap();
        assert_eq!(index.labels(), loaded.labels(), "labels reload byte-identically");
        assert_eq!(index.label_entries(), loaded.build_stats().entries);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(index.distance(u, v), loaded.distance(u, v), "({u:?}, {v:?})");
            }
        }
    }

    #[test]
    fn pll_load_rejects_nlrnl_file_and_vice_versa() {
        let g = sample_graph();
        let nlrnl = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&nlrnl, &g, &mut buf).unwrap();
        assert!(load_pll(&g, buf.as_slice()).is_err(), "magic mismatch");
        let pll = PllIndex::build(&g);
        let mut buf = Vec::new();
        save_pll(&pll, &g, &mut buf).unwrap();
        assert!(load_nlrnl(&g, buf.as_slice()).is_err(), "magic mismatch");
    }

    #[test]
    fn pll_bitflip_and_wrong_graph_rejected() {
        let g = sample_graph();
        let pll = PllIndex::build(&g);
        let mut buf = Vec::new();
        save_pll(&pll, &g, &mut buf).unwrap();
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(load_pll(&g, flipped.as_slice()).is_err());
        let other =
            CsrGraph::from_edges(8, &[(0, 2), (2, 4), (4, 6), (6, 0), (1, 3), (3, 5)]).unwrap();
        match load_pll(&other, buf.as_slice()) {
            Err(KtgError::IndexMismatch(_)) => {}
            Err(other) => panic!("expected IndexMismatch, got error {other}"),
            Ok(_) => panic!("expected IndexMismatch, got a loaded index"),
        }
    }

    #[test]
    fn fingerprint_sensitive_to_edges() {
        let a = sample_graph();
        let b = CsrGraph::from_edges(8, &[(0, 1)]).unwrap();
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }
}

//! Index persistence.
//!
//! NL/NLRNL construction costs one BFS per vertex — minutes on large
//! graphs — which is the entire reason the indexes exist. A production
//! deployment builds once and reloads; this module provides a compact,
//! versioned, checksummed binary format for the NLRNL index (the
//! recommended one; NL's query-time expansion cache makes persisting it
//! pointless — rebuilding is as cheap as reloading).
//!
//! ## Format
//!
//! Little-endian throughout:
//!
//! ```text
//! magic   8 bytes  "KTGNLRNL"
//! version u32      currently 1
//! n       u64      vertex count
//! graph fingerprint u64   (vertex count, edge count, degree sequence hash)
//! per vertex:
//!   c        u32
//!   comp     u32
//!   fwd_lvls u32, then per level: len u32, then len × u32 vertex ids
//!   rev_lvls u32, same encoding
//! checksum u64     Fx hash of everything after the magic
//! ```
//!
//! The PLL labeling (magic `"KTGPLL__"`) shares the envelope — version,
//! fingerprint, streaming checksum — with a per-vertex payload of
//! `(hub rank, distance)` pairs sorted by rank.
//!
//! ## Bundles
//!
//! [`save_bundle`]/[`load_bundle`] persist a *whole attributed network* —
//! topology (flat or compressed), keyword vocabulary + per-vertex
//! keyword arena, and optionally the NLRNL index — as one file (magic
//! `"KTGBNDL_"`). The payload is a sequence of length-prefixed sections
//! whose arrays are written and read in bulk (one length word, then the
//! raw little-endian element run), so reloading a pre-built 10M-vertex
//! network is bounded by I/O, not per-entry parsing. The same streaming
//! checksum and graph fingerprint guard the envelope; the fingerprint
//! additionally binds the NLRNL section to the graph section it was
//! built over.

use crate::leveled::LeveledList;
use crate::nlrnl::NlrnlIndex;
use crate::pll::PllIndex;
use crate::space::BuildStats;
use ktg_common::id::vertex_range;
use ktg_common::{KtgError, Result, VertexId};
use ktg_graph::{Adjacency, CompressedCsr, CsrGraph, GraphFormat, GraphStore};
use ktg_keywords::{KeywordId, VertexKeywords, Vocabulary};
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 8] = b"KTGNLRNL";
const PLL_MAGIC: &[u8; 8] = b"KTGPLL__";
const BUNDLE_MAGIC: &[u8; 8] = b"KTGBNDL_";
const VERSION: u32 = 1;

/// Bundle section tags (fixed order: graph, keywords, optional index).
const SECTION_GRAPH: u32 = 1;
const SECTION_KEYWORDS: u32 = 2;
const SECTION_NLRNL: u32 = 3;

/// A fingerprint binding a persisted index to the graph it was built for:
/// loading against a different graph is rejected.
pub fn graph_fingerprint<A: Adjacency>(graph: &A) -> u64 {
    let mut h = ktg_common::FxHasher64::default();
    h.write_u64(graph.num_vertices() as u64);
    h.write_u64(graph.num_edges() as u64);
    for v in vertex_range(graph.num_vertices()) {
        h.write_u32(graph.degree(v) as u32);
    }
    h.finish()
}

/// A hasher-wrapped writer so the checksum streams with the payload.
struct ChecksumWriter<W: Write> {
    inner: W,
    hasher: ktg_common::FxHasher64,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter { inner, hasher: ktg_common::FxHasher64::default() }
    }

    fn write_u32(&mut self, v: u32) -> Result<()> {
        self.hasher.write(&v.to_le_bytes());
        self.inner.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    fn write_u64(&mut self, v: u64) -> Result<()> {
        self.hasher.write(&v.to_le_bytes());
        self.inner.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.hasher.write(bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }

    fn checksum(&self) -> u64 {
        self.hasher.finish()
    }
}

struct ChecksumReader<R: Read> {
    inner: R,
    hasher: ktg_common::FxHasher64,
}

impl<R: Read> ChecksumReader<R> {
    fn new(inner: R) -> Self {
        ChecksumReader { inner, hasher: ktg_common::FxHasher64::default() }
    }

    fn read_u32(&mut self) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.inner.read_exact(&mut buf)?;
        self.hasher.write(&buf);
        Ok(u32::from_le_bytes(buf))
    }

    fn read_u64(&mut self) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.inner.read_exact(&mut buf)?;
        self.hasher.write(&buf);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a whole length-prefixed section payload. The buffer grows
    /// incrementally via `take`, so an over-length count from a corrupt
    /// header hits EOF and errors instead of over-allocating.
    fn read_section(&mut self, len: u64) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        (&mut self.inner).take(len).read_to_end(&mut buf)?;
        if buf.len() as u64 != len {
            return Err(KtgError::input("corrupt bundle: truncated section"));
        }
        self.hasher.write(&buf);
        Ok(buf)
    }

    fn checksum(&self) -> u64 {
        self.hasher.finish()
    }
}

/// Validates that deserialized component labels are dense in `0..count`
/// (the invariant `Components::from_labels` assumes) without panicking on
/// corrupt input.
fn validate_component_labels(labels: &[u32]) -> Result<()> {
    let n = labels.len();
    if labels.iter().any(|&l| l as usize >= n.max(1)) {
        return Err(KtgError::input("corrupt index: component label out of range"));
    }
    let count = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut seen = vec![false; count];
    for &l in labels {
        seen[l as usize] = true;
    }
    if seen.iter().any(|&s| !s) {
        return Err(KtgError::input("corrupt index: component labels not dense"));
    }
    Ok(())
}

/// Serializes an NLRNL index. `graph` must be the graph it was built over
/// (its fingerprint is embedded).
pub fn save_nlrnl<A: Adjacency, W: Write>(index: &NlrnlIndex, graph: &A, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let mut cw = ChecksumWriter::new(&mut w);
    cw.write_u32(VERSION)?;
    let n = index.num_vertices();
    cw.write_u64(n as u64)?;
    cw.write_u64(graph_fingerprint(graph))?;
    for i in 0..n {
        let v = VertexId::new(i);
        cw.write_u32(index.c(v))?;
        cw.write_u32(index.component(v))?;
        for lists in [index.forward_lists(v), index.reverse_lists(v)] {
            cw.write_u32(lists.num_levels() as u32)?;
            for slot in 0..lists.num_levels() {
                let level = lists.level(slot);
                cw.write_u32(level.len() as u32)?;
                for &x in level {
                    cw.write_u32(x.0)?;
                }
            }
        }
    }
    let checksum = cw.checksum();
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Deserializes an NLRNL index, validating the version, the checksum, and
/// the graph fingerprint.
///
/// # Errors
/// [`KtgError::InvalidInput`] on corruption or version mismatch;
/// [`KtgError::IndexMismatch`] when the graph differs from build time.
pub fn load_nlrnl<A: Adjacency, R: Read>(graph: &A, reader: R) -> Result<NlrnlIndex> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(KtgError::input("not a KTG NLRNL index file"));
    }
    let mut cr = ChecksumReader::new(&mut r);
    let version = cr.read_u32()?;
    if version != VERSION {
        return Err(KtgError::input(format!(
            "unsupported index version {version} (expected {VERSION})"
        )));
    }
    let n = cr.read_u64()? as usize;
    if n != graph.num_vertices() {
        return Err(KtgError::IndexMismatch(format!(
            "index covers {n} vertices, graph has {}",
            graph.num_vertices()
        )));
    }
    let fingerprint = cr.read_u64()?;
    if fingerprint != graph_fingerprint(graph) {
        return Err(KtgError::IndexMismatch(
            "index was built for a different graph (fingerprint mismatch)".to_string(),
        ));
    }

    let mut c = Vec::with_capacity(n);
    let mut components = Vec::with_capacity(n);
    let mut forward = Vec::with_capacity(n);
    let mut reverse = Vec::with_capacity(n);
    for _ in 0..n {
        c.push(cr.read_u32()?);
        components.push(cr.read_u32()?);
        for target in [&mut forward, &mut reverse] {
            let num_levels = cr.read_u32()? as usize;
            if num_levels > n {
                return Err(KtgError::input("corrupt index: level count exceeds |V|"));
            }
            let mut levels = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                let len = cr.read_u32()? as usize;
                if len > n {
                    return Err(KtgError::input("corrupt index: level length exceeds |V|"));
                }
                let mut level = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = cr.read_u32()?;
                    if id as usize >= n {
                        return Err(KtgError::input("corrupt index: vertex id out of range"));
                    }
                    level.push(VertexId(id));
                }
                if !level.windows(2).all(|w| w[0] < w[1]) {
                    return Err(KtgError::input("corrupt index: level not sorted"));
                }
                levels.push(level);
            }
            target.push(LeveledList::from_levels(&levels));
        }
    }
    let expected = cr.checksum();
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    if u64::from_le_bytes(buf) != expected {
        return Err(KtgError::input("corrupt index: checksum mismatch"));
    }
    validate_component_labels(&components)?;
    Ok(NlrnlIndex::from_parts(n, c, forward, reverse, components))
}

/// Serializes a PLL labeling. `graph` must be the graph it was built over
/// (its fingerprint is embedded).
pub fn save_pll<A: Adjacency, W: Write>(index: &PllIndex, graph: &A, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(PLL_MAGIC)?;
    let mut cw = ChecksumWriter::new(&mut w);
    cw.write_u32(VERSION)?;
    let labels = index.labels();
    cw.write_u64(labels.len() as u64)?;
    cw.write_u64(graph_fingerprint(graph))?;
    for list in labels {
        cw.write_u32(list.len() as u32)?;
        for &(rank, dist) in list {
            cw.write_u32(rank)?;
            cw.write_u32(dist)?;
        }
    }
    let checksum = cw.checksum();
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Deserializes a PLL labeling, validating the version, the checksum, and
/// the graph fingerprint.
///
/// # Errors
/// [`KtgError::InvalidInput`] on corruption or version mismatch;
/// [`KtgError::IndexMismatch`] when the graph differs from build time.
pub fn load_pll<A: Adjacency, R: Read>(graph: &A, reader: R) -> Result<PllIndex> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != PLL_MAGIC {
        return Err(KtgError::input("not a KTG PLL index file"));
    }
    let mut cr = ChecksumReader::new(&mut r);
    let version = cr.read_u32()?;
    if version != VERSION {
        return Err(KtgError::input(format!(
            "unsupported index version {version} (expected {VERSION})"
        )));
    }
    let n = cr.read_u64()? as usize;
    if n != graph.num_vertices() {
        return Err(KtgError::IndexMismatch(format!(
            "index covers {n} vertices, graph has {}",
            graph.num_vertices()
        )));
    }
    let fingerprint = cr.read_u64()?;
    if fingerprint != graph_fingerprint(graph) {
        return Err(KtgError::IndexMismatch(
            "index was built for a different graph (fingerprint mismatch)".to_string(),
        ));
    }

    let mut labels = Vec::with_capacity(n);
    let mut entries = 0usize;
    for _ in 0..n {
        let len = cr.read_u32()? as usize;
        if len > n {
            return Err(KtgError::input("corrupt index: label list exceeds |V|"));
        }
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let rank = cr.read_u32()?;
            if rank as usize >= n {
                return Err(KtgError::input("corrupt index: hub rank out of range"));
            }
            let dist = cr.read_u32()?;
            list.push((rank, dist));
        }
        if !list.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(KtgError::input("corrupt index: labels not sorted by rank"));
        }
        entries += len;
        labels.push(list);
    }
    let expected = cr.checksum();
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    if u64::from_le_bytes(buf) != expected {
        return Err(KtgError::input("corrupt index: checksum mismatch"));
    }
    Ok(PllIndex::from_parts(
        labels,
        BuildStats { traversals: n, entries, ..BuildStats::default() },
    ))
}


// ---------------------------------------------------------------------------
// Bundles: graph + keywords + optional NLRNL in one file.
// ---------------------------------------------------------------------------

/// A fully reloaded attributed network (module docs, "Bundles").
pub struct Bundle {
    /// The topology, in the format it was saved with.
    pub graph: GraphStore,
    /// The keyword vocabulary.
    pub vocab: Vocabulary,
    /// The per-vertex keyword arena.
    pub keywords: VertexKeywords,
    /// The NLRNL index, when one was bundled.
    pub index: Option<NlrnlIndex>,
}

/// Little-endian in-memory section encoder (bulk array runs).
fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32_run(buf: &mut Vec<u8>, vals: impl ExactSizeIterator<Item = u32>) {
    push_u64(buf, vals.len() as u64);
    buf.reserve(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_u64_run(buf: &mut Vec<u8>, vals: &[u64]) {
    push_u64(buf, vals.len() as u64);
    buf.reserve(vals.len() * 8);
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_byte_run(buf: &mut Vec<u8>, bytes: &[u8]) {
    push_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Cursor over one section's payload; every read is bounds-checked against
/// the section length, so a corrupt count can never over-allocate past the
/// bytes actually present.
struct SectionCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        SectionCursor { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| KtgError::input("corrupt bundle: section over-read"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn read_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn read_len(&mut self) -> Result<usize> {
        let len = self.read_u64()?;
        usize::try_from(len).map_err(|_| KtgError::input("corrupt bundle: length overflows"))
    }

    fn read_u32_run(&mut self) -> Result<Vec<u32>> {
        let count = self.read_len()?;
        let bytes = self.take(count.checked_mul(4).ok_or_else(|| {
            KtgError::input("corrupt bundle: length overflows")
        })?)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    fn read_u64_run(&mut self) -> Result<Vec<u64>> {
        let count = self.read_len()?;
        let bytes = self.take(count.checked_mul(8).ok_or_else(|| {
            KtgError::input("corrupt bundle: length overflows")
        })?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(c);
                u64::from_le_bytes(raw)
            })
            .collect())
    }

    fn read_byte_run(&mut self) -> Result<Vec<u8>> {
        let count = self.read_len()?;
        Ok(self.take(count)?.to_vec())
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(KtgError::input("corrupt bundle: trailing bytes in section"));
        }
        Ok(())
    }
}

fn encode_graph_section(graph: &GraphStore) -> Vec<u8> {
    let mut buf = Vec::new();
    match graph {
        GraphStore::Flat(g) => {
            push_u64_run(&mut buf, g.raw_offsets());
            push_u32_run(&mut buf, g.raw_neighbors().iter().map(|v| v.0));
        }
        GraphStore::Compressed(g) => {
            let (degrees, block_index, block_off, block_first, bytes, num_edges) = g.raw_parts();
            push_u32_run(&mut buf, degrees.iter().copied());
            push_u64_run(&mut buf, block_index);
            push_u64_run(&mut buf, block_off);
            push_u32_run(&mut buf, block_first.iter().copied());
            push_byte_run(&mut buf, bytes);
            push_u64(&mut buf, num_edges);
        }
    }
    buf
}

fn decode_graph_section(payload: &[u8], format: GraphFormat) -> Result<GraphStore> {
    let mut cur = SectionCursor::new(payload);
    let store = match format {
        GraphFormat::Flat => {
            let offsets = cur.read_u64_run()?;
            let neighbors = cur.read_u32_run()?.into_iter().map(VertexId).collect();
            GraphStore::Flat(CsrGraph::from_sorted_parts(offsets, neighbors)?)
        }
        GraphFormat::Compressed => {
            let degrees = cur.read_u32_run()?;
            let block_index = cur.read_u64_run()?;
            let block_off = cur.read_u64_run()?;
            let block_first = cur.read_u32_run()?;
            let bytes = cur.read_byte_run()?;
            let num_edges = cur.read_u64()?;
            GraphStore::Compressed(CompressedCsr::from_raw_parts(
                degrees,
                block_index,
                block_off,
                block_first,
                bytes,
                num_edges,
            )?)
        }
    };
    cur.finish()?;
    Ok(store)
}

fn encode_keyword_section(vocab: &Vocabulary, keywords: &VertexKeywords) -> Vec<u8> {
    let mut buf = Vec::new();
    // Vocabulary: one concatenated UTF-8 blob plus term end offsets.
    let mut term_ends: Vec<u64> = Vec::with_capacity(vocab.len());
    let mut blob: Vec<u8> = Vec::new();
    for term in vocab.terms() {
        blob.extend_from_slice(term.as_bytes());
        term_ends.push(blob.len() as u64);
    }
    push_u64_run(&mut buf, &term_ends);
    push_byte_run(&mut buf, &blob);
    // Per-vertex arena: offsets + keyword ids, both bulk.
    push_u64_run(&mut buf, keywords.raw_offsets());
    push_u32_run(&mut buf, keywords.raw_keywords().iter().map(|k| k.0));
    buf
}

fn decode_keyword_section(payload: &[u8]) -> Result<(Vocabulary, VertexKeywords)> {
    let mut cur = SectionCursor::new(payload);
    let term_ends = cur.read_u64_run()?;
    let blob = cur.read_byte_run()?;
    let mut terms = Vec::with_capacity(term_ends.len());
    let mut start = 0usize;
    for &end in &term_ends {
        let end = usize::try_from(end)
            .ok()
            .filter(|&e| e >= start && e <= blob.len())
            .ok_or_else(|| KtgError::input("corrupt bundle: vocabulary offsets invalid"))?;
        let term = std::str::from_utf8(&blob[start..end])
            .map_err(|_| KtgError::input("corrupt bundle: vocabulary term not UTF-8"))?;
        terms.push(term.to_owned());
        start = end;
    }
    if start != blob.len() {
        return Err(KtgError::input("corrupt bundle: vocabulary blob not covered"));
    }
    let vocab = Vocabulary::from_terms(terms)?;
    let offsets = cur.read_u64_run()?;
    let ids = cur.read_u32_run()?;
    if ids.iter().any(|&k| k as usize >= vocab.len()) {
        return Err(KtgError::input("corrupt bundle: keyword id out of vocabulary"));
    }
    let arena = VertexKeywords::from_raw_parts(offsets, ids.into_iter().map(KeywordId).collect())?;
    cur.finish()?;
    Ok((vocab, arena))
}

fn encode_nlrnl_section(index: &NlrnlIndex) -> Vec<u8> {
    let n = index.num_vertices();
    let mut buf = Vec::new();
    push_u32_run(&mut buf, vertex_range(n).map(|v| index.c(v)));
    push_u32_run(&mut buf, vertex_range(n).map(|v| index.component(v)));
    for lists in [
        NlrnlIndex::forward_lists as fn(&NlrnlIndex, VertexId) -> &LeveledList,
        NlrnlIndex::reverse_lists,
    ] {
        push_u32_run(&mut buf, vertex_range(n).map(|v| lists(index, v).num_levels() as u32));
        let total_bounds: usize = vertex_range(n).map(|v| lists(index, v).num_levels()).sum();
        push_u64(&mut buf, total_bounds as u64);
        buf.reserve(total_bounds * 4);
        for v in vertex_range(n) {
            for &b in lists(index, v).raw_bounds() {
                buf.extend_from_slice(&b.to_le_bytes());
            }
        }
        let total_data: usize = vertex_range(n).map(|v| lists(index, v).total_len()).sum();
        push_u64(&mut buf, total_data as u64);
        buf.reserve(total_data * 4);
        for v in vertex_range(n) {
            for &x in lists(index, v).raw_data() {
                buf.extend_from_slice(&x.0.to_le_bytes());
            }
        }
    }
    buf
}

fn decode_nlrnl_section(payload: &[u8], n: usize) -> Result<NlrnlIndex> {
    let mut cur = SectionCursor::new(payload);
    let c = cur.read_u32_run()?;
    let components = cur.read_u32_run()?;
    if c.len() != n || components.len() != n {
        return Err(KtgError::input("corrupt bundle: index tables do not match |V|"));
    }
    let mut sides: Vec<Vec<LeveledList>> = Vec::with_capacity(2);
    for _ in 0..2 {
        let num_levels = cur.read_u32_run()?;
        if num_levels.len() != n {
            return Err(KtgError::input("corrupt bundle: level-count table does not match |V|"));
        }
        let bounds = cur.read_u32_run()?;
        let data = cur.read_u32_run()?;
        if let Some(&bad) = data.iter().find(|&&x| x as usize >= n) {
            return Err(KtgError::input(format!(
                "corrupt bundle: index entry {bad} out of range for {n} vertices"
            )));
        }
        let mut lists = Vec::with_capacity(n);
        let mut bcur = 0usize;
        let mut dcur = 0usize;
        for &levels in &num_levels {
            let levels = levels as usize;
            let bend = bcur
                .checked_add(levels)
                .filter(|&e| e <= bounds.len())
                .ok_or_else(|| KtgError::input("corrupt bundle: bounds table truncated"))?;
            let vb = bounds[bcur..bend].to_vec();
            let dlen = vb.last().copied().unwrap_or(0) as usize;
            let dend = dcur
                .checked_add(dlen)
                .filter(|&e| e <= data.len())
                .ok_or_else(|| KtgError::input("corrupt bundle: data table truncated"))?;
            let vd = data[dcur..dend].iter().copied().map(VertexId).collect();
            lists.push(LeveledList::from_flat(vd, vb)?);
            bcur = bend;
            dcur = dend;
        }
        if bcur != bounds.len() || dcur != data.len() {
            return Err(KtgError::input("corrupt bundle: index tables not fully covered"));
        }
        sides.push(lists);
    }
    cur.finish()?;
    let reverse = sides.pop().unwrap_or_default();
    let forward = sides.pop().unwrap_or_default();
    validate_component_labels(&components)?;
    Ok(NlrnlIndex::from_parts(n, c, forward, reverse, components))
}

/// Serializes a whole attributed network — graph (in its current format),
/// vocabulary, keyword arena, and optionally an NLRNL index — as one
/// checksummed bundle. The index, when present, must have been built over
/// `graph` (same vertex count; the embedded fingerprint binds them).
///
/// # Errors
/// [`KtgError::InvalidInput`] when the parts disagree on the vertex count;
/// I/O errors from the writer.
pub fn save_bundle<W: Write>(
    graph: &GraphStore,
    vocab: &Vocabulary,
    keywords: &VertexKeywords,
    index: Option<&NlrnlIndex>,
    writer: W,
) -> Result<()> {
    let n = graph.num_vertices();
    if keywords.num_vertices() != n {
        return Err(KtgError::input(format!(
            "keyword arena covers {} vertices, graph has {n}",
            keywords.num_vertices()
        )));
    }
    if let Some(idx) = index {
        if idx.num_vertices() != n {
            return Err(KtgError::input(format!(
                "index covers {} vertices, graph has {n}",
                idx.num_vertices()
            )));
        }
    }
    let mut w = BufWriter::new(writer);
    w.write_all(BUNDLE_MAGIC)?;
    let mut cw = ChecksumWriter::new(&mut w);
    cw.write_u32(VERSION)?;
    cw.write_u32(match graph.format() {
        GraphFormat::Flat => 0,
        GraphFormat::Compressed => 1,
    })?;
    cw.write_u64(n as u64)?;
    cw.write_u64(graph_fingerprint(graph))?;
    let sections: Vec<(u32, Vec<u8>)> = {
        let mut s = vec![
            (SECTION_GRAPH, encode_graph_section(graph)),
            (SECTION_KEYWORDS, encode_keyword_section(vocab, keywords)),
        ];
        if let Some(idx) = index {
            s.push((SECTION_NLRNL, encode_nlrnl_section(idx)));
        }
        s
    };
    cw.write_u32(sections.len() as u32)?;
    for (tag, payload) in &sections {
        cw.write_u32(*tag)?;
        cw.write_u64(payload.len() as u64)?;
        cw.write_bytes(payload)?;
    }
    let checksum = cw.checksum();
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Deserializes a bundle written by [`save_bundle`], validating magic,
/// version, section structure, every per-structure invariant, the graph
/// fingerprint, and the trailing checksum.
///
/// # Errors
/// [`KtgError::InvalidInput`] on corruption (truncation, bad magic or
/// version, over-length sections, structural violations) — never a panic;
/// [`KtgError::IndexMismatch`] when the embedded fingerprint does not
/// match the reloaded graph.
pub fn load_bundle<R: Read>(reader: R) -> Result<Bundle> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BUNDLE_MAGIC {
        return Err(KtgError::input("not a KTG bundle file"));
    }
    let mut cr = ChecksumReader::new(&mut r);
    let version = cr.read_u32()?;
    if version != VERSION {
        return Err(KtgError::input(format!(
            "unsupported bundle version {version} (expected {VERSION})"
        )));
    }
    let format = match cr.read_u32()? {
        0 => GraphFormat::Flat,
        1 => GraphFormat::Compressed,
        other => return Err(KtgError::input(format!("unknown bundle graph format {other}"))),
    };
    let n = usize::try_from(cr.read_u64()?)
        .map_err(|_| KtgError::input("corrupt bundle: vertex count overflows"))?;
    let fingerprint = cr.read_u64()?;
    let num_sections = cr.read_u32()?;
    if !(2..=3).contains(&num_sections) {
        return Err(KtgError::input(format!(
            "corrupt bundle: expected 2 or 3 sections, found {num_sections}"
        )));
    }

    let mut graph: Option<GraphStore> = None;
    let mut kw: Option<(Vocabulary, VertexKeywords)> = None;
    let mut index: Option<NlrnlIndex> = None;
    for i in 0..num_sections {
        let tag = cr.read_u32()?;
        let len = cr.read_u64()?;
        let payload = cr.read_section(len)?;
        match (i, tag) {
            (0, SECTION_GRAPH) => graph = Some(decode_graph_section(&payload, format)?),
            (1, SECTION_KEYWORDS) => kw = Some(decode_keyword_section(&payload)?),
            (2, SECTION_NLRNL) => index = Some(decode_nlrnl_section(&payload, n)?),
            _ => {
                return Err(KtgError::input(format!(
                    "corrupt bundle: unexpected section tag {tag} at position {i}"
                )))
            }
        }
    }
    let expected = cr.checksum();
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    if u64::from_le_bytes(buf) != expected {
        return Err(KtgError::input("corrupt bundle: checksum mismatch"));
    }

    let graph = graph.ok_or_else(|| KtgError::input("corrupt bundle: missing graph section"))?;
    let (vocab, keywords) =
        kw.ok_or_else(|| KtgError::input("corrupt bundle: missing keyword section"))?;
    if graph.num_vertices() != n {
        return Err(KtgError::input(format!(
            "corrupt bundle: graph section covers {} vertices, header says {n}",
            graph.num_vertices()
        )));
    }
    if keywords.num_vertices() != n {
        return Err(KtgError::input(format!(
            "corrupt bundle: keyword arena covers {} vertices, header says {n}",
            keywords.num_vertices()
        )));
    }
    if graph_fingerprint(&graph) != fingerprint {
        return Err(KtgError::IndexMismatch(
            "bundle fingerprint does not match its own graph section".to_string(),
        ));
    }
    Ok(Bundle { graph, vocab, keywords, index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DistanceOracle;

    fn sample_graph() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (6, 7)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        let loaded = load_nlrnl(&g, buf.as_slice()).unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                for k in 0..8 {
                    assert_eq!(
                        index.farther_than(u, v, k),
                        loaded.farther_than(u, v, k),
                        "({u:?}, {v:?}, k={k})"
                    );
                }
                assert_eq!(index.distance(u, v), loaded.distance(u, v));
            }
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let g = sample_graph();
        assert!(load_nlrnl(&g, b"NOTANIDX________".as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_nlrnl(&g, buf.as_slice()).is_err());
    }

    #[test]
    fn bitflip_fails_checksum() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        // Flip a byte in the middle of the payload.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(load_nlrnl(&g, buf.as_slice()).is_err());
    }

    #[test]
    fn different_graph_rejected() {
        let g = sample_graph();
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&index, &g, &mut buf).unwrap();
        // Same vertex count, different topology.
        let other =
            CsrGraph::from_edges(8, &[(0, 2), (2, 4), (4, 6), (6, 0), (1, 3), (3, 5)]).unwrap();
        match load_nlrnl(&other, buf.as_slice()) {
            Err(KtgError::IndexMismatch(_)) => {}
            Err(other) => panic!("expected IndexMismatch, got error {other}"),
            Ok(_) => panic!("expected IndexMismatch, got a loaded index"),
        }
    }

    #[test]
    fn pll_roundtrip_preserves_answers() {
        let g = sample_graph();
        let index = PllIndex::build_parallel_with(&g, 2);
        let mut buf = Vec::new();
        save_pll(&index, &g, &mut buf).unwrap();
        let loaded = load_pll(&g, buf.as_slice()).unwrap();
        assert_eq!(index.labels(), loaded.labels(), "labels reload byte-identically");
        assert_eq!(index.label_entries(), loaded.build_stats().entries);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(index.distance(u, v), loaded.distance(u, v), "({u:?}, {v:?})");
            }
        }
    }

    #[test]
    fn pll_load_rejects_nlrnl_file_and_vice_versa() {
        let g = sample_graph();
        let nlrnl = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        save_nlrnl(&nlrnl, &g, &mut buf).unwrap();
        assert!(load_pll(&g, buf.as_slice()).is_err(), "magic mismatch");
        let pll = PllIndex::build(&g);
        let mut buf = Vec::new();
        save_pll(&pll, &g, &mut buf).unwrap();
        assert!(load_nlrnl(&g, buf.as_slice()).is_err(), "magic mismatch");
    }

    #[test]
    fn pll_bitflip_and_wrong_graph_rejected() {
        let g = sample_graph();
        let pll = PllIndex::build(&g);
        let mut buf = Vec::new();
        save_pll(&pll, &g, &mut buf).unwrap();
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(load_pll(&g, flipped.as_slice()).is_err());
        let other =
            CsrGraph::from_edges(8, &[(0, 2), (2, 4), (4, 6), (6, 0), (1, 3), (3, 5)]).unwrap();
        match load_pll(&other, buf.as_slice()) {
            Err(KtgError::IndexMismatch(_)) => {}
            Err(other) => panic!("expected IndexMismatch, got error {other}"),
            Ok(_) => panic!("expected IndexMismatch, got a loaded index"),
        }
    }


    fn sample_bundle_parts(format: GraphFormat) -> (GraphStore, Vocabulary, VertexKeywords) {
        let graph = GraphStore::from_csr(sample_graph(), format);
        let mut vocab = Vocabulary::new();
        let ids = vocab.intern_all(["db", "ir", "ml", "hci"]);
        let mut lists = vec![Vec::new(); graph.num_vertices()];
        for (i, list) in lists.iter_mut().enumerate() {
            list.push(ids[i % ids.len()]);
            if i % 2 == 0 {
                list.push(ids[(i + 1) % ids.len()]);
            }
            list.sort_unstable();
            list.dedup();
        }
        (graph, vocab, VertexKeywords::from_lists(&lists))
    }

    #[test]
    fn bundle_roundtrip_both_formats() {
        for format in [GraphFormat::Flat, GraphFormat::Compressed] {
            let (graph, vocab, keywords) = sample_bundle_parts(format);
            let index = NlrnlIndex::build(&graph);
            let mut buf = Vec::new();
            save_bundle(&graph, &vocab, &keywords, Some(&index), &mut buf).unwrap();
            let bundle = load_bundle(buf.as_slice()).unwrap();
            assert_eq!(bundle.graph, graph, "{format}: graph reloads byte-identically");
            assert_eq!(bundle.vocab.terms(), vocab.terms());
            assert_eq!(bundle.keywords, keywords);
            let loaded = bundle.index.expect("index section present");
            for u in vertex_range(graph.num_vertices()) {
                for v in vertex_range(graph.num_vertices()) {
                    assert_eq!(loaded.distance(u, v), index.distance(u, v), "({u:?},{v:?})");
                    for k in 0..6 {
                        assert_eq!(
                            loaded.farther_than(u, v, k),
                            index.farther_than(u, v, k),
                            "({u:?},{v:?},k={k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bundle_roundtrip_without_index() {
        let (graph, vocab, keywords) = sample_bundle_parts(GraphFormat::Compressed);
        let mut buf = Vec::new();
        save_bundle(&graph, &vocab, &keywords, None, &mut buf).unwrap();
        let bundle = load_bundle(buf.as_slice()).unwrap();
        assert!(bundle.index.is_none());
        assert_eq!(bundle.graph, graph);
    }

    /// The full corruption suite: every damage mode returns a typed error,
    /// never a panic.
    #[test]
    fn bundle_corruption_suite() {
        let (graph, vocab, keywords) = sample_bundle_parts(GraphFormat::Flat);
        let index = NlrnlIndex::build(&graph);
        let mut buf = Vec::new();
        save_bundle(&graph, &vocab, &keywords, Some(&index), &mut buf).unwrap();

        // Truncated header: cut inside the fixed fields.
        for cut in [0usize, 4, 9, 14, 20] {
            match load_bundle(&buf[..cut]) {
                Err(KtgError::InvalidInput(_)) | Err(KtgError::Io(_)) => {}
                other => panic!("cut={cut}: must fail typed, ok={}", other.is_ok()),
            }
        }

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(load_bundle(bad.as_slice()), Err(KtgError::InvalidInput(_))));

        // Bad version.
        let mut bad = buf.clone();
        bad[8] = 0xEE;
        assert!(matches!(load_bundle(bad.as_slice()), Err(KtgError::InvalidInput(_))));

        // Fingerprint mismatch (flip a fingerprint byte, keep structure):
        // the checksum catches it first unless we also re-seal, so damage
        // the fingerprint AND accept either typed error — never a panic.
        let mut bad = buf.clone();
        bad[16] ^= 0x01;
        match load_bundle(bad.as_slice()) {
            Err(KtgError::InvalidInput(_)) | Err(KtgError::IndexMismatch(_)) => {}
            other => panic!("fingerprint damage must fail typed, got {:?}", other.is_ok()),
        }

        // Over-length section: grow the first section's declared length
        // far past the file end.
        let mut bad = buf.clone();
        let section_len_at = 8 + 4 + 4 + 8 + 8 + 4 + 4; // magic..num_sections + tag
        bad[section_len_at..section_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match load_bundle(bad.as_slice()) {
            Err(KtgError::InvalidInput(_)) | Err(KtgError::Io(_)) => {}
            other => panic!("over-length section must fail typed, got {:?}", other.is_ok()),
        }

        // Truncations at every eighth byte: typed errors all the way down.
        for cut in (0..buf.len()).step_by(8) {
            assert!(load_bundle(&buf[..cut]).is_err(), "cut={cut} must fail");
        }

        // Random payload bit flips: checksum or structural validation
        // rejects; reloads that fail do so with a typed error.
        for i in (24..buf.len()).step_by(37) {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            if let Err(e) = load_bundle(bad.as_slice()) {
                assert!(
                    matches!(e, KtgError::InvalidInput(_) | KtgError::IndexMismatch(_) | KtgError::Io(_)),
                    "flip at {i}: unexpected error kind {e}"
                );
            }
        }
    }

    #[test]
    fn bundle_rejects_mismatched_parts() {
        let (graph, vocab, _) = sample_bundle_parts(GraphFormat::Flat);
        let short = VertexKeywords::from_lists(&vec![Vec::new(); 3]);
        let mut buf = Vec::new();
        assert!(save_bundle(&graph, &vocab, &short, None, &mut buf).is_err());
    }

    #[test]
    fn fingerprint_sensitive_to_edges() {
        let a = sample_graph();
        let b = CsrGraph::from_edges(8, &[(0, 1)]).unwrap();
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }
}

//! The index-free oracle: hop-bounded BFS with a one-slot memo.
//!
//! k-line filtering (paper Theorem 3) probes many candidates against the
//! *same* newly selected member, so a plain per-pair BFS would re-explore
//! the same ball repeatedly. The memo keeps the within-`k` ball of the most
//! recent `(source, k)` pair; with it, filtering a whole candidate set
//! costs one bounded BFS plus hash probes — the honest "no index" baseline
//! of the paper's `KTG-VKC` configuration before NL/NLRNL are introduced.

use crate::oracle::DistanceOracle;
use ktg_common::{FxHashSet, VertexId};
use ktg_graph::{bfs, Adjacency, BfsScratch, CsrGraph};
use std::sync::Mutex;

/// Index-free distance oracle over a borrowed graph (any [`Adjacency`]).
pub struct BfsOracle<'g, G: Adjacency = CsrGraph> {
    graph: &'g G,
    state: Mutex<MemoState>,
}

struct MemoState {
    scratch: BfsScratch,
    /// `(source, k)` of the cached ball, if any.
    key: Option<(VertexId, u32)>,
    /// Vertices within `k` hops of the cached source (source excluded).
    ball: FxHashSet<VertexId>,
}

impl<'g, G: Adjacency> BfsOracle<'g, G> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'g G) -> Self {
        BfsOracle {
            graph,
            state: Mutex::new(MemoState {
                scratch: BfsScratch::new(graph.num_vertices()),
                key: None,
                ball: FxHashSet::default(),
            }),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &G {
        self.graph
    }

    fn ball_contains(&self, source: VertexId, k: u32, target: VertexId) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.key != Some((source, k)) {
            st.ball.clear();
            // Split-borrow via a local take of the scratch to appease the
            // borrow checker without cloning.
            let mut scratch = std::mem::replace(&mut st.scratch, BfsScratch::new(0));
            let ball = &mut st.ball;
            bfs::bfs_levels(self.graph, source, k as usize, &mut scratch, |v, _| {
                ball.insert(v);
            });
            st.scratch = scratch;
            st.key = Some((source, k));
        }
        st.ball.contains(&target)
    }
}

impl<G: Adjacency + Sync> DistanceOracle for BfsOracle<'_, G> {
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        if u == v {
            return false; // Dis(u, u) = 0
        }
        // Keep the memo effective for the filter pattern (same u, many v):
        // always BFS from u.
        !self.ball_contains(u, k, v)
    }

    fn name(&self) -> &'static str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn matches_path_distances() {
        let g = path5();
        let o = BfsOracle::new(&g);
        assert!(!o.farther_than(VertexId(0), VertexId(2), 2));
        assert!(o.farther_than(VertexId(0), VertexId(3), 2));
        assert!(!o.farther_than(VertexId(0), VertexId(3), 3));
    }

    #[test]
    fn self_pair() {
        let g = path5();
        let o = BfsOracle::new(&g);
        assert!(!o.farther_than(VertexId(2), VertexId(2), 0));
    }

    #[test]
    fn disconnected_pair_is_farther() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let o = BfsOracle::new(&g);
        assert!(o.farther_than(VertexId(0), VertexId(3), 100));
    }

    #[test]
    fn memo_survives_source_switches() {
        let g = path5();
        let o = BfsOracle::new(&g);
        // Interleave sources and ks; all answers must stay exact.
        assert!(o.farther_than(VertexId(0), VertexId(4), 3));
        assert!(!o.farther_than(VertexId(4), VertexId(2), 2));
        assert!(!o.farther_than(VertexId(0), VertexId(4), 4));
        assert!(o.farther_than(VertexId(4), VertexId(0), 3));
    }

    #[test]
    fn filter_pattern_many_targets() {
        let g = path5();
        let o = BfsOracle::new(&g);
        let far: Vec<u32> = (0..5)
            .filter(|&t| o.farther_than(VertexId(2), VertexId(t), 1))
            .collect();
        assert_eq!(far, vec![0, 4]);
    }
}

//! The distance-oracle abstraction.
//!
//! Paper Definition 2 calls a pair `{u, v}` a *k-line* when
//! `Dis(u, v) ≤ k`; a *k-distance group* (Definition 3) contains no k-line.
//! All KTG algorithms are generic over [`DistanceOracle`], so the same
//! branch-and-bound code runs with on-demand BFS, the NL index, or the
//! NLRNL index — the exact configuration matrix of the paper's §VII.

use ktg_common::VertexId;

/// Answers "is the social distance of `u` and `v` greater than `k`?".
///
/// Implementations must agree with the hop-count shortest-path distance of
/// the graph they were built over, with `Dis(u, u) = 0` and
/// `Dis(u, v) = ∞` for disconnected pairs (infinite distance is *greater
/// than* any `k`).
pub trait DistanceOracle: Sync {
    /// `true` iff `Dis(u, v) > k`.
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool;

    /// `true` iff `{u, v}` is a k-line, i.e. `Dis(u, v) ≤ k`
    /// (paper Definition 2). The negation of [`Self::farther_than`].
    #[inline]
    fn is_kline(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        !self.farther_than(u, v, k)
    }

    /// Short name for reports ("bfs", "nl", "nlrnl", ...).
    fn name(&self) -> &'static str;
}

/// Blanket impl so `&O` is usable wherever an oracle is expected.
impl<O: DistanceOracle + ?Sized> DistanceOracle for &O {
    #[inline]
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        (**self).farther_than(u, v, k)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake oracle where distance = |u - v| on a line graph.
    struct LineOracle;

    impl DistanceOracle for LineOracle {
        fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
            u.0.abs_diff(v.0) > k
        }
        fn name(&self) -> &'static str {
            "line"
        }
    }

    #[test]
    fn kline_is_negation() {
        let o = LineOracle;
        assert!(o.farther_than(VertexId(0), VertexId(5), 3));
        assert!(!o.is_kline(VertexId(0), VertexId(5), 3));
        assert!(o.is_kline(VertexId(0), VertexId(2), 3));
    }

    #[test]
    fn reference_blanket_impl() {
        let o = LineOracle;
        let r: &dyn DistanceOracle = &o;
        assert!(r.farther_than(VertexId(0), VertexId(9), 2));
        assert_eq!(DistanceOracle::name(&&o), "line");
    }

    #[test]
    fn self_distance_never_farther() {
        let o = LineOracle;
        assert!(!o.farther_than(VertexId(3), VertexId(3), 0));
        assert!(o.is_kline(VertexId(3), VertexId(3), 1));
    }
}

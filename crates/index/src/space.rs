//! Index space and construction accounting (paper Figure 9).
//!
//! The paper compares NL vs NLRNL on two axes: bytes stored and build wall
//! time. Both indexes report these through the structures here so the
//! Figure 9 bench prints directly comparable rows.

use std::time::Duration;

/// Byte-level breakdown of an index's storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexSpace {
    /// Bytes in forward hop-level lists.
    pub forward_bytes: usize,
    /// Bytes in reverse hop-level lists (NLRNL only).
    pub reverse_bytes: usize,
    /// Bytes in auxiliary structures (level tables, component labels, ...).
    pub aux_bytes: usize,
}

impl IndexSpace {
    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.forward_bytes + self.reverse_bytes + self.aux_bytes
    }

    /// Total in mebibytes, for reports.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Construction statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Wall-clock build time.
    pub elapsed: Duration,
    /// Number of per-vertex BFS traversals performed.
    pub traversals: usize,
    /// Total hop-list entries written.
    pub entries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = IndexSpace { forward_bytes: 100, reverse_bytes: 50, aux_bytes: 10 };
        assert_eq!(s.total_bytes(), 160);
        assert!((s.total_mib() - 160.0 / 1048576.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(IndexSpace::default().total_bytes(), 0);
    }
}

//! Batch construction of k-line conflict bitmaps.
//!
//! The conflict-bitmap kernel of the branch-and-bound search (paper §IV,
//! Theorem 3) needs, for every candidate `c`, the set of *other candidates*
//! within `k` hops of `c` — the vertices that can never share a socially
//! tenuous group with it. Computing that set once per candidate up front
//! turns the per-node k-line filtering of the DFS into a word-parallel
//! `AND-NOT` over candidate-index bitsets instead of one oracle probe per
//! (selected, remaining) pair.
//!
//! [`kline_conflict_bitmaps`] runs one hop-bounded BFS per candidate,
//! fanned out over [`ktg_common::parallel::worker_count`] scoped threads
//! with a per-worker [`BfsScratch`]. The result is exact (BFS is the
//! ground truth every [`crate::DistanceOracle`] implements), so a search
//! using these bitmaps returns byte-identical groups to one using any
//! correct oracle.

use crate::pll::PllIndex;
use ktg_common::parallel::{chunk_size, scope_join, worker_count};
use ktg_common::{FixedBitSet, VertexId};
use ktg_graph::bfs::{bfs_levels, BfsScratch};
use ktg_graph::csr::Adjacency;

/// Builds one conflict bitmap per source candidate, in `sources` order.
///
/// Bit `j` of bitmap `i` is set iff `0 < dist(sources[i], sources[j]) <= k`
/// — i.e. candidate `j` conflicts with candidate `i` under tenuity
/// constraint `k`. Bits index into `sources`, not into the graph's vertex
/// space. A candidate's own bit is always unset (a BFS does not revisit
/// its source), and `k = 0` therefore yields all-empty bitmaps.
///
/// Conflict is symmetric, so the returned matrix is too; both halves are
/// still materialized because the DFS masks whole rows.
pub fn kline_conflict_bitmaps<A: Adjacency + Sync>(
    graph: &A,
    sources: &[VertexId],
    k: u32,
) -> Vec<FixedBitSet> {
    let n = graph.num_vertices();
    // Vertex id -> candidate index, u32::MAX for non-candidates.
    let mut index_of = vec![u32::MAX; n];
    for (i, v) in sources.iter().enumerate() {
        index_of[v.index()] = i as u32;
    }

    let mut bitmaps: Vec<FixedBitSet> =
        (0..sources.len()).map(|_| FixedBitSet::new(sources.len())).collect();

    let chunk = chunk_size(sources.len(), worker_count());
    let index_of = &index_of;
    scope_join(sources.chunks(chunk).zip(bitmaps.chunks_mut(chunk)).map(
        |(src_chunk, bm_chunk)| {
            move || {
                let mut scratch = BfsScratch::new(n);
                for (src, bitmap) in src_chunk.iter().zip(bm_chunk.iter_mut()) {
                    bfs_levels(graph, *src, k as usize, &mut scratch, |v, _| {
                        let j = index_of[v.index()];
                        if j != u32::MAX {
                            bitmap.insert(j as usize);
                        }
                    });
                }
            }
        },
    ));

    bitmaps
}

/// [`kline_conflict_bitmaps`]'s label-merge twin: the identical conflict
/// matrix, but every row comes from PLL label merges — O(|L(u)| + |L(v)|)
/// per candidate pair — instead of a hop-bounded BFS over the graph. On
/// large graphs with small candidate sets this replaces |C| frontier
/// expansions with |C|² tiny merges, which is the crossover `bb_scaling`
/// charts. PLL distances are exact, so the bits (and therefore the
/// search results) are byte-identical to the BFS construction.
///
/// `out` is recycled in place ([`FixedBitSet::reset`]) for pooled reuse.
pub fn pll_conflict_bitmaps_into(
    pll: &PllIndex,
    sources: &[VertexId],
    k: u32,
    out: &mut Vec<FixedBitSet>,
) {
    let m = sources.len();
    out.truncate(m);
    while out.len() < m {
        out.push(FixedBitSet::new(m));
    }
    let chunk = chunk_size(m, worker_count());
    scope_join(sources.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate().map(
        |(ci, (src_chunk, bm_chunk))| {
            let base = ci * chunk;
            move || {
                let mut hub_scratch = Vec::new();
                let mut dists = Vec::new();
                for (off, (src, bitmap)) in
                    src_chunk.iter().zip(bm_chunk.iter_mut()).enumerate()
                {
                    bitmap.reset(m);
                    pll.distances_into(*src, sources, &mut hub_scratch, &mut dists);
                    for (j, &d) in dists.iter().enumerate() {
                        // `d == 0` only at the source itself (candidates
                        // are distinct vertices), excluded by index.
                        if j != base + off && d <= k {
                            bitmap.insert(j);
                        }
                    }
                }
            }
        },
    ));
}

/// Allocating convenience wrapper over [`pll_conflict_bitmaps_into`].
pub fn pll_conflict_bitmaps(pll: &PllIndex, sources: &[VertexId], k: u32) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    pll_conflict_bitmaps_into(pll, sources, k, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DistanceOracle;
    use crate::ExactOracle;
    use ktg_graph::csr::CsrGraph;

    /// 0-1-2-3 path plus isolated 4.
    fn fixture() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn marks_exactly_the_within_k_candidates() {
        let g = fixture();
        let sources: Vec<VertexId> = (0..5).map(VertexId).collect();
        let bitmaps = kline_conflict_bitmaps(&g, &sources, 2);
        // Vertex 0 reaches 1 (d=1) and 2 (d=2) within 2 hops; not 3 or 4.
        assert!(bitmaps[0].contains(1));
        assert!(bitmaps[0].contains(2));
        assert!(!bitmaps[0].contains(0), "own bit stays unset");
        assert!(!bitmaps[0].contains(3));
        assert!(!bitmaps[0].contains(4));
        // Isolated vertex conflicts with nothing.
        assert_eq!(bitmaps[4].count_ones(), 0);
    }

    #[test]
    fn k_zero_yields_empty_bitmaps() {
        let g = fixture();
        let sources: Vec<VertexId> = (0..5).map(VertexId).collect();
        for bm in kline_conflict_bitmaps(&g, &sources, 0) {
            assert_eq!(bm.count_ones(), 0);
        }
    }

    #[test]
    fn restricted_source_set_uses_candidate_indices() {
        let g = fixture();
        // Candidates are vertices {1, 3}: dist(1,3) = 2.
        let sources = vec![VertexId(1), VertexId(3)];
        let within_2 = kline_conflict_bitmaps(&g, &sources, 2);
        assert!(within_2[0].contains(1), "bit 1 means candidate 3, not vertex 1");
        assert!(within_2[1].contains(0));
        let within_1 = kline_conflict_bitmaps(&g, &sources, 1);
        assert_eq!(within_1[0].count_ones(), 0);
        assert_eq!(within_1[1].count_ones(), 0);
    }

    #[test]
    fn agrees_with_exact_oracle_on_random_graph() {
        let mut rng = ktg_common::SeededRng::seed_from_u64(0x5eed_ba7c);
        let n = 40;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.07) {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges).unwrap();
        let oracle = ExactOracle::build(&g);
        // An arbitrary subset of vertices as candidates.
        let sources: Vec<VertexId> = (0..n).filter(|u| u % 3 != 1).map(VertexId).collect();
        for k in [0u32, 1, 2, 3] {
            let bitmaps = kline_conflict_bitmaps(&g, &sources, k);
            for (i, &u) in sources.iter().enumerate() {
                for (j, &v) in sources.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let conflict = !oracle.farther_than(u, v, k);
                    assert_eq!(
                        bitmaps[i].contains(j),
                        conflict,
                        "k={k} u={u:?} v={v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pll_rows_match_bfs_rows() {
        let mut rng = ktg_common::SeededRng::seed_from_u64(0x911_0cde);
        let n = 48;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.06) {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges).unwrap();
        let pll = PllIndex::build_parallel_with(&g, 3);
        let sources: Vec<VertexId> = (0..n).filter(|u| u % 4 != 2).map(VertexId).collect();
        for k in [0u32, 1, 2, 4] {
            let bfs_rows = kline_conflict_bitmaps(&g, &sources, k);
            let pll_rows = pll_conflict_bitmaps(&pll, &sources, k);
            assert_eq!(pll_rows, bfs_rows, "k={k}");
        }
        // Pooled reuse over shrinking source sets recycles rows cleanly.
        let mut out = pll_conflict_bitmaps(&pll, &sources, 4);
        let subset: Vec<VertexId> = sources.iter().copied().step_by(2).collect();
        pll_conflict_bitmaps_into(&pll, &subset, 2, &mut out);
        assert_eq!(out, kline_conflict_bitmaps(&g, &subset, 2));
    }
}

//! Tenuity metrics from the paper and its related work (§II-A).
//!
//! The literature measures how "socially tenuous" a group is in several
//! inequivalent ways; the paper's §II discusses all of them and §III picks
//! the strictest. This module implements each so result groups can be
//! compared across definitions (the case study and the TAGQ comparator
//! rely on them):
//!
//! * **k-line count** (Li, ICDMW'18 [2]): number of member pairs within
//!   `k` hops. The paper's k-distance group is exactly "zero k-lines".
//! * **k-triangle count** (Shen et al., KDD'17 [1]): number of member
//!   triples pairwise within `k` hops.
//! * **k-tenuity** (Li et al. [18]): fraction of member pairs within `k`
//!   hops — the relaxation TAGQ optimizes under.
//! * **group tenuity** (paper Definition 4): the smallest pairwise
//!   distance in the group (`None` = all pairs unreachable, maximally
//!   tenuous).

use ktg_common::VertexId;
use ktg_index::DistanceOracle;

/// All pairwise metrics of one group under one `k`, computed with
/// `C(p, 2)` oracle probes (plus `C(p, 3)` set checks for triangles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenuityReport {
    /// Member pairs with `Dis ≤ k` (k-lines, Definition 2).
    pub kline_pairs: u32,
    /// Member triples pairwise within `k` (k-triangles).
    pub ktriangles: u32,
    /// Total member pairs `C(p, 2)`.
    pub total_pairs: u32,
}

impl TenuityReport {
    /// The k-tenuity ratio of [18]: `kline_pairs / total_pairs`
    /// (0 for groups with fewer than 2 members).
    pub fn ktenuity(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        self.kline_pairs as f64 / self.total_pairs as f64
    }

    /// Whether the group is a k-distance group (Definition 3).
    pub fn is_k_distance_group(&self) -> bool {
        self.kline_pairs == 0
    }
}

/// Computes the pairwise/triple metrics of `members` under `k`.
pub fn report(oracle: &impl DistanceOracle, members: &[VertexId], k: u32) -> TenuityReport {
    let p = members.len();
    let mut within = vec![false; p * p];
    let mut kline_pairs = 0u32;
    for i in 0..p {
        for j in (i + 1)..p {
            if oracle.is_kline(members[i], members[j], k) {
                within[i * p + j] = true;
                kline_pairs += 1;
            }
        }
    }
    let mut ktriangles = 0u32;
    for i in 0..p {
        for j in (i + 1)..p {
            if !within[i * p + j] {
                continue;
            }
            for l in (j + 1)..p {
                if within[i * p + l] && within[j * p + l] {
                    ktriangles += 1;
                }
            }
        }
    }
    TenuityReport {
        kline_pairs,
        ktriangles,
        total_pairs: (p * p.saturating_sub(1) / 2) as u32,
    }
}

/// The paper's Definition 4: the smallest pairwise distance in the group.
/// `None` when no pair is reachable (or fewer than two members) — the
/// maximally tenuous case.
///
/// Requires an oracle exposing exact distances; [`ktg_index::NlrnlIndex`]
/// and [`ktg_index::PllIndex`] both do. This function takes the distances
/// through a closure so any of them (or a plain BFS) plugs in.
pub fn group_tenuity<F>(members: &[VertexId], mut distance: F) -> Option<u32>
where
    F: FnMut(VertexId, VertexId) -> Option<u32>,
{
    let mut min: Option<u32> = None;
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            if let Some(d) = distance(u, v) {
                min = Some(min.map_or(d, |m| m.min(d)));
            }
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use ktg_index::{ExactOracle, NlrnlIndex};

    fn ids(raw: &[u32]) -> Vec<VertexId> {
        raw.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn paper_result_group_is_zero_kline() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let r = report(&oracle, &ids(&[10, 1, 4]), 1);
        assert_eq!(r.kline_pairs, 0);
        assert_eq!(r.ktriangles, 0);
        assert!(r.is_k_distance_group());
        assert_eq!(r.ktenuity(), 0.0);
        assert_eq!(r.total_pairs, 3);
    }

    #[test]
    fn dense_corner_counts_triangles() {
        // u4, u6, u7 are pairwise within 1 hop in the Figure 1 graph.
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let r = report(&oracle, &ids(&[4, 6, 7]), 1);
        assert_eq!(r.kline_pairs, 3);
        assert_eq!(r.ktriangles, 1);
        assert!(!r.is_k_distance_group());
        assert!((r.ktenuity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_group_partial_tenuity() {
        // u6-u7 adjacent; u10 far from both → 1 k-line of 3 pairs.
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let r = report(&oracle, &ids(&[6, 7, 10]), 1);
        assert_eq!(r.kline_pairs, 1);
        assert_eq!(r.ktriangles, 0);
        assert!((r.ktenuity() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tenuity_definition4() {
        let net = fixtures::figure1();
        let index = NlrnlIndex::build(net.graph());
        // The paper group {u10, u1, u4}: all pairwise distances ≥ 2.
        let t = group_tenuity(&ids(&[10, 1, 4]), |u, v| index.distance(u, v));
        assert!(t.expect("connected") >= 2);
        // Adjacent pair drops tenuity to 1.
        let t2 = group_tenuity(&ids(&[6, 7]), |u, v| index.distance(u, v));
        assert_eq!(t2, Some(1));
    }

    #[test]
    fn degenerate_groups() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let r = report(&oracle, &ids(&[3]), 2);
        assert_eq!(r.total_pairs, 0);
        assert_eq!(r.ktenuity(), 0.0);
        assert!(r.is_k_distance_group());
        assert_eq!(group_tenuity(&ids(&[3]), |_, _| Some(1)), None);
    }

    #[test]
    fn ktenuity_matches_tagq_budget_semantics() {
        // The TAGQ comparator admits a group iff its k-line count stays
        // within ⌊θ·C(p,2)⌋ — i.e. k-tenuity ≤ θ (up to flooring).
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let r = report(&oracle, &ids(&[6, 7, 10]), 1);
        let budget = crate::tagq::allowed_kline_pairs(3, 0.34);
        assert!(r.kline_pairs <= budget, "one k-line fits a θ=0.34 budget");
    }
}

//! Search instrumentation.
//!
//! Every solver reports a [`SearchStats`], which the ablation benches use
//! to attribute speedups to specific rules (how much did keyword pruning
//! cut? how many oracle probes did k-line filtering issue?) rather than to
//! wall-clock noise.

/// Counters collected during one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Branch-and-bound tree nodes visited (states entered).
    pub nodes: u64,
    /// Branches cut by keyword pruning (Theorem 2).
    pub keyword_pruned: u64,
    /// Branches cut because `|S_I| + |S_R| < p` cannot reach size `p`.
    pub feasibility_cuts: u64,
    /// Candidates removed by k-line filtering (Theorem 3).
    pub kline_filtered: u64,
    /// Distance-oracle probes issued.
    pub distance_checks: u64,
    /// Feasible groups of size `p` evaluated.
    pub groups_evaluated: u64,
    /// Whether the search was abandoned by a node budget (bench safety
    /// valve); a truncated result may be sub-optimal.
    pub truncated: bool,
}

impl SearchStats {
    /// Accumulates another run's counters (for workload aggregation).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.keyword_pruned += other.keyword_pruned;
        self.feasibility_cuts += other.feasibility_cuts;
        self.kline_filtered += other.kline_filtered;
        self.distance_checks += other.distance_checks;
        self.groups_evaluated += other.groups_evaluated;
        self.truncated |= other.truncated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = SearchStats { nodes: 1, keyword_pruned: 2, ..Default::default() };
        let b = SearchStats { nodes: 10, distance_checks: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.nodes, 11);
        assert_eq!(a.keyword_pruned, 2);
        assert_eq!(a.distance_checks, 5);
    }
}

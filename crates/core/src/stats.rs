//! Search instrumentation.
//!
//! Every solver reports a [`SearchStats`], which the ablation benches use
//! to attribute speedups to specific rules (how much did keyword pruning
//! cut? how many oracle probes did k-line filtering issue?) rather than to
//! wall-clock noise.

/// Counters collected during one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Branch-and-bound tree nodes visited (states entered).
    pub nodes: u64,
    /// Branches cut by keyword pruning (Theorem 2).
    pub keyword_pruned: u64,
    /// Branches cut because `|S_I| + |S_R| < p` cannot reach size `p`.
    pub feasibility_cuts: u64,
    /// Candidates removed by k-line filtering (Theorem 3).
    pub kline_filtered: u64,
    /// Distance-oracle probes issued.
    pub distance_checks: u64,
    /// Feasible groups of size `p` evaluated.
    pub groups_evaluated: u64,
    /// Whether the search was abandoned by a node budget (bench safety
    /// valve); a truncated result may be sub-optimal.
    pub truncated: bool,
    /// Whether the search observed a fired [`ktg_common::CancelToken`]
    /// (deadline or explicit cancel) and stopped early; the result is
    /// then an anytime best-so-far, possibly sub-optimal.
    pub cancelled: bool,
}

impl SearchStats {
    /// Accumulates another run's counters — used to aggregate per-worker
    /// stats in the parallel engine and per-query stats in workload
    /// drivers (`multi_query`, the bench runner). Sums saturate rather
    /// than wrap so a pathological aggregation pins at `u64::MAX` instead
    /// of silently reporting a tiny count; `truncated` ORs (one truncated
    /// worker makes the whole run truncated).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes = self.nodes.saturating_add(other.nodes);
        self.keyword_pruned = self.keyword_pruned.saturating_add(other.keyword_pruned);
        self.feasibility_cuts = self.feasibility_cuts.saturating_add(other.feasibility_cuts);
        self.kline_filtered = self.kline_filtered.saturating_add(other.kline_filtered);
        self.distance_checks = self.distance_checks.saturating_add(other.distance_checks);
        self.groups_evaluated = self.groups_evaluated.saturating_add(other.groups_evaluated);
        self.truncated |= other.truncated;
        self.cancelled |= other.cancelled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = SearchStats { nodes: 1, keyword_pruned: 2, ..Default::default() };
        let b = SearchStats { nodes: 10, distance_checks: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.nodes, 11);
        assert_eq!(a.keyword_pruned, 2);
        assert_eq!(a.distance_checks, 5);
        assert!(!a.truncated);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = SearchStats { nodes: u64::MAX - 1, groups_evaluated: u64::MAX, ..Default::default() };
        let b = SearchStats { nodes: 5, groups_evaluated: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.nodes, u64::MAX);
        assert_eq!(a.groups_evaluated, u64::MAX);
    }

    #[test]
    fn merge_ors_truncated() {
        let mut a = SearchStats::default();
        a.merge(&SearchStats { truncated: true, ..Default::default() });
        assert!(a.truncated);
        // Once truncated, merging a clean run does not reset the flag.
        a.merge(&SearchStats::default());
        assert!(a.truncated);
    }

    #[test]
    fn merge_ors_cancelled() {
        let mut a = SearchStats::default();
        a.merge(&SearchStats { cancelled: true, ..Default::default() });
        assert!(a.cancelled);
        a.merge(&SearchStats::default());
        assert!(a.cancelled, "one cancelled worker marks the whole run");
    }

    #[test]
    fn merge_identity_is_default() {
        let mut a =
            SearchStats { nodes: 7, kline_filtered: 3, feasibility_cuts: 2, ..Default::default() };
        let before = a;
        a.merge(&SearchStats::default());
        assert_eq!(a, before);
    }
}

//! Result explanation.
//!
//! Turning a result group into something a human can audit — which member
//! contributes which keyword, and how far apart the members actually are —
//! is needed by the CLI, the Figure 8 case study, and anyone debugging a
//! query. This module centralizes that logic instead of each binary
//! re-deriving it.

use crate::group::Group;
use crate::network::AttributedGraph;
use ktg_common::VertexId;
use ktg_graph::{bfs, BfsScratch};
use ktg_keywords::{QueryKeywords, QueryMasks};
use std::fmt;

/// A fully resolved explanation of one result group.
#[derive(Clone, Debug)]
pub struct GroupExplanation {
    /// Per-member detail, in member-id order.
    pub members: Vec<MemberDetail>,
    /// Pairwise hop distances `(u, v, Dis(u, v))`; `None` = unreachable.
    pub pair_distances: Vec<(VertexId, VertexId, Option<u32>)>,
    /// Covered query keywords, in query bit order.
    pub covered_terms: Vec<String>,
    /// Query keywords the group does *not* cover.
    pub missing_terms: Vec<String>,
    /// The tenuity of the group (Definition 4): the smallest pairwise
    /// distance; `None` when all pairs are unreachable (maximally tenuous)
    /// or the group has fewer than two members.
    pub tenuity: Option<u32>,
}

/// One member's contribution.
#[derive(Clone, Debug)]
pub struct MemberDetail {
    /// The member.
    pub vertex: VertexId,
    /// The query keywords this member covers.
    pub covered_terms: Vec<String>,
    /// The member's full keyword profile.
    pub profile_terms: Vec<String>,
    /// Degree in the social graph.
    pub degree: usize,
}

/// Builds the explanation of `group` under `keywords` on `net`.
pub fn explain(
    net: &AttributedGraph,
    keywords: &QueryKeywords,
    masks: &QueryMasks,
    group: &Group,
) -> GroupExplanation {
    let term = |k| net.vocab().term(k).to_string();

    let members = group
        .members()
        .iter()
        .map(|&v| {
            let mask = masks.mask(v);
            MemberDetail {
                vertex: v,
                covered_terms: keywords
                    .ids()
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| mask >> bit & 1 == 1)
                    .map(|(_, &k)| term(k))
                    .collect(),
                profile_terms: net.keywords().keywords(v).iter().map(|&k| term(k)).collect(),
                degree: net.graph().degree(v),
            }
        })
        .collect();

    let mut scratch = BfsScratch::new(net.num_vertices());
    let mut pair_distances = Vec::new();
    let mut tenuity: Option<u32> = None;
    for (i, &u) in group.members().iter().enumerate() {
        for &v in &group.members()[i + 1..] {
            let d = bfs::distance_bounded(net.graph(), u, v, net.num_vertices(), &mut scratch);
            if let Some(d) = d {
                tenuity = Some(tenuity.map_or(d, |t| t.min(d)));
            }
            pair_distances.push((u, v, d));
        }
    }

    let covered_terms = keywords
        .ids()
        .iter()
        .enumerate()
        .filter(|(bit, _)| group.mask() >> bit & 1 == 1)
        .map(|(_, &k)| term(k))
        .collect();
    let missing_terms = keywords
        .ids()
        .iter()
        .enumerate()
        .filter(|(bit, _)| group.mask() >> bit & 1 == 0)
        .map(|(_, &k)| term(k))
        .collect();

    GroupExplanation { members, pair_distances, covered_terms, missing_terms, tenuity }
}

impl fmt::Display for GroupExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "group covers {{{}}}{}",
            self.covered_terms.join(", "),
            if self.missing_terms.is_empty() {
                " (full coverage)".to_string()
            } else {
                format!("  missing {{{}}}", self.missing_terms.join(", "))
            }
        )?;
        for m in &self.members {
            writeln!(
                f,
                "  u{} (degree {}): contributes {{{}}} of profile {{{}}}",
                m.vertex.0,
                m.degree,
                m.covered_terms.join(", "),
                m.profile_terms.join(", ")
            )?;
        }
        for &(u, v, d) in &self.pair_distances {
            match d {
                Some(d) => writeln!(f, "  Dis(u{}, u{}) = {}", u.0, v.0, d)?,
                None => writeln!(f, "  Dis(u{}, u{}) = inf (different components)", u.0, v.0)?,
            }
        }
        if let Some(t) = self.tenuity {
            writeln!(f, "  tenuity = {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn setup() -> (AttributedGraph, QueryKeywords, QueryMasks) {
        let net = fixtures::figure1();
        let q = net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap();
        let masks = net.compile(&q);
        (net, q, masks)
    }

    #[test]
    fn explains_paper_group() {
        let (net, q, masks) = setup();
        let mask = masks.mask(VertexId(10)) | masks.mask(VertexId(1)) | masks.mask(VertexId(4));
        let group = Group::new(vec![VertexId(10), VertexId(1), VertexId(4)], mask);
        let ex = explain(&net, &q, &masks, &group);
        assert_eq!(ex.members.len(), 3);
        assert_eq!(ex.pair_distances.len(), 3);
        assert_eq!(ex.covered_terms, vec!["SN", "QP", "DQ", "GD"]);
        assert_eq!(ex.missing_terms, vec!["GQ"]);
        let t = ex.tenuity.expect("connected pairs");
        assert!(t > 1, "paper group is a 1-distance group, tenuity {t}");
        // u10's contribution is QP and GD.
        let u10 = ex.members.iter().find(|m| m.vertex == VertexId(10)).unwrap();
        assert_eq!(u10.covered_terms, vec!["QP", "GD"]);
    }

    #[test]
    fn display_contains_key_facts() {
        let (net, q, masks) = setup();
        let mask = masks.mask(VertexId(0));
        let group = Group::new(vec![VertexId(0), VertexId(5)], mask | masks.mask(VertexId(5)));
        let text = explain(&net, &q, &masks, &group).to_string();
        assert!(text.contains("u0"));
        assert!(text.contains("Dis(u0, u5)"));
        assert!(text.contains("missing"));
    }

    #[test]
    fn singleton_group_has_no_pairs() {
        let (net, q, masks) = setup();
        let group = Group::new(vec![VertexId(7)], masks.mask(VertexId(7)));
        let ex = explain(&net, &q, &masks, &group);
        assert!(ex.pair_distances.is_empty());
        assert_eq!(ex.tenuity, None);
    }

    #[test]
    fn cross_component_pairs_are_infinite() {
        // Two isolated vertices: distance unreachable.
        let graph = ktg_graph::CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut vocab = ktg_keywords::Vocabulary::new();
        let a = vocab.intern("a");
        let mut kb = ktg_keywords::VertexKeywordsBuilder::new(3);
        kb.add(VertexId(0), a);
        kb.add(VertexId(2), a);
        let net = AttributedGraph::new(graph, vocab, kb.build());
        let q = net.query_keywords(["a"]).unwrap();
        let masks = net.compile(&q);
        let group = Group::new(vec![VertexId(0), VertexId(2)], 0b1);
        let ex = explain(&net, &q, &masks, &group);
        assert_eq!(ex.pair_distances[0].2, None);
        assert_eq!(ex.tenuity, None);
        assert!(ex.to_string().contains("inf"));
    }
}

//! Exact DKTG solving on small instances.
//!
//! The paper analyzes DKTG-Greedy's quality only through the `1 − α`
//! approximation bound (§VI-C). This module provides the missing ground
//! truth: enumerate the feasible groups, then search every `N`-subset for
//! the one maximizing `score(RG) = γ·min QKC + (1−γ)·dL` (Eq. 4). Doubly
//! exponential in general — usable for tests, ablation benches, and
//! quality studies on bounded instances, which is exactly where a
//! ground-truth oracle matters.

use crate::bb::{self, BbOptions};
use crate::candidates::{self, Candidate};
use crate::dktg::{self, DktgQuery};
use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use ktg_common::{KtgError, Result, TopN, VertexId};
use ktg_index::DistanceOracle;

/// Upper bounds keeping the exact search tractable.
#[derive(Clone, Copy, Debug)]
pub struct ExactLimits {
    /// Maximum number of feasible groups to enumerate before giving up.
    pub max_groups: usize,
    /// Maximum number of `N`-subsets to score before giving up.
    pub max_subsets: u64,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits { max_groups: 64, max_subsets: 5_000_000 }
    }
}

/// The exact optimum for a DKTG query.
#[derive(Clone, Debug)]
pub struct ExactDktg {
    /// The score-optimal result set (discovery order within the set is
    /// meaningless).
    pub groups: Vec<Group>,
    /// Its score.
    pub score: f64,
    /// How many feasible groups the instance admits.
    pub feasible_groups: usize,
}

/// Enumerates **all** feasible groups of the KTG query (every size-`p`
/// k-distance group whose members each cover a query keyword), up to
/// `cap`.
///
/// # Errors
/// [`KtgError::InvalidQuery`] if the instance admits more than `cap`
/// feasible groups (the caller should shrink the instance).
pub fn enumerate_feasible(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    cap: usize,
) -> Result<Vec<Group>> {
    let mut groups = Vec::new();
    let mut chosen: Vec<usize> = Vec::with_capacity(query.p());
    enumerate_rec(query, oracle, cands, 0, 0, &mut chosen, &mut groups, cap)?;
    Ok(groups)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rec(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    start: usize,
    covered: u64,
    chosen: &mut Vec<usize>,
    out: &mut Vec<Group>,
    cap: usize,
) -> Result<()> {
    if chosen.len() == query.p() {
        if out.len() >= cap {
            return Err(KtgError::query(format!(
                "instance admits more than {cap} feasible groups; exact DKTG intractable"
            )));
        }
        out.push(Group::new(chosen.iter().map(|&i| cands[i].v).collect(), covered));
        return Ok(());
    }
    for i in start..cands.len() {
        if cands.len() - i < query.p() - chosen.len() {
            return Ok(());
        }
        let feasible = chosen
            .iter()
            .all(|&j| oracle.farther_than(cands[j].v, cands[i].v, query.k()));
        if !feasible {
            continue;
        }
        chosen.push(i);
        enumerate_rec(query, oracle, cands, i + 1, covered | cands[i].mask, chosen, out, cap)?;
        chosen.pop();
    }
    Ok(())
}

/// Finds the score-optimal `N`-subset of feasible groups by exhaustive
/// subset search.
///
/// Result sets smaller than `N` are considered only when fewer than `N`
/// feasible groups exist (matching DKTG-Greedy, which always emits as many
/// groups as it can).
///
/// # Errors
/// [`KtgError::InvalidQuery`] when the instance exceeds [`ExactLimits`].
pub fn solve(
    net: &AttributedGraph,
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
    limits: &ExactLimits,
) -> Result<ExactDktg> {
    let masks = net.compile(query.base().keywords());
    let cands = candidates::collect_vec(net.graph(), &masks);
    solve_with_candidates(query, oracle, cands, limits)
}

/// Exact DKTG over a pre-extracted candidate pool.
pub fn solve_with_candidates(
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
    cands: Vec<Candidate>,
    limits: &ExactLimits,
) -> Result<ExactDktg> {
    let all = enumerate_feasible(query.base(), oracle, &cands, limits.max_groups)?;
    let n = query.base().n().min(all.len());
    let num_kw = query.base().keywords().len();
    if n == 0 {
        return Ok(ExactDktg { groups: Vec::new(), score: 0.0, feasible_groups: 0 });
    }

    // Guard the C(|all|, n) subset walk.
    let mut subsets: u64 = 1;
    for i in 0..n as u64 {
        subsets = subsets.saturating_mul(all.len() as u64 - i) / (i + 1);
        if subsets > limits.max_subsets {
            return Err(KtgError::query(format!(
                "C({}, {n}) subsets exceed the {} limit",
                all.len(),
                limits.max_subsets
            )));
        }
    }

    let mut best_score = f64::NEG_INFINITY;
    let mut best: Vec<usize> = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(n);
    subset_search(&all, n, 0, &mut current, query.gamma(), num_kw, &mut best_score, &mut best);

    Ok(ExactDktg {
        groups: best.iter().map(|&i| all[i].clone()).collect(),
        score: best_score,
        feasible_groups: all.len(),
    })
}

#[allow(clippy::too_many_arguments)]
fn subset_search(
    all: &[Group],
    n: usize,
    start: usize,
    current: &mut Vec<usize>,
    gamma: f64,
    num_kw: usize,
    best_score: &mut f64,
    best: &mut Vec<usize>,
) {
    if current.len() == n {
        let groups: Vec<Group> = current.iter().map(|&i| all[i].clone()).collect();
        let s = dktg::score(&groups, gamma, num_kw);
        if s > *best_score {
            *best_score = s;
            *best = current.clone();
        }
        return;
    }
    for i in start..all.len() {
        if all.len() - i < n - current.len() {
            return;
        }
        current.push(i);
        subset_search(all, n, i + 1, current, gamma, num_kw, best_score, best);
        current.pop();
    }
}

/// Convenience for quality studies: the ratio `greedy_score / exact_score`
/// on one instance (1.0 when both are empty).
pub fn greedy_quality(
    net: &AttributedGraph,
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
    limits: &ExactLimits,
) -> Result<f64> {
    let exact = solve(net, query, oracle, limits)?;
    let greedy = dktg::solve(net, query, oracle);
    if exact.groups.is_empty() && greedy.groups.is_empty() {
        return Ok(1.0);
    }
    if exact.score <= 0.0 {
        return Ok(1.0);
    }
    Ok(greedy.score / exact.score)
}

/// Helper used by tests: all feasible groups of the Figure 1 query.
pub fn feasible_groups_of(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cap: usize,
) -> Result<Vec<Group>> {
    let masks = net.compile(query.keywords());
    let cands = candidates::collect_vec(net.graph(), &masks);
    enumerate_feasible(query, oracle, &cands, cap)
}

/// Sanity helper shared with benches: confirms `enumerate_feasible` and
/// the branch-and-bound engine agree on the best coverage.
pub fn check_enumeration_consistency(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: Vec<Candidate>,
    cap: usize,
) -> Result<bool> {
    let all = enumerate_feasible(query, oracle, &cands, cap)?;
    let mut top: TopN<u32> = TopN::new(1);
    for g in &all {
        top.offer(g.coverage_count());
    }
    let bb_out = bb::solve_with_candidates(query, oracle, &cands, &BbOptions::vkc_deg());
    let bb_best = bb_out.groups.first().map(Group::coverage_count);
    let enum_best = top.into_sorted_desc().into_iter().next();
    Ok(bb_best == enum_best)
}

/// Returns the distinct members across a result set (diagnostics).
pub fn distinct_members(groups: &[Group]) -> Vec<VertexId> {
    let mut all: Vec<VertexId> =
        groups.iter().flat_map(|g| g.members().iter().copied()).collect();
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use ktg_index::ExactOracle;

    fn figure1_query(n: usize) -> (AttributedGraph, DktgQuery) {
        let net = fixtures::figure1();
        let base = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            n,
        )
        .unwrap();
        let q = DktgQuery::new(base, 0.5).unwrap();
        (net, q)
    }

    #[test]
    fn enumeration_counts_feasible_groups() {
        let (net, q) = figure1_query(2);
        let oracle = ExactOracle::build(net.graph());
        let all = feasible_groups_of(&net, q.base(), &oracle, 10_000).unwrap();
        assert!(!all.is_empty());
        // Every enumerated group is feasible and canonical.
        for g in &all {
            assert_eq!(g.len(), 3);
            fixtures::assert_k_distance(net.graph(), g.members(), 1);
        }
        // No duplicates.
        let mut keys: Vec<Vec<u32>> =
            all.iter().map(|g| g.members().iter().map(|v| v.0).collect()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn exact_beats_or_ties_greedy() {
        let (net, q) = figure1_query(2);
        let oracle = ExactOracle::build(net.graph());
        let exact = solve(&net, &q, &oracle, &ExactLimits::default()).unwrap();
        let greedy = dktg::solve(&net, &q, &oracle);
        assert!(
            exact.score >= greedy.score - 1e-9,
            "exact {} < greedy {}",
            exact.score,
            greedy.score
        );
        assert_eq!(exact.groups.len(), 2);
    }

    #[test]
    fn greedy_quality_in_unit_interval() {
        let (net, q) = figure1_query(2);
        let oracle = ExactOracle::build(net.graph());
        let ratio = greedy_quality(&net, &q, &oracle, &ExactLimits::default()).unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0 + 1e-9, "ratio {ratio}");
        // On Figure 1 greedy achieves disjoint full-coverage groups; its
        // quality should be high.
        assert!(ratio > 0.9, "ratio {ratio}");
    }

    #[test]
    fn cap_exceeded_is_reported() {
        let (net, q) = figure1_query(2);
        let oracle = ExactOracle::build(net.graph());
        let result = feasible_groups_of(&net, q.base(), &oracle, 1);
        assert!(result.is_err());
    }

    #[test]
    fn enumeration_consistent_with_bb() {
        let (net, q) = figure1_query(2);
        let oracle = ExactOracle::build(net.graph());
        let masks = net.compile(q.base().keywords());
        let cands = candidates::collect_vec(net.graph(), &masks);
        assert!(check_enumeration_consistency(q.base(), &oracle, cands, 10_000).unwrap());
    }

    #[test]
    fn distinct_members_dedups() {
        let g1 = Group::new(vec![VertexId(1), VertexId(2)], 0);
        let g2 = Group::new(vec![VertexId(2), VertexId(3)], 0);
        assert_eq!(
            distinct_members(&[g1, g2]),
            vec![VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn empty_when_no_feasible_groups() {
        let net = fixtures::figure1();
        let base = KtgQuery::new(
            net.query_keywords(["ML", "IR"]).unwrap(),
            3,
            2,
            2,
        )
        .unwrap();
        let q = DktgQuery::new(base, 0.5).unwrap();
        let oracle = ExactOracle::build(net.graph());
        let exact = solve(&net, &q, &oracle, &ExactLimits::default()).unwrap();
        assert!(exact.groups.is_empty());
        assert_eq!(exact.feasible_groups, 0);
    }
}

//! The paper's Figure 1 running example, reconstructed.
//!
//! The original figure image is not machine-readable, so the topology and
//! keyword profile below are **reconstructed from the worked examples** in
//! §§III–VI. Every recoverable constraint is honoured:
//!
//! * `u0`'s 1-hop neighbors are `{u1, u2, u3, u4, u9, u11}` (§V-B).
//! * `u3`'s 1-hop neighbors are `{u0, u2, u4, u9}`; its only 3-hop
//!   neighbor is `u5` with eccentricity 3, so everything else is within
//!   2 hops (§V-A / §V-B).
//! * The vertices within 2 hops of `u8` are exactly
//!   `{u0, u3, u4, u6, u7}` (k-line filtering example, §IV-A).
//! * `u6` and `u7` are directly connected (§I).
//! * `u5` and `u7` are directly connected (DKTG walk-through, §VI-B).
//! * `u6`, `u8`, `u9` cover no query keyword — they are the users removed
//!   as unqualified in the Figure 2 walk-through.
//! * `u0` covers `{SN, GD, DQ}` (§IV-A); `u10` covers `QP` plus one
//!   already-covered keyword; the optimum for
//!   `⟨{SN,QP,DQ,GQ,GD}, p=3, k=1, N=2⟩` is coverage 4/5 and includes
//!   the paper's result groups `{u10, u1, u4}` and `{u10, u1, u5}`.
//!
//! The paper's prose is internally inconsistent in places (e.g. §III's
//! Definition 5 example gives `u6` coverage 0.4 while the §IV-A walk
//! removes `u6` as unqualified; the §IV-A branch `S_I = {u0}` retains only
//! `{u5}` although `u0`'s stated neighbor list cannot eliminate `u7` and
//! `u10`). Where the examples conflict, this fixture follows the *larger*
//! §IV walk-throughs; affected tests assert semantic properties (coverage
//! value, feasibility, membership among the optima) rather than exact
//! group identity. See DESIGN.md §3.

use crate::network::AttributedGraph;
use ktg_common::VertexId;
use ktg_graph::{Adjacency, GraphBuilder};
use ktg_index::{DistanceOracle, ExactOracle};
use ktg_keywords::{VertexKeywordsBuilder, Vocabulary};

/// The keyword abbreviations of Figure 1's legend that the fixture uses.
pub const FIGURE1_TERMS: [&str; 7] = ["SN", "QP", "DQ", "GQ", "GD", "ML", "IR"];

/// Builds the Figure 1 attributed social network (12 reviewers `u0..u11`).
pub fn figure1() -> AttributedGraph {
    let edges: &[(u32, u32)] = &[
        // u0 — the well-connected senior reviewer.
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 9),
        (0, 11),
        // u3's remaining 1-hop neighbors.
        (2, 3),
        (3, 4),
        (3, 9),
        // The dense corner around u4 / u6 / u7 / u8.
        (4, 6),
        (4, 7),
        (4, 8),
        (6, 7),
        (6, 8),
        // u5 hangs off u7; u10 hangs off u2.
        (5, 7),
        (2, 10),
    ];
    let mut builder = GraphBuilder::with_edge_capacity(12, edges.len());
    for &(u, v) in edges {
        builder.add_edge_unchecked(VertexId(u), VertexId(v));
    }
    let graph = builder.build();

    let mut vocab = Vocabulary::new();
    let ids = vocab.intern_all(FIGURE1_TERMS);
    let (sn, qp, dq, _gq, gd, ml, ir) =
        (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);

    let mut kb = VertexKeywordsBuilder::new(12);
    // Coverage counts chosen to reproduce the §IV-A VKC ranking:
    // u0 = 3, {u1, u2, u3, u7, u10, u11} = 2, {u4, u5} = 1,
    // {u6, u8, u9} = 0 (unqualified). GQ belongs to no reviewer, capping
    // the optimum at 4/5.
    for (v, kws) in [
        (0u32, vec![sn, gd, dq]),
        (1, vec![sn, dq]),
        (2, vec![sn, gd]),
        (3, vec![dq, gd]),
        (4, vec![gd]),
        (5, vec![gd]),
        (6, vec![ml]),
        (7, vec![sn, qp]),
        (8, vec![ir]),
        (9, vec![ml, ir]),
        (10, vec![qp, gd]),
        (11, vec![sn, gd]),
    ] {
        for k in kws {
            kb.add(VertexId(v), k);
        }
    }

    AttributedGraph::new(graph, vocab, kb.build())
}

/// Asserts that `members` form a k-distance group of the graph
/// (test/diagnostic helper; panics with a readable message otherwise).
pub fn assert_k_distance<A: Adjacency>(graph: &A, members: &[VertexId], k: u32) {
    let oracle = ExactOracle::build(graph);
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            assert!(
                oracle.farther_than(u, v, k),
                "members {u:?} and {v:?} are within {k} hops — not a {k}-distance group"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u0_neighbors_match_paper() {
        let net = figure1();
        let ns: Vec<u32> = net.graph().neighbors_vec(VertexId(0)).iter().map(|v| v.0).collect();
        assert_eq!(ns, vec![1, 2, 3, 4, 9, 11]);
    }

    #[test]
    fn u3_neighbors_and_levels_match_paper() {
        let net = figure1();
        let ns: Vec<u32> = net.graph().neighbors_vec(VertexId(3)).iter().map(|v| v.0).collect();
        assert_eq!(ns, vec![0, 2, 4, 9], "u3's 1-hop list from §V-A");
        // u3's only 3-hop neighbor is u5; eccentricity 3.
        let oracle = ExactOracle::build(net.graph());
        for v in 0..12u32 {
            let d = oracle.distance(VertexId(3), VertexId(v));
            if v == 3 {
                assert_eq!(d, 0);
            } else if v == 5 {
                assert_eq!(d, 3, "u5 is u3's 3-hop neighbor");
            } else {
                assert!(d <= 2, "u{v} must be within 2 hops of u3, got {d}");
            }
        }
    }

    #[test]
    fn u8_within_two_hops_matches_kline_example() {
        let net = figure1();
        let oracle = ExactOracle::build(net.graph());
        let within: Vec<u32> = (0..12u32)
            .filter(|&v| v != 8 && oracle.distance(VertexId(8), VertexId(v)) <= 2)
            .collect();
        assert_eq!(within, vec![0, 3, 4, 6, 7], "§IV-A: k-line filter around u8 with k=2");
    }

    #[test]
    fn u6_u7_directly_connected() {
        let net = figure1();
        assert!(net.graph().has_edge(VertexId(6), VertexId(7)));
    }

    #[test]
    fn unqualified_reviewers_have_no_query_keywords() {
        let net = figure1();
        let q = net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap();
        let masks = net.compile(&q);
        for v in [6u32, 8, 9] {
            assert_eq!(masks.mask(VertexId(v)), 0, "u{v} must be unqualified");
        }
        assert_eq!(masks.candidates().len(), 9, "9 qualified reviewers");
    }

    #[test]
    fn paper_result_groups_are_feasible_and_optimal() {
        let net = figure1();
        let q = net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap();
        let masks = net.compile(&q);
        for group in [[10u32, 1, 4], [10, 1, 5]] {
            let members: Vec<VertexId> = group.iter().map(|&v| VertexId(v)).collect();
            assert_k_distance(net.graph(), &members, 1);
            let mask = members.iter().fold(0u64, |m, &v| m | masks.mask(v));
            assert_eq!(mask.count_ones(), 4, "paper groups cover {{SN, QP, DQ, GD}}");
        }
    }

    #[test]
    #[should_panic(expected = "not a 1-distance group")]
    fn assert_k_distance_catches_neighbors() {
        let net = figure1();
        assert_k_distance(net.graph(), &[VertexId(6), VertexId(7)], 1);
    }
}

//! A TAGQ comparator (Li et al. [18], "Querying Tenuous Groups in
//! Attributed Networks").
//!
//! The paper's Figure 8 case study contrasts KTG with TAGQ to show two
//! modelling differences:
//!
//! 1. TAGQ maximizes the **average** query keyword coverage of the group
//!    (`Σ_v QKC(v) / p`), not the union coverage — so a group can include
//!    members with *zero* query keywords if the rest are keyword-rich.
//! 2. TAGQ measures tenuity by **k-tenuity** — the fraction of member
//!    pairs within `k` hops — and only requires it to stay below a budget
//!    `θ`, so (for `θ > 0`) even directly connected members can co-occur.
//!
//! The original paper's algorithms are not reproduced here (they are a
//! different system); this module is a *faithful comparator*: an exact
//! branch-and-bound over the TAGQ objective, sufficient to reproduce the
//! case study's qualitative behaviour. The substitution is recorded in
//! DESIGN.md §3.

use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::{TopN, VertexId};
use ktg_index::DistanceOracle;
use std::cmp::Reverse;

/// TAGQ query options.
#[derive(Clone, Copy, Debug)]
pub struct TagqOptions {
    /// k-tenuity budget `θ ∈ [0, 1]`: maximum allowed fraction of member
    /// pairs within `k` hops. `0.0` forbids any k-line (same constraint
    /// as KTG).
    pub theta: f64,
    /// Candidate cap: only the `max_candidates` vertices with the highest
    /// QKC (ties by ascending degree) enter the search. TAGQ admits
    /// zero-coverage members, so the raw pool is *all* of `V`; the cap
    /// keeps the comparator tractable on large graphs.
    pub max_candidates: usize,
}

impl Default for TagqOptions {
    fn default() -> Self {
        TagqOptions { theta: 0.0, max_candidates: 512 }
    }
}

/// A TAGQ result group with its average-coverage score.
#[derive(Clone, Debug)]
pub struct TagqGroup {
    /// The members.
    pub group: Group,
    /// `Σ_v |k_v ∩ W_Q|` — the integer numerator of the average coverage.
    pub total_coverage: u32,
    /// Number of member pairs within `k` hops (the k-tenuity numerator).
    pub kline_pairs: u32,
}

impl TagqGroup {
    /// Average query keyword coverage `Σ QKC(v) / p`.
    pub fn avg_qkc(&self, num_query_keywords: usize) -> f64 {
        self.total_coverage as f64 / (num_query_keywords * self.group.len()) as f64
    }
}

/// Outcome of a TAGQ query.
#[derive(Clone, Debug)]
pub struct TagqOutcome {
    /// Top-N groups by average coverage.
    pub groups: Vec<TagqGroup>,
    /// Search instrumentation.
    pub stats: SearchStats,
}

/// Runs the TAGQ comparator: top-N groups of size `p` maximizing total
/// (equivalently average) member coverage subject to the k-tenuity budget.
pub fn solve(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    opts: &TagqOptions,
) -> TagqOutcome {
    let masks = net.compile(query.keywords());

    // TAGQ pool: *every* vertex, ranked by QKC then ascending degree.
    let mut pool: Vec<PoolEntry> = (0..net.num_vertices())
        .map(|i| {
            let v = VertexId::new(i);
            let mask = masks.mask(v);
            PoolEntry { v, mask, cov: mask.count_ones(), degree: net.graph().degree(v) as u32 }
        })
        .collect();
    pool.sort_by_key(|e| (Reverse(e.cov), e.degree, e.v));
    pool.truncate(opts.max_candidates);

    let budget = allowed_kline_pairs(query.p(), opts.theta);
    let mut ctx = TagqCtx {
        query,
        oracle,
        pool: &pool,
        budget,
        results: TopN::new(query.n()),
        stats: SearchStats::default(),
        members: Vec::with_capacity(query.p()),
        masks_or: 0,
        seq: 0,
    };
    ctx.dfs(0, 0, 0);

    let groups = ctx
        .results
        .into_sorted_desc()
        .into_iter()
        .map(|r| r.payload)
        .collect();
    TagqOutcome { groups, stats: ctx.stats }
}

/// Number of within-k pairs a group of size `p` may contain under budget
/// `θ`: `⌊θ · C(p, 2)⌋`.
pub fn allowed_kline_pairs(p: usize, theta: f64) -> u32 {
    let pairs = (p * p.saturating_sub(1) / 2) as f64;
    (theta.clamp(0.0, 1.0) * pairs).floor() as u32
}

/// Heap item: orders by total coverage, then earlier discovery.
#[derive(Clone, Debug)]
struct Ranked {
    total: u32,
    seq: Reverse<u64>,
    payload: TagqGroup,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        (self.total, self.seq) == (other.total, other.seq)
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.total, self.seq).cmp(&(other.total, other.seq))
    }
}

/// A pool entry: vertex, real coverage mask, coverage count, degree.
#[derive(Clone, Copy, Debug)]
struct PoolEntry {
    v: VertexId,
    mask: u64,
    cov: u32,
    degree: u32,
}

struct TagqCtx<'a, O: DistanceOracle> {
    query: &'a KtgQuery,
    oracle: &'a O,
    pool: &'a [PoolEntry],
    budget: u32,
    results: TopN<Ranked>,
    stats: SearchStats,
    members: Vec<VertexId>,
    masks_or: u64,
    seq: u64,
}

impl<O: DistanceOracle> TagqCtx<'_, O> {
    fn dfs(&mut self, start: usize, total: u32, klines: u32) {
        self.stats.nodes += 1;
        if self.members.len() == self.query.p() {
            self.stats.groups_evaluated += 1;
            let payload = TagqGroup {
                group: Group::new(self.members.clone(), self.masks_or),
                total_coverage: total,
                kline_pairs: klines,
            };
            self.results.offer(Ranked { total, seq: Reverse(self.seq), payload });
            self.seq += 1;
            return;
        }
        let need = self.query.p() - self.members.len();
        for i in start..self.pool.len() {
            if self.pool.len() - i < need {
                self.stats.feasibility_cuts += 1;
                return;
            }
            // Bound: pool is QKC-sorted, so the best continuation takes
            // the next `need` coverages.
            if let Some(threshold) = self.results.threshold().map(|r| r.total) {
                let optimistic: u32 =
                    self.pool[i..].iter().take(need).map(|e| e.cov).sum();
                if total + optimistic <= threshold {
                    self.stats.keyword_pruned += 1;
                    return;
                }
            }
            let PoolEntry { v, mask, cov, .. } = self.pool[i];
            self.stats.distance_checks += self.members.len() as u64;
            let new_klines = klines
                + self
                    .members
                    .iter()
                    .filter(|&&u| self.oracle.is_kline(u, v, self.query.k()))
                    .count() as u32;
            if new_klines > self.budget {
                self.stats.kline_filtered += 1;
                continue;
            }
            self.members.push(v);
            let saved_mask = self.masks_or;
            // The union mask is bookkeeping for reports only — TAGQ's
            // objective is the member-coverage *sum*, not the union.
            self.masks_or |= mask;
            self.dfs(i + 1, total + cov, new_klines);
            self.masks_or = saved_mask;
            self.members.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use ktg_index::ExactOracle;

    fn paper_query(net: &AttributedGraph) -> KtgQuery {
        KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap()
    }

    #[test]
    fn budget_formula() {
        assert_eq!(allowed_kline_pairs(3, 0.0), 0);
        assert_eq!(allowed_kline_pairs(3, 0.34), 1); // ⌊0.34 · 3⌋
        assert_eq!(allowed_kline_pairs(4, 0.5), 3); // ⌊0.5 · 6⌋
        assert_eq!(allowed_kline_pairs(1, 1.0), 0);
    }

    #[test]
    fn maximizes_average_coverage() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = paper_query(&net);
        let out = solve(&net, &query, &oracle, &TagqOptions::default());
        assert!(!out.groups.is_empty());
        // Best total: the three highest-coverage pairwise-tenuous members.
        // u0 (3 kw) conflicts with most 2-kw members (its neighbors), so
        // the comparator must weigh coverage against tenuity.
        let best = &out.groups[0];
        assert!(best.total_coverage >= 6, "got {}", best.total_coverage);
        assert_eq!(best.kline_pairs, 0, "theta = 0 forbids k-lines");
    }

    #[test]
    fn theta_zero_matches_ktg_tenuity() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = paper_query(&net);
        let out = solve(&net, &query, &oracle, &TagqOptions::default());
        for g in &out.groups {
            fixtures::assert_k_distance(net.graph(), g.group.members(), 1);
        }
    }

    #[test]
    fn positive_theta_admits_some_klines() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = paper_query(&net);
        let relaxed = solve(
            &net,
            &query,
            &oracle,
            &TagqOptions { theta: 0.34, ..TagqOptions::default() },
        );
        // With one allowed k-line the top total coverage can only improve.
        let strict = solve(&net, &query, &oracle, &TagqOptions::default());
        assert!(
            relaxed.groups[0].total_coverage >= strict.groups[0].total_coverage,
            "relaxing the budget cannot hurt the optimum"
        );
    }

    #[test]
    fn avg_qkc_normalization() {
        let g = TagqGroup {
            group: Group::new(vec![VertexId(0), VertexId(1), VertexId(2)], 0),
            total_coverage: 6,
            kline_pairs: 0,
        };
        assert!((g.avg_qkc(5) - 6.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn candidate_cap_respected() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = paper_query(&net);
        let out = solve(
            &net,
            &query,
            &oracle,
            &TagqOptions { max_candidates: 3, ..TagqOptions::default() },
        );
        // Pool of 3 → at most one group of size 3 (if tenuous).
        assert!(out.groups.len() <= 1);
    }
}

//! The attributed social network facade.
//!
//! [`AttributedGraph`] bundles the paper's `G = (V, E, κ)`: topology,
//! vocabulary, per-vertex keyword sets, and the inverted index derived
//! from them. It is the type examples and downstream users hold; the
//! algorithm modules take it by reference.

use ktg_common::{Result, VertexId};
use ktg_graph::{CsrGraph, GraphFormat, GraphStore};
use ktg_keywords::{InvertedIndex, QueryKeywords, QueryMasks, VertexKeywords, Vocabulary};

/// An attributed social network `G = (V, E, κ)`.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    graph: GraphStore,
    vocab: Vocabulary,
    keywords: VertexKeywords,
    inverted: InvertedIndex,
}

impl AttributedGraph {
    /// Assembles a network from its parts, building the inverted index.
    ///
    /// # Panics
    /// Debug-panics if the keyword arena covers a different number of
    /// vertices than the graph.
    pub fn new(graph: CsrGraph, vocab: Vocabulary, keywords: VertexKeywords) -> Self {
        Self::with_store(GraphStore::from(graph), vocab, keywords)
    }

    /// Assembles a network over an explicit topology store — the entry
    /// point for the compressed format and for reloaded bundles.
    ///
    /// # Panics
    /// Debug-panics if the keyword arena covers a different number of
    /// vertices than the graph.
    pub fn with_store(graph: GraphStore, vocab: Vocabulary, keywords: VertexKeywords) -> Self {
        debug_assert_eq!(
            graph.num_vertices(),
            keywords.num_vertices(),
            "graph and keyword arenas disagree on |V|"
        );
        let inverted = InvertedIndex::build(&keywords, vocab.len());
        AttributedGraph { graph, vocab, keywords, inverted }
    }

    /// The social graph.
    #[inline]
    pub fn graph(&self) -> &GraphStore {
        &self.graph
    }

    /// The topology storage format.
    #[inline]
    pub fn graph_format(&self) -> GraphFormat {
        self.graph.format()
    }

    /// The keyword vocabulary `κ`.
    #[inline]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Per-vertex keyword sets.
    #[inline]
    pub fn keywords(&self) -> &VertexKeywords {
        &self.keywords
    }

    /// The inverted keyword index.
    #[inline]
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Resolves query keyword strings against the vocabulary.
    ///
    /// # Errors
    /// [`ktg_common::KtgError::InvalidQuery`] for unknown terms or invalid
    /// set sizes.
    pub fn query_keywords<'a>(
        &self,
        terms: impl IntoIterator<Item = &'a str>,
    ) -> Result<QueryKeywords> {
        QueryKeywords::from_terms(&self.vocab, terms)
    }

    /// Compiles a query keyword set into per-vertex masks.
    pub fn compile(&self, keywords: &QueryKeywords) -> QueryMasks {
        keywords.compile(&self.inverted, self.num_vertices())
    }

    /// Induces the attributed subgraph on `keep` (original ids): topology,
    /// keyword profiles and vocabulary carry over; vertex ids are
    /// densified in ascending original-id order. The returned mapping
    /// translates original ids into the new network.
    pub fn induce(&self, keep: &[VertexId]) -> (AttributedGraph, ktg_graph::subgraph::InducedSubgraph) {
        let sub = ktg_graph::subgraph::induce(&self.graph, keep);
        let mut kb = ktg_keywords::VertexKeywordsBuilder::new(sub.graph.num_vertices());
        for (new, &old) in sub.old_of.iter().enumerate() {
            for &k in self.keywords.keywords(old) {
                kb.add(VertexId::new(new), k);
            }
        }
        let store = GraphStore::from_csr(sub.graph.clone(), self.graph.format());
        let net = AttributedGraph::with_store(store, self.vocab.clone(), kb.build());
        (net, sub)
    }

    /// Restricts to the largest connected component — the preprocessing
    /// every real social-network dataset goes through before querying.
    pub fn largest_component(&self) -> (AttributedGraph, ktg_graph::subgraph::InducedSubgraph) {
        let sub = ktg_graph::subgraph::largest_component(&self.graph);
        let keep = sub.old_of.clone();
        self.induce(&keep)
    }

    /// Formats a vertex's keyword list for reports, e.g. `"v3{SN, GD}"`.
    pub fn describe_vertex(&self, v: VertexId) -> String {
        let terms: Vec<&str> =
            self.keywords.keywords(v).iter().map(|&k| self.vocab.term(k)).collect();
        format!("v{}{{{}}}", v.0, terms.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_keywords::VertexKeywordsBuilder;

    fn tiny() -> AttributedGraph {
        let graph = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        let mut kb = VertexKeywordsBuilder::new(3);
        kb.add(VertexId(0), a);
        kb.add(VertexId(2), b);
        kb.add(VertexId(2), a);
        AttributedGraph::new(graph, vocab, kb.build())
    }

    #[test]
    fn compile_end_to_end() {
        let net = tiny();
        let q = net.query_keywords(["a", "b"]).unwrap();
        let masks = net.compile(&q);
        assert_eq!(masks.mask(VertexId(0)), 0b01);
        assert_eq!(masks.mask(VertexId(1)), 0);
        assert_eq!(masks.mask(VertexId(2)), 0b11);
        assert_eq!(masks.candidates(), &[VertexId(0), VertexId(2)]);
    }

    #[test]
    fn unknown_keyword_errors() {
        let net = tiny();
        assert!(net.query_keywords(["zzz"]).is_err());
    }

    #[test]
    fn induce_carries_keywords() {
        let net = tiny();
        let (sub, mapping) = net.induce(&[VertexId(0), VertexId(2)]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.graph().num_edges(), 0, "0-2 not adjacent in the path");
        // v2 (old) became v1 (new) and kept {a, b}.
        assert_eq!(mapping.map(VertexId(2)), Some(VertexId(1)));
        assert_eq!(sub.describe_vertex(VertexId(1)), "v1{a, b}");
        let q = sub.query_keywords(["a"]).unwrap();
        let masks = sub.compile(&q);
        assert_eq!(masks.candidates().len(), 2);
    }

    #[test]
    fn largest_component_restriction() {
        // Path 0-1 plus isolated 2 → largest component is {0, 1}.
        let graph = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let mut kb = VertexKeywordsBuilder::new(3);
        kb.add(VertexId(0), a);
        kb.add(VertexId(2), a);
        let net = AttributedGraph::new(graph, vocab, kb.build());
        let (sub, mapping) = net.largest_component();
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(mapping.map(VertexId(2)), None);
    }

    #[test]
    fn describe_vertex_lists_terms() {
        let net = tiny();
        assert_eq!(net.describe_vertex(VertexId(2)), "v2{a, b}");
        assert_eq!(net.describe_vertex(VertexId(1)), "v1{}");
    }
}

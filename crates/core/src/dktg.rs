//! Diversified KTG queries (paper §VI).
//!
//! KTG result sets are often heavily overlapped ("u1u2u3, u1u2u4,
//! u1u2u5"); DKTG (Definition 10) trades pure coverage for diversity:
//!
//! ```text
//! score(RG) = γ · min_{g ∈ RG} QKC(g) + (1 − γ) · dL(RG)
//! ```
//!
//! where `dL` is the mean pairwise Jaccard distance between result groups
//! (Definition 9). [`solve`] implements **DKTG-Greedy** (§VI-B): find the
//! best group, remove its members from the candidate pool, and repeat —
//! each inner search runs KTG-VKC-DEG with `N = 1` and stops early at the
//! current coverage bar `C_max`; when the bar is unreachable the paper's
//! strategy (2) keeps the best lower-coverage group and lowers the bar.
//! With disjoint groups `dL(RG) = 1`, giving the `1 − α` approximation
//! guarantee of §VI-C (see [`approximation_ratio`]).

use crate::bb::{self, BbOptions};
use crate::candidates::{self, Candidate};
use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::{CancelToken, CompletionStatus, FxHashSet, KtgError, Result, VertexId};
use ktg_index::DistanceOracle;

/// A validated DKTG query: a KTG query plus the score weight `γ`.
#[derive(Clone, Debug)]
pub struct DktgQuery {
    base: KtgQuery,
    gamma: f64,
}

impl DktgQuery {
    /// Creates a DKTG query.
    ///
    /// # Errors
    /// [`KtgError::InvalidQuery`] if `γ ∉ [0, 1]`.
    pub fn new(base: KtgQuery, gamma: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&gamma) || gamma.is_nan() {
            return Err(KtgError::query(format!("gamma = {gamma} outside [0, 1]")));
        }
        Ok(DktgQuery { base, gamma })
    }

    /// The underlying KTG query.
    #[inline]
    pub fn base(&self) -> &KtgQuery {
        &self.base
    }

    /// The diversity/coverage weight `γ`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

/// The outcome of a DKTG query.
#[derive(Clone, Debug)]
pub struct DktgOutcome {
    /// Result groups in discovery order (first = highest coverage found).
    pub groups: Vec<Group>,
    /// `dL(RG)` — mean pairwise Jaccard distance (Definition 9).
    pub diversity: f64,
    /// `min_{g} QKC(g)` over the result groups.
    pub min_qkc: f64,
    /// The combined score (Eq. 4).
    pub score: f64,
    /// Aggregated search instrumentation across the greedy iterations.
    pub stats: SearchStats,
    /// Whether every greedy round ran to completion
    /// ([`CompletionStatus::Exact`]) or the chain was cut short by a
    /// deadline/cancellation/node budget ([`CompletionStatus::Degraded`]):
    /// the groups found so far are still valid and disjoint, there may
    /// just be fewer (or lower-coverage) panels than an unbudgeted run
    /// would find.
    pub status: CompletionStatus,
}

/// Jaccard distance between two groups (Definition 9):
/// `(|g1 ∪ g2| − |g1 ∩ g2|) / |g1 ∪ g2|`.
pub fn diversity_dl(g1: &Group, g2: &Group) -> f64 {
    let a: FxHashSet<VertexId> = g1.members().iter().copied().collect();
    let mut intersection = 0usize;
    for v in g2.members() {
        if a.contains(v) {
            intersection += 1;
        }
    }
    let union = g1.len() + g2.len() - intersection;
    if union == 0 {
        return 0.0;
    }
    (union - intersection) as f64 / union as f64
}

/// Mean pairwise diversity `dL(RG)` over a result set. Defined as 0 for
/// fewer than two groups (no pairs to average).
pub fn diversity_set(groups: &[Group]) -> f64 {
    let n = groups.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            total += diversity_dl(&groups[i], &groups[j]);
        }
    }
    2.0 * total / (n as f64 * (n - 1) as f64)
}

/// The combined DKTG score (Eq. 4):
/// `γ · min QKC + (1 − γ) · dL`.
pub fn score(groups: &[Group], gamma: f64, num_query_keywords: usize) -> f64 {
    if groups.is_empty() {
        return 0.0;
    }
    let min_qkc = groups
        .iter()
        .map(|g| g.qkc(num_query_keywords))
        .fold(f64::INFINITY, f64::min);
    gamma * min_qkc + (1.0 - gamma) * diversity_set(groups)
}

/// The §VI-C lower bound on DKTG-Greedy's score: `1 − α` where
/// `α = γ · (|W_Q| − 1) / |W_Q|`.
pub fn approximation_ratio(gamma: f64, num_query_keywords: usize) -> f64 {
    let w = num_query_keywords as f64;
    1.0 - gamma * (w - 1.0) / w
}

/// Runs DKTG-Greedy end to end with the default inner engine
/// (KTG-VKC-DEG, no node budget).
///
/// ```
/// use ktg_core::dktg::{self, DktgQuery};
/// use ktg_core::KtgQuery;
/// use ktg_index::BfsOracle;
///
/// let net = ktg_core::fixtures::figure1();
/// let base = KtgQuery::new(
///     net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
///     3, 1, 2,
/// ).unwrap();
/// let query = DktgQuery::new(base, 0.5).unwrap();
/// let oracle = BfsOracle::new(net.graph());
/// let out = dktg::solve(&net, &query, &oracle);
/// assert_eq!(out.groups.len(), 2);
/// assert!((out.diversity - 1.0).abs() < 1e-9, "greedy panels are disjoint");
/// ```
pub fn solve(
    net: &AttributedGraph,
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
) -> DktgOutcome {
    solve_with_options(net, query, oracle, &BbOptions::vkc_deg())
}

/// Runs DKTG-Greedy with a caller-configured inner engine (ordering,
/// pruning toggles, node budget — `stop_at_coverage` is managed by the
/// greedy loop and overridden).
pub fn solve_with_options(
    net: &AttributedGraph,
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
    inner_opts: &BbOptions,
) -> DktgOutcome {
    let masks = net.compile(query.base.keywords());
    let mut cands = candidates::collect_vec(net.graph(), &masks);
    let outcome = solve_with_candidates(query, oracle, &mut cands, inner_opts);
    crate::verify::enforce_dktg(net, query, &outcome.groups);
    outcome
}

/// DKTG-Greedy over a pre-extracted candidate pool. The pool is consumed
/// in place (each greedy round retains only the non-selected candidates)
/// but the *allocation* is the caller's — the batched executor hands in a
/// pooled vector and recycles it afterwards.
pub fn solve_with_candidates(
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
    pool: &mut Vec<Candidate>,
    inner_opts: &BbOptions,
) -> DktgOutcome {
    // One token for the whole greedy chain: `deadline_ms` budgets the
    // DKTG query end to end, not each inner N = 1 solve separately.
    let token = CancelToken::for_deadline_ms(inner_opts.deadline_ms);
    solve_with_candidates_token(query, oracle, pool, inner_opts, token.as_ref())
}

/// [`solve_with_candidates`] with an externally-owned [`CancelToken`]
/// shared across every greedy round (`inner_opts.deadline_ms` is ignored
/// in favor of the passed token).
pub fn solve_with_candidates_token(
    query: &DktgQuery,
    oracle: &impl DistanceOracle,
    pool: &mut Vec<Candidate>,
    inner_opts: &BbOptions,
    cancel: Option<&CancelToken>,
) -> DktgOutcome {
    let mut groups: Vec<Group> = Vec::new();
    let mut stats = SearchStats::default();
    // The coverage bar C_max: None until the first group fixes it.
    let mut c_max: Option<u32> = None;

    // N = 1 is always a valid result size, so `with_n(1)` can only fail
    // if the base query were somehow out of domain — in that case the
    // greedy loop has nothing to iterate and the empty outcome below is
    // the honest answer (no panic in library code).
    if let Ok(inner_query) = query.base.with_n(1) {
        while groups.len() < query.base.n() && pool.len() >= query.base.p() {
            // Between-round check: the inner engines poll the clock; here a
            // relaxed load suffices to stop starting new rounds.
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    stats.cancelled = true;
                    break;
                }
            }
            // The shared token is passed explicitly, so the inner options
            // must not spawn their own per-round deadline.
            let opts =
                BbOptions { stop_at_coverage: c_max, deadline_ms: None, ..*inner_opts };
            // The engine sorts a private index vector, never the slice, so
            // the pool passes down by reference — no per-round clone.
            let outcome =
                bb::solve_with_candidates_token(&inner_query, oracle, pool, &opts, cancel);
            stats.merge(&outcome.stats);
            let Some(best) = outcome.groups.into_iter().next() else {
                break; // no feasible group left in the remaining pool
            };
            // Strategy (2) of §VI-B: if the bar was missed, keep the group
            // anyway and lower the bar to its coverage.
            c_max = Some(best.coverage_count());
            // Remove the new group's members from the pool — the maximal
            // contribution to the diversity term.
            pool.retain(|c| !best.contains(c.v));
            groups.push(best);
        }
    }

    let num_kw = query.base.keywords().len();
    DktgOutcome {
        diversity: diversity_set(&groups),
        min_qkc: groups
            .iter()
            .map(|g| g.qkc(num_kw))
            .fold(f64::INFINITY, f64::min)
            .min(1.0),
        score: score(&groups, query.gamma, num_kw),
        groups,
        status: bb::completion_status(&stats, cancel),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use ktg_index::ExactOracle;

    fn paper_dktg(net: &AttributedGraph, n: usize) -> DktgQuery {
        let base = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            n,
        )
        .unwrap();
        DktgQuery::new(base, 0.5).unwrap()
    }

    #[test]
    fn gamma_validation() {
        let net = fixtures::figure1();
        let base = paper_dktg(&net, 2).base;
        assert!(DktgQuery::new(base.clone(), 1.5).is_err());
        assert!(DktgQuery::new(base.clone(), -0.1).is_err());
        assert!(DktgQuery::new(base.clone(), f64::NAN).is_err());
        assert!(DktgQuery::new(base, 0.0).is_ok());
    }

    #[test]
    fn diversity_formula_matches_paper_examples() {
        // §VI-B: groups sharing 2 of 3 members → dL = (4 − 2) / 4 = 0.5;
        // disjoint groups → dL = 6/6 = 1.
        let g1 = Group::new(vec![VertexId(10), VertexId(5), VertexId(1)], 0);
        let g2 = Group::new(vec![VertexId(10), VertexId(5), VertexId(2)], 0);
        let g3 = Group::new(vec![VertexId(11), VertexId(7), VertexId(2)], 0);
        assert!((diversity_dl(&g1, &g2) - 0.5).abs() < 1e-12);
        assert!((diversity_dl(&g1, &g3) - 1.0).abs() < 1e-12);
        assert_eq!(diversity_dl(&g1, &g1), 0.0);
    }

    #[test]
    fn greedy_returns_disjoint_groups() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let out = solve(&net, &paper_dktg(&net, 2), &oracle);
        assert_eq!(out.groups.len(), 2);
        assert!((out.diversity - 1.0).abs() < 1e-12, "disjoint groups have dL = 1");
        for g in &out.groups {
            fixtures::assert_k_distance(net.graph(), g.members(), 1);
        }
        let all: Vec<VertexId> =
            out.groups.iter().flat_map(|g| g.members().iter().copied()).collect();
        let distinct: FxHashSet<VertexId> = all.iter().copied().collect();
        assert_eq!(all.len(), distinct.len(), "members must not repeat across groups");
    }

    #[test]
    fn first_group_has_max_coverage() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let out = solve(&net, &paper_dktg(&net, 2), &oracle);
        assert_eq!(out.groups[0].coverage_count(), 4, "greedy starts at the optimum");
    }

    #[test]
    fn score_respects_approximation_bound() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        for n in [2usize, 3] {
            let query = paper_dktg(&net, n);
            let out = solve(&net, &query, &oracle);
            if out.groups.len() == n {
                let bound = approximation_ratio(query.gamma(), query.base().keywords().len());
                assert!(
                    out.score >= bound - 1e-9,
                    "score {} below bound {} (n={n})",
                    out.score,
                    bound
                );
            }
        }
    }

    #[test]
    fn pool_exhaustion_returns_fewer_groups() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        // 9 qualified candidates; disjoint groups of 3 → at most 3 groups,
        // and social constraints reduce it further.
        let out = solve(&net, &paper_dktg(&net, 10), &oracle);
        assert!(out.groups.len() < 10);
        assert!(!out.groups.is_empty());
    }

    #[test]
    fn cancelled_token_degrades_gracefully() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = paper_dktg(&net, 2);
        let masks = net.compile(query.base.keywords());
        let mut pool = crate::candidates::collect_vec(net.graph(), &masks);
        let token = CancelToken::new();
        token.cancel();
        let out = solve_with_candidates_token(
            &query,
            &oracle,
            &mut pool,
            &BbOptions::vkc_deg(),
            Some(&token),
        );
        assert!(out.groups.is_empty(), "pre-cancelled chain starts no rounds");
        assert_eq!(
            out.status,
            CompletionStatus::Degraded(ktg_common::DegradeReason::Cancelled)
        );
        assert_eq!(out.score, 0.0);
    }

    #[test]
    fn unfired_deadline_keeps_exact_status() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = paper_dktg(&net, 2);
        let out = solve_with_options(
            &net,
            &query,
            &oracle,
            &BbOptions::vkc_deg().with_deadline_ms(Some(600_000)),
        );
        let plain = solve(&net, &query, &oracle);
        assert_eq!(out.status, CompletionStatus::Exact);
        assert_eq!(out.groups, plain.groups);
    }

    #[test]
    fn score_components_in_unit_interval() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let out = solve(&net, &paper_dktg(&net, 3), &oracle);
        assert!((0.0..=1.0).contains(&out.diversity));
        assert!((0.0..=1.0).contains(&out.min_qkc));
        assert!((0.0..=1.0).contains(&out.score));
    }
}

//! The conflict-bitmap kernel.
//!
//! Theorem 3 (k-line filtering) removes, after each selection, every
//! remaining candidate within `k` hops of the new member. The classic
//! engine answers each "within k hops?" question with one
//! `DistanceOracle` probe per (selected, remaining) pair at every tree
//! node — the dominant cost of the search. The kernel hoists all of that
//! to query start: one hop-bounded BFS per candidate (run in parallel by
//! [`ktg_index::kline_conflict_bitmaps`]) yields a `FixedBitSet` of
//! conflicting *candidate indices* per candidate, and the DFS then
//! derives each child pool with a single word-parallel AND-NOT.
//!
//! The bitmaps cost `|C|²/64` words, so [`ConflictKernel::build`] only
//! materializes them while the candidate set fits under
//! [`BbOptions::bitmap_threshold`]; larger pools keep the oracle path.
//! Both paths compute the same hop distances over the same graph, so the
//! search result is identical either way.

use super::BbOptions;
use crate::candidates::Candidate;
use ktg_common::{FixedBitSet, VertexId};
use ktg_graph::Adjacency;

/// How the engine answers k-line conflict questions.
#[derive(Clone, Debug)]
pub enum ConflictKernel {
    /// Probe the `DistanceOracle` pair by pair (the classic path; the
    /// only option when no graph is available or the candidate set is
    /// too large for bitmaps).
    Oracle,
    /// Precomputed conflict bitsets, one per candidate, indexed by
    /// position in the candidate vector: bit `j` of entry `i` means
    /// "candidates `i` and `j` are within `k` hops".
    Bitmap(Vec<FixedBitSet>),
}

impl ConflictKernel {
    /// The gating predicate of [`ConflictKernel::build`]: whether a
    /// candidate set of `len` gets bitmaps under these options. Exposed so
    /// the batched executor (which assembles its rows through the
    /// [`ktg_index::NeighborhoodCache`] memo instead of calling `build`)
    /// takes the bitmap-vs-oracle fork on *exactly* the same condition —
    /// a divergence here would still be correct but would break the
    /// byte-identical-stats contract with fresh solves.
    #[inline]
    pub fn wants_bitmap(len: usize, opts: &BbOptions) -> bool {
        opts.bitmap_threshold != 0 && len <= opts.bitmap_threshold
    }

    /// Builds the kernel for a query: bitmaps when the candidate set fits
    /// under `opts.bitmap_threshold` (and the threshold is non-zero),
    /// otherwise the oracle path.
    pub fn build<A: Adjacency + Sync>(graph: &A, cands: &[Candidate], k: u32, opts: &BbOptions) -> Self {
        if !Self::wants_bitmap(cands.len(), opts) {
            return ConflictKernel::Oracle;
        }
        let sources: Vec<VertexId> = cands.iter().map(|c| c.v).collect();
        ConflictKernel::Bitmap(ktg_index::kline_conflict_bitmaps(graph, &sources, k))
    }

    /// Whether this kernel holds precomputed bitmaps.
    #[inline]
    pub fn is_bitmap(&self) -> bool {
        matches!(self, ConflictKernel::Bitmap(_))
    }

    /// Reclaims the bitmap rows (`None` for the oracle path) so a pooled
    /// arena can recycle their allocations for the next query.
    pub fn into_bitmaps(self) -> Option<Vec<FixedBitSet>> {
        match self {
            ConflictKernel::Oracle => None,
            ConflictKernel::Bitmap(rows) => Some(rows),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ConflictKernel::Oracle => "oracle",
            ConflictKernel::Bitmap(_) => "bitmap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_parts() -> (ktg_graph::GraphStore, Vec<Candidate>) {
        let net = crate::fixtures::figure1();
        let query = crate::query::KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let masks = net.compile(query.keywords());
        let cands = crate::candidates::collect_vec(net.graph(), &masks);
        (net.graph().clone(), cands)
    }

    #[test]
    fn threshold_gates_bitmap_construction() {
        let (graph, cands) = figure1_parts();
        let small = BbOptions { bitmap_threshold: cands.len(), ..BbOptions::vkc() };
        assert!(ConflictKernel::build(&graph, &cands, 1, &small).is_bitmap());
        let too_small = BbOptions { bitmap_threshold: cands.len() - 1, ..BbOptions::vkc() };
        assert!(!ConflictKernel::build(&graph, &cands, 1, &too_small).is_bitmap());
        let disabled = BbOptions { bitmap_threshold: 0, ..BbOptions::vkc() };
        assert!(!ConflictKernel::build(&graph, &cands, 1, &disabled).is_bitmap());
    }

    #[test]
    fn bitmaps_are_symmetric_and_self_free() {
        let (graph, cands) = figure1_parts();
        let kernel = ConflictKernel::build(&graph, &cands, 2, &BbOptions::vkc());
        let ConflictKernel::Bitmap(maps) = kernel else {
            panic!("expected bitmaps under the default threshold")
        };
        assert_eq!(maps.len(), cands.len());
        for (i, map) in maps.iter().enumerate() {
            assert!(!map.contains(i), "candidate {i} must not conflict with itself");
            for j in map.iter_ones() {
                assert!(maps[j].contains(i), "conflict {i}<->{j} must be symmetric");
            }
        }
    }

    #[test]
    fn names() {
        let (graph, cands) = figure1_parts();
        assert_eq!(ConflictKernel::Oracle.name(), "oracle");
        assert_eq!(ConflictKernel::build(&graph, &cands, 1, &BbOptions::vkc()).name(), "bitmap");
    }
}

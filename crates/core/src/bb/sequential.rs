//! The sequential DFS engine.
//!
//! One [`Engine`] implements Algorithm 1 over candidate *indices* for
//! every configuration: either [`ConflictKernel`], any root-branch
//! partition (the parallel driver assigns each worker a round-robin slice
//! of the first-level branches), and an optional [`SharedThreshold`] that
//! imports other workers' N-th-best coverage into the Theorem-2 bound.
//!
//! Keyword pruning cuts a branch only when its upper bound falls
//! *strictly below* the threshold. A branch that merely ties must be
//! explored: under the canonical result ranking a tied group can still
//! displace an incumbent with a lexicographically larger member list, and
//! exploring ties is exactly what makes the result a pure function of the
//! feasible-group set (see DESIGN.md §12). The bound is non-increasing as
//! the loop advances through the ordered `S_R`, so a failed bound ends
//! the whole node, not just the branch.

use super::kernel::ConflictKernel;
use super::{top_vkc_sum_masks, BbOptions, KtgOutcome};
use crate::candidates::Candidate;
use crate::group::{Group, RankedGroup};
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::{cancel, CancelToken, CompletionStatus, FixedBitSet, SharedThreshold, TopN, VertexId};
use ktg_index::DistanceOracle;
use ktg_keywords::coverage;

/// Runs the engine over the whole tree on the calling thread.
///
/// A caller-proven `initial_floor` (keyword-subset reuse) is delivered
/// the same way the parallel driver delivers cross-worker floors: through
/// a [`SharedThreshold`] the engine folds into its Theorem-2 bound.
pub(super) fn run_sequential(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    kernel: &ConflictKernel,
    opts: &BbOptions,
    token: Option<&CancelToken>,
    initial_floor: Option<u32>,
) -> KtgOutcome {
    let seeded = initial_floor.map(|floor| {
        let shared = SharedThreshold::new();
        shared.publish(floor);
        shared
    });
    let mut engine =
        Engine::new(query, oracle, cands, kernel, opts, seeded.as_ref(), 0, 1, token);
    engine.run();
    let (results, stats) = engine.into_parts();
    KtgOutcome {
        groups: results.into_sorted_desc().into_iter().map(|r| r.group).collect(),
        stats,
        // Placeholder: the dispatcher (`bb::run_with_token`) derives the
        // real status from the merged stats and the token.
        status: CompletionStatus::Exact,
    }
}

/// One DFS worker: the full sequential engine when `root_stride == 1`,
/// or one parallel worker owning the root branches with
/// `index % root_stride == root_offset`.
pub(super) struct Engine<'a, O: DistanceOracle> {
    query: &'a KtgQuery,
    oracle: &'a O,
    cands: &'a [Candidate],
    kernel: &'a ConflictKernel,
    opts: &'a BbOptions,
    /// Cross-worker pruning floor; `None` in sequential runs.
    shared: Option<&'a SharedThreshold>,
    /// Cooperative deadline/cancellation flag, shared by every worker of
    /// the same query; `None` for unbudgeted searches.
    token: Option<&'a CancelToken>,
    root_offset: usize,
    root_stride: usize,
    results: TopN<RankedGroup>,
    stats: SearchStats,
    stop: bool,
    /// The intermediate result set `S_I` as vertex ids (group members).
    members: Vec<VertexId>,
    /// `S_I` as candidate indices (for bitmap conflict lookups).
    member_idx: Vec<u32>,
    /// Per-depth `S_R` bitsets for the bitmap kernel: `avail[d]` holds the
    /// still-unexplored candidates at depth `d`; a child pool is derived
    /// into `avail[d + 1]` by one word-parallel AND-NOT. Empty unless the
    /// kernel is bitmap-backed and eager filtering is on.
    avail: Vec<FixedBitSet>,
}

impl<'a, O: DistanceOracle> Engine<'a, O> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        query: &'a KtgQuery,
        oracle: &'a O,
        cands: &'a [Candidate],
        kernel: &'a ConflictKernel,
        opts: &'a BbOptions,
        shared: Option<&'a SharedThreshold>,
        root_offset: usize,
        root_stride: usize,
        token: Option<&'a CancelToken>,
    ) -> Self {
        let avail = if kernel.is_bitmap() && opts.kline_filtering {
            vec![FixedBitSet::new(cands.len()); query.p()]
        } else {
            Vec::new()
        };
        Engine {
            query,
            oracle,
            cands,
            kernel,
            opts,
            shared,
            token,
            root_offset,
            root_stride,
            results: TopN::new(query.n()),
            stats: SearchStats::default(),
            stop: false,
            members: Vec::with_capacity(query.p()),
            member_idx: Vec::with_capacity(query.p()),
            avail,
        }
    }

    /// Sorts the root `S_R` and explores this engine's share of the tree.
    pub(super) fn run(&mut self) {
        let mut ord: Vec<u32> = (0..self.cands.len() as u32).collect();
        self.opts.ordering.sort_indices(0, self.cands, &mut ord);
        if !self.avail.is_empty() {
            for ci in 0..self.cands.len() {
                self.avail[0].insert(ci);
            }
        }
        self.node(0, &ord);
    }

    /// Surrenders the per-worker result heap and counters.
    pub(super) fn into_parts(self) -> (TopN<RankedGroup>, SearchStats) {
        (self.results, self.stats)
    }

    /// The Theorem-2 threshold: the local N-th-best coverage joined with
    /// the shared cross-worker floor (both are proven coverage counts of
    /// N distinct feasible groups, so their max is too).
    #[inline]
    fn threshold(&self) -> Option<u32> {
        let local = self.results.threshold().map(|r| r.count);
        let shared = self.shared.map(|s| s.get()).filter(|&floor| floor > 0);
        match (local, shared) {
            (Some(l), Some(s)) => Some(l.max(s)),
            (l, s) => l.or(s),
        }
    }

    /// Theorem 2: can `covered` plus the best `need` remaining VKC values
    /// still reach the threshold? Ties pass — a tied group may still
    /// enter the result on canonical order.
    fn upper_bound_admissible(&self, covered: u64, tail: &[u32], need: usize) -> bool {
        let Some(threshold) = self.threshold() else { return true };
        let base = coverage::covered_count(covered);
        let cands = self.cands;
        let bound = base
            + top_vkc_sum_masks(
                covered,
                tail.iter().map(|&ci| cands[ci as usize].mask),
                need,
                self.opts.ordering.vkc_sorted(),
            );
        bound >= threshold
    }

    fn offer(&mut self, covered: u64) {
        self.stats.groups_evaluated += 1;
        let group = Group::new(self.members.clone(), covered);
        let count = group.coverage_count();
        let admitted = self.results.offer(RankedGroup::new(group));
        if admitted && self.results.is_full() {
            if let (Some(shared), Some(nth)) = (self.shared, self.results.threshold()) {
                shared.publish(nth.count);
            }
            if let Some(floor) = self.opts.stop_at_coverage {
                if count >= floor {
                    self.stop = true;
                }
            }
        }
    }

    /// Counts a search-tree node against the budgets; returns `false`
    /// when a budget is exhausted or the cancel token has fired (the
    /// search then unwinds, keeping its best-so-far results).
    #[inline]
    fn charge_node(&mut self) -> bool {
        self.stats.nodes += 1;
        if let Some(budget) = self.opts.node_budget {
            if self.stats.nodes > budget {
                self.stats.truncated = true;
                self.stop = true;
                return false;
            }
        }
        if let Some(token) = self.token {
            // Clock reads are amortized: one `poll` (which reads the
            // wall clock inside `ktg_common::cancel`) every POLL_STRIDE
            // nodes, a relaxed load otherwise — another worker or an
            // earlier poll may already have fired the token.
            let fired = if self.stats.nodes.is_multiple_of(cancel::POLL_STRIDE) {
                token.poll()
            } else {
                token.is_cancelled()
            };
            if fired {
                self.stats.cancelled = true;
                self.stop = true;
                return false;
            }
        }
        true
    }

    /// One Algorithm 1 node: `members`/`covered` are `S_I`, `ord` is the
    /// ordered remaining set as candidate indices (already
    /// k-line-consistent with `S_I` when eager filtering is on).
    fn node(&mut self, covered: u64, ord: &[u32]) {
        if !self.charge_node() {
            return;
        }
        if self.members.len() == self.query.p() {
            self.offer(covered);
            return;
        }
        let depth = self.members.len();
        let need = self.query.p() - depth;
        let kernel = self.kernel;

        for i in 0..ord.len() {
            let ci = ord[i] as usize;
            // Maintain the depth's S_R bitset unconditionally — also for
            // branches this loop skips — so a later AND-NOT derives the
            // child from exactly ord[i+1..]. Bits left behind by an early
            // return are harmless: every descent overwrites its child
            // level in full before reading it.
            if !self.avail.is_empty() {
                self.avail[depth].remove(ci);
            }
            if self.stop {
                return;
            }
            if depth == 0 && self.root_stride > 1 && i % self.root_stride != self.root_offset {
                continue;
            }
            if ord.len() - i < need {
                self.stats.feasibility_cuts += 1;
                return;
            }
            // The remaining pool only shrinks as `i` advances, so a failed
            // bound here fails for every later branch too: return, don't
            // continue.
            if self.opts.keyword_pruning && !self.upper_bound_admissible(covered, &ord[i..], need)
            {
                self.stats.keyword_pruned += 1;
                return;
            }

            let cand = self.cands[ci];
            if !self.opts.kline_filtering {
                // Lazy tenuity: check the new member against S_I directly.
                let conflict = match kernel {
                    ConflictKernel::Bitmap(maps) => {
                        self.member_idx.iter().any(|&m| maps[ci].contains(m as usize))
                    }
                    ConflictKernel::Oracle => {
                        self.stats.distance_checks += self.members.len() as u64;
                        self.members
                            .iter()
                            .any(|&u| self.oracle.is_kline(u, cand.v, self.query.k()))
                    }
                };
                if conflict {
                    continue;
                }
            }

            let new_covered = covered | cand.mask;
            self.members.push(cand.v);
            self.member_idx.push(ord[i]);

            if self.members.len() == self.query.p() {
                if self.charge_node() {
                    self.offer(new_covered);
                }
            } else {
                // Build the child S_R from the still-unexplored tail.
                let tail = &ord[i + 1..];
                let mut child: Vec<u32>;
                match (self.opts.kline_filtering, kernel) {
                    (true, ConflictKernel::Bitmap(maps)) => {
                        // avail[depth] == set(tail) here; one AND-NOT
                        // replaces |tail| oracle probes.
                        let (lower, upper) = self.avail.split_at_mut(depth + 1);
                        upper[0].assign_and_not(&lower[depth], &maps[ci]);
                        child = upper[0].iter_ones().map(|x| x as u32).collect();
                        self.stats.kline_filtered += (tail.len() - child.len()) as u64;
                    }
                    (true, ConflictKernel::Oracle) => {
                        self.stats.distance_checks += tail.len() as u64;
                        child = Vec::with_capacity(tail.len());
                        for &cj in tail {
                            if self.oracle.farther_than(
                                cand.v,
                                self.cands[cj as usize].v,
                                self.query.k(),
                            ) {
                                child.push(cj);
                            } else {
                                self.stats.kline_filtered += 1;
                            }
                        }
                    }
                    (false, _) => {
                        child = tail.to_vec();
                    }
                }
                self.opts.ordering.sort_indices(new_covered, self.cands, &mut child);
                self.node(new_covered, &child);
            }

            self.members.pop();
            self.member_idx.pop();
        }
    }
}

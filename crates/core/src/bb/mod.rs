//! The exact branch-and-bound engine (paper §IV, Algorithm 1).
//!
//! One engine implements all three exact algorithm variants evaluated in
//! the paper; they differ only in the [`MemberOrdering`] used to rank the
//! remaining candidate set `S_R`:
//!
//! * **KTG-QKC** — static sort by query keyword coverage (Definition 5),
//!   computed once and never refreshed ("only need sorting once").
//! * **KTG-VKC** — dynamic sort by *valid* keyword coverage
//!   (Definition 8), recomputed against the covered set after every
//!   selection.
//! * **KTG-VKC-DEG** — VKC order with an ascending-degree tiebreak: among
//!   equal-VKC candidates, low-degree members conflict with fewer others,
//!   so feasible groups form earlier (§IV-B; see DESIGN.md on the paper's
//!   self-contradictory phrasing of the direction).
//!
//! The engine applies three cuts, each toggleable for ablation studies:
//!
//! * **Keyword pruning** (Theorem 2): a branch dies when even the top
//!   `p − |S_I|` remaining VKC values cannot lift the coverage to the
//!   current N-th best.
//! * **k-line filtering** (Theorem 3): after selecting `v`, every
//!   remaining candidate within `k` hops of `v` is removed. When disabled,
//!   feasibility is enforced lazily by pairwise checks at selection time
//!   (the search stays exact either way).
//! * **Feasibility cut**: a branch with `|S_I| + |S_R| < p` cannot reach
//!   size `p`.
//!
//! Exploration order matches Algorithm 1: at each node take the head of
//! the ordered `S_R`, recurse, then permanently exclude it at this level
//! and continue — enumerating unordered groups exactly once.
//!
//! ## Performance architecture
//!
//! The engine is split into three submodules behind the same options
//! struct (see DESIGN.md §12 for the exactness argument):
//!
//! * [`kernel`] — the **conflict-bitmap kernel**. At query start (when
//!   the candidate set fits under [`BbOptions::bitmap_threshold`]) one
//!   `FixedBitSet` of k-line conflicts is precomputed per candidate by
//!   parallel bounded BFS; the DFS then derives each child `S_R` with a
//!   word-parallel AND-NOT instead of per-pair oracle probes.
//! * [`sequential`] — the single-threaded DFS over candidate *indices*,
//!   parameterized by kernel, root-branch partition, and an optional
//!   shared pruning floor.
//! * [`parallel`] — the root-level parallel driver: first-level branches
//!   are partitioned round-robin across workers, each running the
//!   sequential engine with its own `TopN`, publishing its N-th-best
//!   coverage into a `SharedThreshold` so any worker's discovery tightens
//!   every worker's Theorem-2 pruning. Results merge deterministically:
//!   ranking is a pure function of the group set ([`RankedGroup`]'s
//!   canonical order), so the output is byte-identical to the sequential
//!   engine regardless of thread count or timing.

use crate::candidates::{self, Candidate};
use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::{CancelToken, CompletionStatus, DegradeReason};
use ktg_index::DistanceOracle;
use ktg_keywords::coverage;

pub mod kernel;
pub mod parallel;
pub mod sequential;

pub use kernel::ConflictKernel;

#[cfg(doc)]
use crate::group::RankedGroup;

/// Default [`BbOptions::bitmap_threshold`]: bitmaps cost
/// `|C|²/8` bytes (512 KiB at 2048 candidates), far below the search tree
/// they accelerate, while huge candidate sets fall back to the oracle.
pub const DEFAULT_BITMAP_THRESHOLD: usize = 4096;

/// Candidate-ordering strategy for `S_R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberOrdering {
    /// Static query-keyword-coverage order (KTG-QKC).
    Qkc,
    /// Dynamic valid-keyword-coverage order (KTG-VKC).
    Vkc,
    /// VKC with ascending-degree tiebreak (KTG-VKC-DEG).
    VkcDeg,
    /// VKC with **descending**-degree tiebreak — not in the paper; exists
    /// to ablate the tiebreak direction (see DESIGN.md §3).
    VkcDegDesc,
}

impl MemberOrdering {
    /// Whether this ordering keeps `S_R` sorted by current VKC, letting
    /// the keyword-pruning bound read the top values off the list head.
    #[inline]
    fn vkc_sorted(self) -> bool {
        !matches!(self, MemberOrdering::Qkc)
    }

    /// Sorts `cands` for the given covered mask. For [`MemberOrdering::Qkc`]
    /// the key ignores `covered` (static QKC order). The engine itself
    /// sorts index vectors ([`MemberOrdering::sort_indices`]); this
    /// value-based twin remains as the differential reference for tests.
    #[cfg(test)]
    fn sort(self, covered: u64, cands: &mut [Candidate]) {
        match self {
            MemberOrdering::Qkc => {
                cands.sort_by_key(|c| (std::cmp::Reverse(c.mask.count_ones()), c.v));
            }
            MemberOrdering::Vkc => {
                cands.sort_by_key(|c| {
                    (std::cmp::Reverse(coverage::vkc_count(c.mask, covered)), c.v)
                });
            }
            MemberOrdering::VkcDeg => {
                cands.sort_by_key(|c| {
                    (std::cmp::Reverse(coverage::vkc_count(c.mask, covered)), c.degree, c.v)
                });
            }
            MemberOrdering::VkcDegDesc => {
                cands.sort_by_key(|c| {
                    (
                        std::cmp::Reverse(coverage::vkc_count(c.mask, covered)),
                        std::cmp::Reverse(c.degree),
                        c.v,
                    )
                });
            }
        }
    }

    /// Sorts a slice of candidate *indices* with the same keys as
    /// [`MemberOrdering::sort`]. Every key ends in the (unique) vertex id,
    /// so the result is a total order independent of the input
    /// permutation — the property the conflict-bitmap DFS relies on when
    /// it rebuilds child pools from bitset iteration order.
    fn sort_indices(self, covered: u64, cands: &[Candidate], idx: &mut [u32]) {
        match self {
            MemberOrdering::Qkc => {
                idx.sort_unstable_by_key(|&i| {
                    let c = &cands[i as usize];
                    (std::cmp::Reverse(c.mask.count_ones()), c.v)
                });
            }
            MemberOrdering::Vkc => {
                idx.sort_unstable_by_key(|&i| {
                    let c = &cands[i as usize];
                    (std::cmp::Reverse(coverage::vkc_count(c.mask, covered)), c.v)
                });
            }
            MemberOrdering::VkcDeg => {
                idx.sort_unstable_by_key(|&i| {
                    let c = &cands[i as usize];
                    (std::cmp::Reverse(coverage::vkc_count(c.mask, covered)), c.degree, c.v)
                });
            }
            MemberOrdering::VkcDegDesc => {
                idx.sort_unstable_by_key(|&i| {
                    let c = &cands[i as usize];
                    (
                        std::cmp::Reverse(coverage::vkc_count(c.mask, covered)),
                        std::cmp::Reverse(c.degree),
                        c.v,
                    )
                });
            }
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MemberOrdering::Qkc => "qkc",
            MemberOrdering::Vkc => "vkc",
            MemberOrdering::VkcDeg => "vkc-deg",
            MemberOrdering::VkcDegDesc => "vkc-deg-desc",
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BbOptions {
    /// Candidate ordering (the paper's algorithm variants).
    pub ordering: MemberOrdering,
    /// Apply Theorem 2 keyword pruning.
    pub keyword_pruning: bool,
    /// Apply Theorem 3 eager k-line filtering. When `false`, tenuity is
    /// enforced by lazy pairwise checks instead (still exact).
    pub kline_filtering: bool,
    /// Stop the whole search as soon as a group with at least this
    /// coverage count is admitted (DKTG-Greedy's "not less than `C_max`"
    /// early exit). `None` runs to optimality. Forces the sequential
    /// engine: the early exit is defined by discovery order.
    pub stop_at_coverage: Option<u32>,
    /// Safety valve for benchmarks: abandon the search after visiting this
    /// many tree nodes. The result is then possibly sub-optimal and
    /// [`SearchStats::truncated`] is set. `None` (the default everywhere
    /// outside the harness) runs to completion. Forces the sequential
    /// engine: which prefix of the tree fits a budget is defined by
    /// discovery order.
    pub node_budget: Option<u64>,
    /// Worker threads for the root-level parallel search: `1` (the
    /// default) runs the sequential engine, `0` asks
    /// [`ktg_common::parallel::worker_count`] (honoring `KTG_THREADS`),
    /// any other value is used as given. The result is byte-identical for
    /// every setting.
    pub threads: usize,
    /// Largest candidate-set size for which the conflict-bitmap kernel is
    /// built; beyond it (or at `0`, which disables bitmaps entirely) the
    /// engine probes the distance oracle pair by pair.
    pub bitmap_threshold: usize,
    /// Per-query wall-clock budget in milliseconds. When it expires the
    /// search stops cooperatively and returns its anytime best-so-far
    /// groups with [`CompletionStatus::Degraded`]. `None` (the default)
    /// runs to completion. Unlike `node_budget` this does **not** force
    /// the sequential engine: a deadline that never fires leaves the
    /// result exact and byte-identical across thread counts, and one
    /// that does fire flags the result as degraded.
    pub deadline_ms: Option<u64>,
}

impl BbOptions {
    /// KTG-VKC (Algorithm 1).
    pub fn vkc() -> Self {
        BbOptions {
            ordering: MemberOrdering::Vkc,
            keyword_pruning: true,
            kline_filtering: true,
            stop_at_coverage: None,
            node_budget: None,
            threads: 1,
            bitmap_threshold: DEFAULT_BITMAP_THRESHOLD,
            deadline_ms: None,
        }
    }

    /// KTG-VKC-DEG (§IV-B).
    pub fn vkc_deg() -> Self {
        BbOptions { ordering: MemberOrdering::VkcDeg, ..Self::vkc() }
    }

    /// KTG-QKC (the §VII comparison variant).
    pub fn qkc() -> Self {
        BbOptions { ordering: MemberOrdering::Qkc, ..Self::vkc() }
    }

    /// Same options with a different ordering.
    pub fn with_ordering(self, ordering: MemberOrdering) -> Self {
        BbOptions { ordering, ..self }
    }

    /// Same options with an explicit worker-thread count (`0` = auto).
    pub fn with_threads(self, threads: usize) -> Self {
        BbOptions { threads, ..self }
    }

    /// Same options with a different bitmap-kernel size cap (`0` disables
    /// the bitmap kernel).
    pub fn with_bitmap_threshold(self, bitmap_threshold: usize) -> Self {
        BbOptions { bitmap_threshold, ..self }
    }

    /// Same options with a per-query wall-clock deadline in milliseconds
    /// (`None` removes the deadline).
    pub fn with_deadline_ms(self, deadline_ms: Option<u64>) -> Self {
        BbOptions { deadline_ms, ..self }
    }

    /// The worker count this configuration resolves to.
    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            ktg_common::parallel::worker_count()
        } else {
            self.threads
        }
    }
}

/// The outcome of one KTG query.
#[derive(Clone, Debug)]
pub struct KtgOutcome {
    /// Result groups in descending coverage order, ties broken by
    /// canonical member order; at most `N`, fewer when the graph does not
    /// admit `N` feasible groups. The list is a pure function of the
    /// query — identical across thread counts, kernels, and oracles.
    pub groups: Vec<Group>,
    /// Search instrumentation. Unlike `groups`, the counters describe the
    /// work actually performed: in parallel runs they aggregate all
    /// workers and vary with thread count and timing.
    pub stats: SearchStats,
    /// Whether `groups` is the proven optimum ([`CompletionStatus::Exact`])
    /// or an anytime best-so-far cut short by a deadline, cancellation, or
    /// node budget ([`CompletionStatus::Degraded`]). Degraded groups are
    /// still *valid* — size, tenuity, coverage masks, and ordering all
    /// hold, and they pass the checked-mode audit.
    pub status: CompletionStatus,
}

impl KtgOutcome {
    /// Coverage ratio of the best group (0.0 when no group was found).
    pub fn best_qkc(&self, num_query_keywords: usize) -> f64 {
        self.groups.first().map_or(0.0, |g| g.qkc(num_query_keywords))
    }
}

/// Runs a KTG query end to end: compile masks, collect candidates, build
/// the conflict kernel, search.
pub fn solve(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    opts: &BbOptions,
) -> KtgOutcome {
    let masks = net.compile(query.keywords());
    let cands = candidates::collect_vec(net.graph(), &masks);
    solve_prepared(net, query, oracle, cands, opts)
}

/// Runs the search over a pre-extracted candidate slice and a pre-built
/// conflict kernel, then applies checked-mode verification. This is the
/// batched executor's entry point: the executor owns pooled candidate
/// vectors and recycled kernel rows, so nothing here may take ownership.
///
/// `initial_floor` pre-publishes a proven Theorem-2 pruning floor before
/// the search starts (the serving layer's keyword-subset reuse,
/// DESIGN.md §17). The caller asserts the floor is *sound*: at least `N`
/// feasible groups of this exact query reach that coverage count, so
/// tightening the bound early can never exclude a true top-N group —
/// keyword pruning passes ties (`bound >= threshold`), and the result
/// stays byte-identical to an unseeded solve.
pub(crate) fn solve_with_kernel(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    kernel: &ConflictKernel,
    opts: &BbOptions,
    initial_floor: Option<u32>,
) -> KtgOutcome {
    let owned = CancelToken::for_deadline_ms(opts.deadline_ms);
    let outcome =
        run_with_token(query, oracle, cands, kernel, opts, owned.as_ref(), initial_floor);
    crate::verify::enforce(net, query, &outcome.groups);
    outcome
}

/// Runs a KTG query over a pre-extracted candidate pool, with access to
/// the graph so the conflict-bitmap kernel can be built (the fast path
/// for every caller that has an [`AttributedGraph`] at hand).
pub fn solve_prepared(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: Vec<Candidate>,
    opts: &BbOptions,
) -> KtgOutcome {
    let kernel = ConflictKernel::build(net.graph(), &cands, query.k(), opts);
    let outcome = run(query, oracle, &cands, &kernel, opts);
    // Truncated searches may hold a sub-optimal (but still well-formed)
    // result; the audit's ordering/tenuity/coverage contract holds either
    // way, so checked mode gates every driver exit.
    crate::verify::enforce(net, query, &outcome.groups);
    outcome
}

/// Runs the search over a pre-extracted candidate set without a graph
/// (used by DKTG-Greedy, the multi-query-vertex extension, and tests that
/// manipulate the candidate pool). No graph means no bitmap kernel: all
/// distance questions go through the oracle.
pub fn solve_with_candidates(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    opts: &BbOptions,
) -> KtgOutcome {
    run(query, oracle, cands, &ConflictKernel::Oracle, opts)
}

/// [`solve_with_candidates`] with an externally-owned [`CancelToken`].
///
/// Callers that chain several inner searches under one budget — the
/// DKTG-Greedy loop re-solving with `N = 1` each round — share a single
/// token across all of them so the budget covers the whole chain rather
/// than restarting per round. `opts.deadline_ms` is ignored in favor of
/// the passed token.
pub fn solve_with_candidates_token(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    opts: &BbOptions,
    cancel: Option<&CancelToken>,
) -> KtgOutcome {
    run_with_token(query, oracle, cands, &ConflictKernel::Oracle, opts, cancel, None)
}

/// Derives the outcome status from what the engines observed: a fired
/// token wins (with its reason), then a node-budget truncation, then
/// exact. The token's reason is read only when a worker actually stopped
/// on it — a deadline that fires after the tree is exhausted leaves the
/// result exact.
pub(crate) fn completion_status(
    stats: &SearchStats,
    cancel: Option<&CancelToken>,
) -> CompletionStatus {
    if stats.cancelled {
        let reason =
            cancel.and_then(CancelToken::reason).unwrap_or(DegradeReason::Cancelled);
        CompletionStatus::Degraded(reason)
    } else if stats.truncated {
        CompletionStatus::Degraded(DegradeReason::NodeBudget)
    } else {
        CompletionStatus::Exact
    }
}

/// Dispatches to the sequential or parallel driver, creating a deadline
/// token from `opts.deadline_ms` when one is set.
fn run(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    kernel: &ConflictKernel,
    opts: &BbOptions,
) -> KtgOutcome {
    let owned = CancelToken::for_deadline_ms(opts.deadline_ms);
    run_with_token(query, oracle, cands, kernel, opts, owned.as_ref(), None)
}

/// Dispatches to the sequential or parallel driver.
///
/// `stop_at_coverage` and `node_budget` force the sequential engine: both
/// semantics are defined by DFS discovery order ("the first admitted
/// group reaching the floor", "the first `B` nodes"), which racing
/// workers cannot reproduce bit-for-bit. Exact searches parallelize
/// freely — their result is discovery-order independent. A deadline does
/// *not* force sequential: if it fires, the (timing-dependent) result is
/// flagged `Degraded`; if it never fires, the result is exact.
fn run_with_token(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    kernel: &ConflictKernel,
    opts: &BbOptions,
    cancel: Option<&CancelToken>,
    initial_floor: Option<u32>,
) -> KtgOutcome {
    let workers = opts.resolved_threads().min(cands.len().max(1));
    let order_dependent = opts.stop_at_coverage.is_some() || opts.node_budget.is_some();
    // Order-dependent runs define their result by the *unseeded* DFS
    // discovery order ("first admitted group reaching the floor", "first
    // B nodes"); a pre-published floor would change which prefix of the
    // tree they visit, so the seed is dropped rather than silently
    // altering their semantics.
    let initial_floor = initial_floor.filter(|_| !order_dependent);
    let mut outcome = if workers <= 1 || order_dependent {
        sequential::run_sequential(query, oracle, cands, kernel, opts, cancel, initial_floor)
    } else {
        parallel::run_parallel(
            query, oracle, cands, kernel, opts, workers, cancel, initial_floor,
        )
    };
    outcome.status = completion_status(&outcome.stats, cancel);
    outcome
}

/// Sum of the `need` largest VKC counts in `s_r` w.r.t. `covered`.
///
/// When the list is VKC-sorted this is the sum of the head; otherwise a
/// selection scan keeps a tiny descending buffer (need ≤ p, and p ≤ 7 in
/// every evaluated configuration). The engine feeds masks straight into
/// [`top_vkc_sum_masks`]; this slice wrapper remains for tests.
#[cfg(test)]
fn top_vkc_sum(covered: u64, s_r: &[Candidate], need: usize, sorted: bool) -> u32 {
    top_vkc_sum_masks(covered, s_r.iter().map(|c| c.mask), need, sorted)
}

/// [`top_vkc_sum`] over raw coverage masks (the index-based engine feeds
/// candidate indices through here without materializing a slice).
///
/// The unsorted path is a single-pass selection scan: the buffer stays
/// descending by shifting each accepted value into place — O(need) per
/// accepted element, no re-sort.
fn top_vkc_sum_masks(
    covered: u64,
    masks: impl Iterator<Item = u64>,
    need: usize,
    sorted: bool,
) -> u32 {
    if sorted {
        return masks.take(need).map(|m| coverage::vkc_count(m, covered)).sum();
    }
    let mut top: Vec<u32> = Vec::with_capacity(need);
    for m in masks {
        let val = coverage::vkc_count(m, covered);
        if top.len() < need {
            let pos = top.partition_point(|&x| x >= val);
            top.insert(pos, val);
        } else if let Some(&min) = top.last() {
            // `top` is full (need > 0 on every caller path) and sorted
            // descending, so the minimum sits at the end.
            if val > min {
                let mut i = top.len() - 1;
                while i > 0 && top[i - 1] < val {
                    top[i] = top[i - 1];
                    i -= 1;
                }
                top[i] = val;
            }
        }
    }
    top.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use ktg_index::{BfsOracle, ExactOracle, NlIndex, NlrnlIndex};

    fn paper_query(net: &AttributedGraph) -> KtgQuery {
        KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap()
    }

    /// The paper's running query: top-2 groups of size 3 with k = 1 cover
    /// 4 of 5 query keywords ({SN, QP, DQ, GD}; nobody has GQ).
    #[test]
    fn figure1_query_all_orderings() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = BfsOracle::new(net.graph());
        for opts in [BbOptions::vkc(), BbOptions::vkc_deg(), BbOptions::qkc()] {
            let out = solve(&net, &query, &oracle, &opts);
            assert_eq!(out.groups.len(), 2, "{:?}", opts.ordering);
            for g in &out.groups {
                assert_eq!(g.coverage_count(), 4, "{:?}", opts.ordering);
                assert_eq!(g.len(), 3);
                fixtures::assert_k_distance(net.graph(), g.members(), 1);
            }
        }
    }

    #[test]
    fn all_oracles_agree_on_figure1() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let bfs = BfsOracle::new(net.graph());
        let nl = NlIndex::build(net.graph());
        let nlrnl = NlrnlIndex::build(net.graph());
        let exact = ExactOracle::build(net.graph());
        // bitmap_threshold 0 keeps every distance question on the oracle
        // under test (the default would route them to the bitmap kernel).
        let opts = BbOptions::vkc_deg().with_bitmap_threshold(0);
        let a = solve(&net, &query, &bfs, &opts);
        let b = solve(&net, &query, &nl, &opts);
        let c = solve(&net, &query, &nlrnl, &opts);
        let d = solve(&net, &query, &exact, &opts);
        assert_eq!(a.groups, b.groups);
        assert_eq!(b.groups, c.groups);
        assert_eq!(c.groups, d.groups);
    }

    #[test]
    fn bitmap_kernel_matches_oracle_path() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        for (p, k, n) in [(3usize, 1u32, 2usize), (2, 2, 3), (4, 1, 1), (3, 2, 5)] {
            let query = KtgQuery::new(
                net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
                p,
                k,
                n,
            )
            .unwrap();
            for base in [BbOptions::vkc(), BbOptions::vkc_deg(), BbOptions::qkc()] {
                let with_bitmaps = solve(&net, &query, &oracle, &base);
                let without = solve(&net, &query, &oracle, &base.with_bitmap_threshold(0));
                assert_eq!(with_bitmaps.groups, without.groups, "p={p} k={k} n={n}");
            }
        }
    }

    #[test]
    fn bitmap_kernel_skips_oracle_probes() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let bitmap = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let probing = solve(&net, &query, &oracle, &BbOptions::vkc_deg().with_bitmap_threshold(0));
        assert_eq!(bitmap.groups, probing.groups);
        assert_eq!(bitmap.stats.distance_checks, 0, "bitmaps answer every distance question");
        assert!(probing.stats.distance_checks > 0);
        assert_eq!(
            bitmap.stats.kline_filtered, probing.stats.kline_filtered,
            "both paths remove exactly the same conflicting candidates"
        );
    }

    #[test]
    fn parallel_matches_sequential_on_figure1() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = BfsOracle::new(net.graph());
        let sequential = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        for threads in [0usize, 2, 3, 8] {
            let parallel = solve(&net, &query, &oracle, &BbOptions::vkc_deg().with_threads(threads));
            assert_eq!(sequential.groups, parallel.groups, "threads={threads}");
        }
    }

    #[test]
    fn pruning_toggles_preserve_exactness() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let reference = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        for (kp, kf) in [(false, true), (true, false), (false, false)] {
            let opts = BbOptions { keyword_pruning: kp, kline_filtering: kf, ..BbOptions::vkc_deg() };
            let out = solve(&net, &query, &oracle, &opts);
            assert_eq!(
                out.groups[0].coverage_count(),
                reference.groups[0].coverage_count(),
                "kp={kp} kf={kf}"
            );
            assert_eq!(out.groups.len(), reference.groups.len());
        }
    }

    #[test]
    fn pruning_reduces_work() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let with = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let without = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { keyword_pruning: false, ..BbOptions::vkc_deg() },
        );
        assert!(with.stats.nodes <= without.stats.nodes);
        assert!(with.stats.keyword_pruned > 0);
    }

    #[test]
    fn infeasible_when_k_too_large() {
        let net = fixtures::figure1();
        // k = 10 exceeds the main component's diameter: no 3 candidates
        // are pairwise farther than 10 hops.
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            10,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert!(out.groups.is_empty());
    }

    #[test]
    fn k_zero_admits_any_distinct_candidates() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            0,
            1,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].coverage_count(), 4, "still no GQ anywhere");
    }

    #[test]
    fn stop_at_coverage_exits_early() {
        let net = fixtures::figure1();
        let query = paper_query(&net).with_n(1).unwrap();
        let oracle = ExactOracle::build(net.graph());
        let full = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let early = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { stop_at_coverage: Some(4), ..BbOptions::vkc_deg() },
        );
        assert_eq!(early.groups[0].coverage_count(), 4);
        assert!(early.stats.nodes <= full.stats.nodes);
    }

    #[test]
    fn p_one_returns_best_single_vertices() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            1,
            1,
            3,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert_eq!(out.groups.len(), 3);
        // u0 covers 3 query keywords — the unique best single vertex.
        assert_eq!(out.groups[0].coverage_count(), 3);
    }

    #[test]
    fn ordering_sort_keys() {
        let mk = |v: u32, mask: u64, degree: u32| Candidate {
            v: ktg_common::VertexId(v),
            mask,
            degree,
        };
        // Three candidates: equal VKC for (1, 2), different degrees.
        let cands = vec![mk(0, 0b0001, 9), mk(1, 0b0110, 5), mk(2, 0b0011, 2)];

        let mut qkc = cands.clone();
        MemberOrdering::Qkc.sort(0, &mut qkc);
        // Static popcount order: v1 (2) ties v2 (2) → id asc; v0 (1) last.
        assert_eq!(qkc.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![1, 2, 0]);

        // covered = 0b0010: VKC = [1, 1, 1] → pure id order under Vkc.
        let mut vkc = cands.clone();
        MemberOrdering::Vkc.sort(0b0010, &mut vkc);
        assert_eq!(vkc.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![0, 1, 2]);

        // Same covered, VkcDeg: ties broken by ascending degree.
        let mut deg = cands.clone();
        MemberOrdering::VkcDeg.sort(0b0010, &mut deg);
        assert_eq!(deg.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![2, 1, 0]);

        // Descending-degree ablation ordering is the reverse tiebreak.
        let mut desc = cands.clone();
        MemberOrdering::VkcDegDesc.sort(0b0010, &mut desc);
        assert_eq!(desc.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn sort_indices_matches_sort() {
        let mk = |v: u32, mask: u64, degree: u32| Candidate {
            v: ktg_common::VertexId(v),
            mask,
            degree,
        };
        let cands =
            vec![mk(0, 0b0001, 9), mk(1, 0b0110, 5), mk(2, 0b0011, 2), mk(3, 0b1111, 5)];
        for ordering in [
            MemberOrdering::Qkc,
            MemberOrdering::Vkc,
            MemberOrdering::VkcDeg,
            MemberOrdering::VkcDegDesc,
        ] {
            for covered in [0u64, 0b0010, 0b0111] {
                let mut by_value = cands.clone();
                ordering.sort(covered, &mut by_value);
                // Feed the index sort a scrambled permutation: the result
                // must still match (keys end in the unique vertex id).
                let mut idx: Vec<u32> = vec![2, 0, 3, 1];
                ordering.sort_indices(covered, &cands, &mut idx);
                let by_index: Vec<u32> = idx.iter().map(|&i| cands[i as usize].v.0).collect();
                let expect: Vec<u32> = by_value.iter().map(|c| c.v.0).collect();
                assert_eq!(by_index, expect, "{ordering:?} covered={covered:#b}");
            }
        }
    }

    #[test]
    fn ordering_names() {
        assert_eq!(MemberOrdering::Qkc.name(), "qkc");
        assert_eq!(MemberOrdering::Vkc.name(), "vkc");
        assert_eq!(MemberOrdering::VkcDeg.name(), "vkc-deg");
        assert_eq!(MemberOrdering::VkcDegDesc.name(), "vkc-deg-desc");
    }

    #[test]
    fn best_qkc_helper() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert!((out.best_qkc(5) - 0.8).abs() < 1e-12);
        let empty = KtgOutcome {
            groups: vec![],
            stats: SearchStats::default(),
            status: CompletionStatus::Exact,
        };
        assert_eq!(empty.best_qkc(5), 0.0);
    }

    #[test]
    fn node_budget_sets_truncated_flag() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let out = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { node_budget: Some(2), ..BbOptions::vkc_deg() },
        );
        assert!(out.stats.truncated);
        let full = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { node_budget: Some(u64::MAX), ..BbOptions::vkc_deg() },
        );
        assert!(!full.stats.truncated);
    }

    #[test]
    fn node_budget_status_is_degraded() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let truncated = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { node_budget: Some(2), ..BbOptions::vkc_deg() },
        );
        assert_eq!(
            truncated.status,
            CompletionStatus::Degraded(DegradeReason::NodeBudget)
        );
        let full = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert_eq!(full.status, CompletionStatus::Exact);
    }

    #[test]
    fn generous_deadline_stays_exact_and_identical() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let plain = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let budgeted = solve(
            &net,
            &query,
            &oracle,
            &BbOptions::vkc_deg().with_deadline_ms(Some(600_000)),
        );
        assert_eq!(budgeted.status, CompletionStatus::Exact);
        assert_eq!(budgeted.groups, plain.groups, "unfired deadline must not change anything");
    }

    #[test]
    fn fired_token_stops_search_with_degraded_status() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = BfsOracle::new(net.graph());
        let masks = net.compile(query.keywords());
        let cands = candidates::collect_vec(net.graph(), &masks);

        // An already-fired deadline token: the very first node check
        // observes it, so the search stops deterministically at the root
        // with an empty (valid, trivially verifier-clean) result.
        let token = ktg_common::CancelToken::with_deadline_ms(0);
        assert!(token.poll(), "0 ms deadline fires on first poll");
        let out =
            solve_with_candidates_token(&query, &oracle, &cands, &BbOptions::vkc_deg(), Some(&token));
        assert!(out.stats.cancelled);
        assert_eq!(out.status, CompletionStatus::Degraded(DegradeReason::Deadline));
        assert!(out.stats.nodes <= 1, "cancelled search must stop immediately");

        // Explicit cancellation reports its own reason.
        let manual = ktg_common::CancelToken::new();
        manual.cancel();
        let out = solve_with_candidates_token(
            &query, &oracle, &cands, &BbOptions::vkc_deg(), Some(&manual),
        );
        assert_eq!(out.status, CompletionStatus::Degraded(DegradeReason::Cancelled));

        // A live token changes nothing.
        let live = ktg_common::CancelToken::new();
        let with_live =
            solve_with_candidates_token(&query, &oracle, &cands, &BbOptions::vkc_deg(), Some(&live));
        let without = solve_with_candidates(&query, &oracle, &cands, &BbOptions::vkc_deg());
        assert_eq!(with_live.status, CompletionStatus::Exact);
        assert_eq!(with_live.groups, without.groups);
    }

    #[test]
    fn top_vkc_sum_selection_scan_matches_sorted() {
        let cands: Vec<Candidate> = [(0u32, 0b0111u64, 1u32), (1, 0b1000, 2), (2, 0b0011, 3)]
            .iter()
            .map(|&(v, mask, degree)| Candidate { v: ktg_common::VertexId(v), mask, degree })
            .collect();
        // covered = 0b0001 → vkc counts = [2, 1, 1]; top-2 = 3.
        assert_eq!(top_vkc_sum(0b0001, &cands, 2, false), 3);
        let mut sorted = cands.clone();
        MemberOrdering::Vkc.sort(0b0001, &mut sorted);
        assert_eq!(top_vkc_sum(0b0001, &sorted, 2, true), 3);
    }

    #[test]
    fn top_vkc_sum_shift_into_place_randomized() {
        // The selection scan must match "sort desc, take need, sum" for
        // arbitrary value streams and every buffer size.
        let mut rng = ktg_common::SeededRng::seed_from_u64(0x70b5);
        for _ in 0..200 {
            let len = rng.gen_range(0..20u32) as usize;
            let masks: Vec<u64> = (0..len).map(|_| rng.gen_range(0..64u64)).collect();
            for need in 1..=6usize {
                let got = top_vkc_sum_masks(0, masks.iter().copied(), need, false);
                let mut counts: Vec<u32> =
                    masks.iter().map(|&m| coverage::vkc_count(m, 0)).collect();
                counts.sort_unstable_by(|a, b| b.cmp(a));
                let expect: u32 = counts.iter().take(need).sum();
                assert_eq!(got, expect, "masks={masks:?} need={need}");
            }
        }
    }
}

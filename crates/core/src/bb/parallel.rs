//! The root-level parallel driver.
//!
//! The first-level branches of Algorithm 1 are independent subtrees:
//! branch `i` enumerates exactly the groups whose highest-ranked member
//! (in root order) is `ord[i]`, so a round-robin partition of the root
//! indices covers every feasible group exactly once with zero
//! coordination. Each worker runs the full sequential [`Engine`] over its
//! share with a private `TopN` and [`SearchStats`]; the only shared state
//! is one [`SharedThreshold`] carrying the best proven N-th-best coverage
//! (a monotone pruning floor — it can tighten Theorem 2 early but can
//! never change what is enumerable).
//!
//! Determinism: the result ranking is a pure function of the group set
//! (canonical order, see [`crate::group::RankedGroup`]), every group
//! ranked at least as high as the final N-th best is provably explored by
//! whichever worker owns its root branch, and merging the per-worker
//! heaps through one more `TopN` selects the same N groups in the same
//! order no matter how the workers interleaved. The merged output is
//! byte-identical to the sequential engine's. Stats, by contrast, are
//! honest aggregates of work performed and do vary with thread count.

use super::kernel::ConflictKernel;
use super::sequential::Engine;
use super::{BbOptions, KtgOutcome};
use crate::candidates::Candidate;
use crate::group::RankedGroup;
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::parallel::scope_join;
use ktg_common::{CancelToken, CompletionStatus, SharedThreshold, TopN};
use ktg_index::DistanceOracle;

/// Fans the search out over `workers` threads and deterministically
/// merges the per-worker results. All workers share one `token`: the
/// first to poll an expired deadline fires it for everyone, so the whole
/// query — not each worker — observes a single budget.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_parallel(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: &[Candidate],
    kernel: &ConflictKernel,
    opts: &BbOptions,
    workers: usize,
    token: Option<&CancelToken>,
    initial_floor: Option<u32>,
) -> KtgOutcome {
    debug_assert!(workers > 1, "run_parallel needs at least two workers");
    let shared = SharedThreshold::new();
    if let Some(floor) = initial_floor {
        // A caller-proven floor (keyword-subset reuse) enters through the
        // same monotone channel workers publish into: it tightens
        // Theorem 2 from the first node, and soundness is the caller's
        // contract (N feasible groups reach this coverage).
        shared.publish(floor);
    }
    let shared_ref = &shared;
    let worker_parts = scope_join((0..workers).map(|offset| {
        move || {
            let mut engine = Engine::new(
                query, oracle, cands, kernel, opts, Some(shared_ref), offset, workers, token,
            );
            engine.run();
            engine.into_parts()
        }
    }));

    // Deterministic merge: workers enumerate disjoint group sets, and the
    // canonical RankedGroup order is total, so feeding every retained
    // group through one more TopN yields the N globally best groups
    // regardless of worker completion order.
    let mut merged: TopN<RankedGroup> = TopN::new(query.n());
    let mut stats = SearchStats::default();
    for (results, worker_stats) in worker_parts {
        stats.merge(&worker_stats);
        for ranked in results.into_sorted_desc() {
            merged.offer(ranked);
        }
    }
    KtgOutcome {
        groups: merged.into_sorted_desc().into_iter().map(|r| r.group).collect(),
        stats,
        // Placeholder: the dispatcher (`bb::run_with_token`) derives the
        // real status from the merged stats and the token.
        status: CompletionStatus::Exact,
    }
}

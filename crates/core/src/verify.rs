//! Checked-mode result verification.
//!
//! An independent auditor for KTG/DKTG result sets: every property the
//! solvers are supposed to guarantee is *recomputed from first
//! principles* against the raw CSR graph and keyword arenas — fresh
//! bounded BFS for pairwise distances (never the distance oracle the
//! search used), per-member masks rebuilt from `κ(v)` (never the
//! inverted index), group coverage re-unioned from those masks. A bug in
//! an oracle, the candidate extraction, or the branch-and-bound pruning
//! therefore cannot hide from the audit, because the audit shares no
//! code path with any of them.
//!
//! Two ways in:
//!
//! * [`audit_results`] / [`audit_dktg_results`] return an [`AuditReport`]
//!   for callers that want to inspect violations (tests, the CLI).
//! * [`enforce`] / [`enforce_dktg`] assert on a clean report, and are
//!   wired into the algorithm drivers ([`crate::bb::solve`],
//!   [`crate::dktg::solve_with_options`]). They run when
//!   [`checked_mode_enabled`] holds: always in debug builds, and in
//!   release builds when the environment sets `KTG_VERIFY=1` — the knob
//!   CI uses to smoke-test release binaries.
//!
//! The checks, mirroring the paper's Definitions 1–7:
//!
//! * result-set size ≤ `N`, group size = `p`;
//! * members sorted, duplicate-free, in `0..|V|`;
//! * every member covers ≥ 1 query keyword (candidates by Def. 5);
//! * pairwise `Dis(u, v) > k` for every member pair (Defs. 1–3), via a
//!   fresh BFS bounded at depth `k`;
//! * the group's claimed coverage mask equals the re-unioned member
//!   masks (Def. 6);
//! * groups arrive in non-increasing coverage order (top-`N` contract);
//! * DKTG only: panels are pairwise member-disjoint (greedy invariant).

use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use ktg_common::VertexId;
use ktg_graph::bfs;
use ktg_graph::BfsScratch;
use std::fmt;
use std::sync::OnceLock;

/// One way a result set can violate the KTG/DKTG contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// More groups than the query's `N`.
    TooManyGroups {
        /// Number of groups returned.
        got: usize,
        /// The query's `N`.
        n: usize,
    },
    /// A group whose size is not the query's `p`.
    GroupSize {
        /// Index of the offending group in the result order.
        group: usize,
        /// Its member count.
        got: usize,
        /// The query's `p`.
        p: usize,
    },
    /// A vertex appearing twice in one group.
    DuplicateMember {
        /// Index of the offending group.
        group: usize,
        /// The repeated vertex.
        v: VertexId,
    },
    /// A member outside the graph's vertex range.
    MemberOutOfRange {
        /// Index of the offending group.
        group: usize,
        /// The out-of-range vertex.
        v: VertexId,
        /// `|V|` of the graph.
        num_vertices: usize,
    },
    /// A member covering none of the query keywords (not a candidate by
    /// Definition 5, so its VKC/QKC contribution is zero).
    MemberWithoutKeyword {
        /// Index of the offending group.
        group: usize,
        /// The keyword-less vertex.
        v: VertexId,
    },
    /// A member pair within `k` hops: the group is not `k`-tenuous.
    KLine {
        /// Index of the offending group.
        group: usize,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Recomputed hop distance (≤ `k`).
        dist: u32,
        /// The query's tenuity parameter.
        k: u32,
    },
    /// The group's stored coverage mask disagrees with the union of its
    /// members' recomputed masks.
    CoverageMismatch {
        /// Index of the offending group.
        group: usize,
        /// The mask the solver stored.
        claimed: u64,
        /// The mask recomputed from raw keyword sets.
        actual: u64,
    },
    /// A later group with strictly higher coverage than an earlier one.
    OrderingViolation {
        /// Index of the out-of-order group.
        group: usize,
        /// Coverage count of its predecessor.
        prev: u32,
        /// Its own coverage count.
        cur: u32,
    },
    /// Two DKTG panels sharing a member (greedy panels are disjoint).
    MembersNotDisjoint {
        /// Index of the earlier group.
        group_a: usize,
        /// Index of the later group.
        group_b: usize,
        /// The shared vertex.
        v: VertexId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooManyGroups { got, n } => {
                write!(f, "{got} groups returned for a top-{n} query")
            }
            Violation::GroupSize { group, got, p } => {
                write!(f, "group {group}: {got} members, query requires p = {p}")
            }
            Violation::DuplicateMember { group, v } => {
                write!(f, "group {group}: duplicate member {v}")
            }
            Violation::MemberOutOfRange { group, v, num_vertices } => {
                write!(f, "group {group}: member {v} out of range for {num_vertices} vertices")
            }
            Violation::MemberWithoutKeyword { group, v } => {
                write!(f, "group {group}: member {v} covers no query keyword")
            }
            Violation::KLine { group, u, v, dist, k } => {
                write!(
                    f,
                    "group {group}: Dis({u}, {v}) = {dist} ≤ k = {k} — not {k}-tenuous"
                )
            }
            Violation::CoverageMismatch { group, claimed, actual } => {
                write!(
                    f,
                    "group {group}: claimed coverage mask {claimed:#b}, recomputed {actual:#b}"
                )
            }
            Violation::OrderingViolation { group, prev, cur } => {
                write!(
                    f,
                    "group {group}: coverage {cur} exceeds predecessor's {prev} — result not sorted"
                )
            }
            Violation::MembersNotDisjoint { group_a, group_b, v } => {
                write!(f, "groups {group_a} and {group_b} share member {v}")
            }
        }
    }
}

/// The outcome of auditing one result set.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Every contract violation found, in group order.
    pub violations: Vec<Violation>,
    /// Number of groups examined.
    pub groups_checked: usize,
    /// Number of member pairs whose distance was recomputed.
    pub pairs_checked: usize,
}

impl AuditReport {
    /// Whether the result set passed every check.
    #[inline]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(
                f,
                "verified: {} group(s), {} pairwise distance(s) recomputed",
                self.groups_checked, self.pairs_checked
            );
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Whether checked mode is active: always in debug builds, and in
/// release builds when `KTG_VERIFY=1` is set. Cached after first read.
pub fn checked_mode_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        cfg!(debug_assertions) || std::env::var_os("KTG_VERIFY").is_some_and(|v| v == "1")
    })
}

/// Recomputes a vertex's query-keyword mask from the raw keyword arena —
/// deliberately bypassing the inverted index and compiled [`ktg_keywords::QueryMasks`].
fn recompute_mask(net: &AttributedGraph, query: &KtgQuery, v: VertexId) -> u64 {
    let mut mask = 0u64;
    for (bit, &kw) in query.keywords().ids().iter().enumerate() {
        if net.keywords().has_keyword(v, kw) {
            mask |= 1 << bit;
        }
    }
    mask
}

/// Audits one group in isolation (structure, candidacy, tenuity,
/// coverage); shared by the KTG and DKTG entry points.
fn audit_group(
    net: &AttributedGraph,
    query: &KtgQuery,
    idx: usize,
    group: &Group,
    scratch: &mut BfsScratch,
    report: &mut AuditReport,
) {
    let members = group.members();
    if members.len() != query.p() {
        report.violations.push(Violation::GroupSize {
            group: idx,
            got: members.len(),
            p: query.p(),
        });
    }
    let n = net.num_vertices();
    let mut structurally_sound = true;
    for w in members.windows(2) {
        if w[0] == w[1] {
            report.violations.push(Violation::DuplicateMember { group: idx, v: w[0] });
            structurally_sound = false;
        }
    }
    for &v in members {
        if v.index() >= n {
            report.violations.push(Violation::MemberOutOfRange {
                group: idx,
                v,
                num_vertices: n,
            });
            structurally_sound = false;
        }
    }
    if !structurally_sound {
        // Distance/coverage recomputation would index out of bounds or
        // double-count; the structural violations already fail the audit.
        return;
    }

    let mut actual = 0u64;
    for &v in members {
        let mask = recompute_mask(net, query, v);
        if mask == 0 {
            report.violations.push(Violation::MemberWithoutKeyword { group: idx, v });
        }
        actual |= mask;
    }
    if actual != group.mask() {
        report.violations.push(Violation::CoverageMismatch {
            group: idx,
            claimed: group.mask(),
            actual,
        });
    }

    let k = query.k();
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            report.pairs_checked += 1;
            if let Some(dist) = bfs::distance_bounded(net.graph(), u, v, k as usize, scratch) {
                report.violations.push(Violation::KLine { group: idx, u, v, dist, k });
            }
        }
    }
}

/// Independently re-validates a KTG result set against the raw graph.
///
/// `groups` is expected in result order (descending coverage); the
/// ordering itself is among the audited properties.
pub fn audit_results(net: &AttributedGraph, query: &KtgQuery, groups: &[Group]) -> AuditReport {
    let mut report = AuditReport::default();
    let mut scratch = BfsScratch::new(net.num_vertices());
    if groups.len() > query.n() {
        report.violations.push(Violation::TooManyGroups { got: groups.len(), n: query.n() });
    }
    let mut prev_count: Option<u32> = None;
    for (idx, group) in groups.iter().enumerate() {
        report.groups_checked += 1;
        audit_group(net, query, idx, group, &mut scratch, &mut report);
        let count = recompute_count(net, query, group);
        if let Some(prev) = prev_count {
            if count > prev {
                report.violations.push(Violation::OrderingViolation {
                    group: idx,
                    prev,
                    cur: count,
                });
            }
        }
        prev_count = Some(count);
    }
    report
}

/// Audits a DKTG panel set: every per-group property of
/// [`audit_results`] (against the base query, minus the ordering check —
/// greedy panels rank by marginal score, not raw coverage) plus
/// pairwise member-disjointness.
pub fn audit_dktg_results(
    net: &AttributedGraph,
    query: &crate::dktg::DktgQuery,
    groups: &[Group],
) -> AuditReport {
    let base = query.base();
    let mut report = AuditReport::default();
    let mut scratch = BfsScratch::new(net.num_vertices());
    if groups.len() > base.n() {
        report.violations.push(Violation::TooManyGroups { got: groups.len(), n: base.n() });
    }
    for (idx, group) in groups.iter().enumerate() {
        report.groups_checked += 1;
        audit_group(net, base, idx, group, &mut scratch, &mut report);
    }
    for (a, ga) in groups.iter().enumerate() {
        for (off, gb) in groups[a + 1..].iter().enumerate() {
            for &v in ga.members() {
                if gb.contains(v) {
                    report.violations.push(Violation::MembersNotDisjoint {
                        group_a: a,
                        group_b: a + 1 + off,
                        v,
                    });
                }
            }
        }
    }
    report
}

/// The independently recomputed coverage count of a group.
fn recompute_count(net: &AttributedGraph, query: &KtgQuery, group: &Group) -> u32 {
    let mut mask = 0u64;
    for &v in group.members() {
        if v.index() < net.num_vertices() {
            mask |= recompute_mask(net, query, v);
        }
    }
    mask.count_ones()
}

/// Checked-mode gate for the KTG driver: audits and asserts when
/// [`checked_mode_enabled`]. A no-op (zero audit cost) otherwise.
pub fn enforce(net: &AttributedGraph, query: &KtgQuery, groups: &[Group]) {
    if !checked_mode_enabled() {
        return;
    }
    let report = audit_results(net, query, groups);
    assert!(report.is_ok(), "KTG checked-mode verification failed: {report}");
}

/// Checked-mode gate for the DKTG driver.
pub fn enforce_dktg(net: &AttributedGraph, query: &crate::dktg::DktgQuery, groups: &[Group]) {
    if !checked_mode_enabled() {
        return;
    }
    let report = audit_dktg_results(net, query, groups);
    assert!(report.is_ok(), "DKTG checked-mode verification failed: {report}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::{self, BbOptions};
    use crate::dktg::{self, DktgQuery};
    use crate::fixtures;
    use ktg_index::BfsOracle;

    fn paper_query(net: &AttributedGraph, n: usize) -> KtgQuery {
        KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            n,
        )
        .unwrap()
    }

    fn solved(n: usize) -> (AttributedGraph, KtgQuery, Vec<Group>) {
        let net = fixtures::figure1();
        let query = paper_query(&net, n);
        let oracle = BfsOracle::new(net.graph());
        let out = bb::solve(&net, &query, &oracle, &BbOptions::vkc());
        assert!(!out.groups.is_empty(), "fixture admits feasible groups");
        (net, query, out.groups)
    }

    #[test]
    fn genuine_results_audit_clean() {
        let (net, query, groups) = solved(2);
        let report = audit_results(&net, &query, &groups);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.groups_checked, groups.len());
        assert!(report.pairs_checked > 0, "pairwise distances recomputed");
    }

    #[test]
    fn corrupt_member_breaks_tenuity() {
        let (net, query, groups) = solved(1);
        // Replace one member with a neighbor of another member: the pair
        // sits at distance 1 ≤ k, so the audit must flag a k-line.
        let g = &groups[0];
        let keep = g.members()[0];
        let close = net.graph().neighbors_vec(keep)[0];
        assert!(!g.contains(close), "neighbor must be a genuine substitution");
        let mut members = g.members().to_vec();
        members[1] = close;
        let corrupted = Group::new(members, g.mask());
        let report = audit_results(&net, &query, &[corrupted]);
        assert!(
            report.violations.iter().any(|v| matches!(v, Violation::KLine { .. })),
            "{report}"
        );
    }

    #[test]
    fn inflated_mask_is_coverage_mismatch() {
        let (net, query, groups) = solved(1);
        let g = &groups[0];
        let full = (1u64 << query.keywords().len()) - 1;
        assert_ne!(g.mask(), full, "fixture's best group does not cover all 5");
        let inflated = Group::new(g.members().to_vec(), full);
        let report = audit_results(&net, &query, &[inflated]);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::CoverageMismatch { .. })),
            "{report}"
        );
    }

    #[test]
    fn wrong_group_size_flagged() {
        let (net, query, groups) = solved(1);
        let g = &groups[0];
        let shrunk = Group::new(g.members()[..2].to_vec(), g.mask());
        let report = audit_results(&net, &query, &[shrunk]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::GroupSize { got: 2, .. } | Violation::CoverageMismatch { .. }
            )),
            "{report}"
        );
    }

    #[test]
    fn keywordless_member_flagged() {
        let net = fixtures::figure1();
        // Query on SN only: u5 {GD} and u6 {ML} cover nothing. They sit
        // 2 hops apart (u5–u7–u6), so the pair is 1-tenuous and the only
        // violations must be the two unqualified members.
        let query = KtgQuery::new(net.query_keywords(["SN"]).unwrap(), 2, 1, 1).unwrap();
        let bogus = Group::new(vec![VertexId(5), VertexId(6)], 0);
        let report = audit_results(&net, &query, &[bogus]);
        let unqualified = report
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::MemberWithoutKeyword { .. }))
            .count();
        assert_eq!(unqualified, 2, "{report}");
        assert!(
            !report.violations.iter().any(|v| matches!(v, Violation::KLine { .. })),
            "{report}"
        );
    }

    #[test]
    fn out_of_range_member_flagged_without_panicking() {
        let (net, query, groups) = solved(1);
        let g = &groups[0];
        let mut members = g.members().to_vec();
        members[0] = VertexId::new(net.num_vertices() + 7);
        let corrupted = Group::new(members, g.mask());
        let report = audit_results(&net, &query, &[corrupted]);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MemberOutOfRange { .. })),
            "{report}"
        );
    }

    #[test]
    fn misordered_results_flagged() {
        let (net, query, groups) = solved(2);
        // {u1, u4, u5} is 1-tenuous with coverage 3 (SN, DQ, GD) —
        // strictly below the optimum's 4. Listing it *before* an optimal
        // group breaks the descending-coverage contract.
        let low = Group::new(vec![VertexId(1), VertexId(4), VertexId(5)], 0b10101);
        let sanity = audit_results(&net, &query, std::slice::from_ref(&low));
        assert!(sanity.is_ok(), "hand-built group must itself be valid: {sanity}");
        assert!(groups[0].coverage_count() > low.coverage_count());
        let report = audit_results(&net, &query, &[low, groups[0].clone()]);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::OrderingViolation { .. })),
            "{report}"
        );
    }

    #[test]
    fn too_many_groups_flagged() {
        let (net, query, groups) = solved(1);
        let doubled: Vec<Group> = vec![groups[0].clone(), groups[0].clone()];
        let report = audit_results(&net, &query, &doubled);
        assert!(
            report.violations.iter().any(|v| matches!(v, Violation::TooManyGroups { .. })),
            "{report}"
        );
    }

    #[test]
    fn dktg_panels_audit_clean_and_overlap_is_flagged() {
        let net = fixtures::figure1();
        let base = paper_query(&net, 2);
        let query = DktgQuery::new(base, 0.5).unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = dktg::solve(&net, &query, &oracle);
        let report = audit_dktg_results(&net, &query, &out.groups);
        assert!(report.is_ok(), "{report}");

        if out.groups.len() >= 2 {
            let overlapping = vec![out.groups[0].clone(), out.groups[0].clone()];
            let report = audit_dktg_results(&net, &query, &overlapping);
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::MembersNotDisjoint { .. })),
                "{report}"
            );
        }
    }

    #[test]
    fn checked_mode_is_on_in_debug_builds() {
        if cfg!(debug_assertions) {
            assert!(checked_mode_enabled());
        }
    }

    #[test]
    fn report_display_is_readable() {
        let (net, query, groups) = solved(1);
        let ok = audit_results(&net, &query, &groups);
        assert!(ok.to_string().starts_with("verified:"), "{ok}");
        let g = &groups[0];
        let inflated =
            Group::new(g.members().to_vec(), (1u64 << query.keywords().len()) - 1);
        let bad = audit_results(&net, &query, &[inflated]);
        assert!(bad.to_string().contains("violation(s):"), "{bad}");
    }
}

//! Candidate extraction.
//!
//! Both exact algorithms start by "removing the unqualified users whose
//! keywords do not contain at least one query keyword" (§IV-A). A
//! [`Candidate`] carries everything the search orderings need — the
//! vertex, its coverage mask over `W_Q`, and its degree (the VKC-DEG
//! tiebreak) — so the hot loop never touches the graph or keyword arenas.

use ktg_common::VertexId;
use ktg_graph::Adjacency;
use ktg_keywords::QueryMasks;

/// A qualified candidate member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The vertex.
    pub v: VertexId,
    /// Its coverage mask over the query keywords (never 0).
    pub mask: u64,
    /// Its degree in the social graph.
    pub degree: u32,
}

/// Collects the qualified candidates (mask ≠ 0) in vertex-id order into
/// `out`, clearing it first. Taking the vector by `&mut` (the
/// [`ktg_graph::BfsScratch`] idiom) lets the batched query executor
/// recycle one pooled allocation across every query a worker serves.
pub fn collect<A: Adjacency>(graph: &A, masks: &QueryMasks, out: &mut Vec<Candidate>) {
    out.clear();
    out.extend(masks.candidates().iter().map(|&v| {
        let mask = masks.mask(v);
        debug_assert!(mask != 0, "candidate {v} has an empty coverage mask");
        Candidate { v, mask, degree: graph.degree(v) as u32 }
    }));
}

/// [`collect`] into a freshly allocated vector — the convenience form for
/// one-shot callers.
pub fn collect_vec<A: Adjacency>(graph: &A, masks: &QueryMasks) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(masks.candidates().len());
    collect(graph, masks, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::CsrGraph;
    use ktg_keywords::{InvertedIndex, KeywordId, QueryKeywords, VertexKeywords};

    #[test]
    fn collect_skips_uncovered_vertices() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let vk = VertexKeywords::from_lists(&[
            vec![KeywordId(0)],
            vec![],
            vec![KeywordId(1)],
            vec![KeywordId(2)], // not queried
        ]);
        let idx = InvertedIndex::build(&vk, 3);
        let q = QueryKeywords::new([KeywordId(0), KeywordId(1)]).unwrap();
        let masks = q.compile(&idx, 4);
        let mut cands = vec![Candidate { v: VertexId(9), mask: 1, degree: 0 }];
        collect(&g, &masks, &mut cands);
        assert_eq!(cands, collect_vec(&g, &masks), "reused vector is cleared first");
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].v, VertexId(0));
        assert_eq!(cands[0].mask, 0b01);
        assert_eq!(cands[0].degree, 1);
        assert_eq!(cands[1].v, VertexId(2));
        assert_eq!(cands[1].degree, 2);
    }
}

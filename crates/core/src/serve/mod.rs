//! Batched query serving (the throughput layer; DESIGN.md §13).
//!
//! The algorithm modules answer one query at a time; a serving deployment
//! answers *streams* of them against one long-lived network, with edge
//! updates interleaved. This module adds the machinery that makes the
//! repeated case cheap without ever changing an answer:
//!
//! * [`workload`] — the line-oriented workload format (KTG/DKTG queries
//!   plus `insert`/`remove` edge updates) and its parser.
//! * [`cache`] — [`ResultCache`], the sharded, bounded, epoch-guarded
//!   whole-answer memo keyed on the canonical [`CacheKey`].
//! * [`executor`] — [`ServeSession`], which replays workloads with
//!   worker fan-out, pooled per-worker scratch arenas, the result cache,
//!   and cross-query `(vertex, k)` conflict-row reuse through
//!   [`ktg_index::NeighborhoodCache`].
//!
//! The contract throughout: every outcome is byte-identical to a fresh
//! sequential solve against the session's current graph. Caches
//! accelerate, they never approximate.
//!
//! ```
//! use ktg_core::serve::{parse_workload, ServeOptions, ServeSession, ItemOutcome};
//!
//! let net = ktg_core::fixtures::figure1();
//! let workload = parse_workload(
//!     "ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2\n\
//!      ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2\n",
//!     &net,
//! )
//! .unwrap();
//! let mut session = ServeSession::new(net, ServeOptions::default());
//! let outcomes = session.run(&workload);
//! let ItemOutcome::Ktg(repeat) = &outcomes[1] else { unreachable!() };
//! assert!(repeat.cached, "the second identical query is a cache hit");
//! assert_eq!(repeat.groups[0].coverage_count(), 4);
//! ```

use crate::bb::BbOptions;

pub mod cache;
pub mod executor;
pub mod workload;

pub use cache::{CacheKey, CachePolicy, ResultCache};
pub use executor::{
    DktgAnswer, ItemOutcome, KtgAnswer, OracleKind, ServeOracle, ServeSession, ServeStats,
};
pub use workload::{parse_request_line, parse_workload, WorkloadItem};

/// Configuration for a [`ServeSession`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads fanned out across consecutive queries: `0` asks
    /// [`ktg_common::parallel::worker_count`] (honoring `KTG_THREADS`),
    /// `1` serves sequentially. Individual solves always run
    /// single-threaded — parallelism lives at the workload level.
    pub threads: usize,
    /// Master switch for both the result cache and the conflict-row
    /// memo. Off, every query is a fresh solve (the baseline the `qps`
    /// bench compares against).
    pub use_cache: bool,
    /// Capacity (in entries) of the result cache and of the conflict-row
    /// memo. Ignored when `use_cache` is off.
    pub cache_entries: usize,
    /// Result-cache eviction/admission policy (answers are byte-identical
    /// under every policy; only hit rates differ).
    pub cache_policy: CachePolicy,
    /// Keyword-subset reuse: on a result-cache miss, probe for a cached
    /// same-parameter superset query `W' ⊇ W_Q` and seed the solver's
    /// initial `TopN` floor from its re-projected coverage counts.
    /// Sound — the floor only tightens pruning, never changes the top-N
    /// (DESIGN.md §17) — and ignored when `use_cache` is off.
    pub subset_reuse: bool,
    /// Which distance oracle backs conflict-row construction. NLRNL (the
    /// default) maintains incrementally under edge updates; PLL answers
    /// by label merge and rebuilds (in parallel) on update.
    pub oracle: executor::OracleKind,
    /// Inner engine configuration. The `threads` field is overridden to
    /// `1` per solve; the result-affecting fields (ordering, pruning
    /// toggles, bitmap threshold) are folded into every cache key.
    pub engine: BbOptions,
    /// Admission bound: at most this many *query* items are solved per
    /// [`ServeSession::run`] call; the excess is shed unsolved as
    /// [`ItemOutcome::Overloaded`] (edge updates always apply — dropping
    /// them would silently fork the graph state). `0` means unbounded.
    pub max_inflight: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 0,
            use_cache: true,
            cache_entries: 4096,
            cache_policy: CachePolicy::default(),
            subset_reuse: true,
            oracle: executor::OracleKind::Nlrnl,
            engine: BbOptions::vkc_deg(),
            max_inflight: 0,
        }
    }
}

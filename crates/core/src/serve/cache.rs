//! The epoch-guarded result cache.
//!
//! Served workloads repeat themselves: popular keyword combinations come
//! back query after query (the Zipf-shaped access pattern every
//! query-serving system sees). [`ResultCache`] memoizes whole answers
//! keyed on the *canonicalized* query — sorted keyword ids plus every
//! engine option that can change the result — so a repeat costs one hash
//! lookup and a clone instead of a branch-and-bound search.
//!
//! Three properties keep it safe to put in front of an exact algorithm:
//!
//! * **Canonical keys.** [`CacheKey`] sorts the keyword ids (the engine
//!   itself is insensitive to `W_Q` order) and folds in `p`, `k`, `N`,
//!   `γ`, the member ordering, both pruning toggles, and the bitmap
//!   threshold. Worker-thread counts are deliberately *excluded*: results
//!   are byte-identical across thread counts, so including them would
//!   only split the hit rate. Deadlines are excluded for the same reason:
//!   the executor only ever inserts `Exact` answers, and an exact answer
//!   is independent of whatever deadline failed to fire.
//! * **Epoch guard.** Every entry is stamped with the graph epoch it was
//!   computed at. The executor bumps its epoch on each applied edge
//!   update, and only an entry whose stamp equals the lookup epoch can
//!   hit — a post-update query can never observe a pre-update answer.
//!   Stale entries are reclaimed lazily: a lookup that lands on one
//!   removes it, and an over-capacity insert purges the shard's dead
//!   generation *before* evicting any live entry (a long-lived serving
//!   session with edge churn must not let unreachable entries squeeze
//!   out reachable ones). [`ResultCache::reclaimed`] counts them.
//! * **Bounded shards.** Entries live in a fixed stripe array (hashed by
//!   key) with per-shard eviction under a selectable [`CachePolicy`], so
//!   concurrent workers do not serialize on one lock and a long-running
//!   session cannot grow without limit.
//!
//! ## Eviction policy
//!
//! [`CachePolicy::Fifo`] is the original insertion-order baseline.
//! [`CachePolicy::Cost`] (the default) is workload-aware: every entry
//! records the solve nanos that produced it and the shard-local logical
//! tick of its last hit, eviction removes the minimum *benefit score* —
//! solve cost halved once per [`HALF_LIFE`] ticks of disuse, insertion
//! sequence as the total-order tie break — and admission rejects a new
//! entry whose cost is below the would-be victim's score (caching a
//! cheap answer by evicting an expensive hot one is a net loss). Clocks
//! are purely logical (per-shard access counters, never wall time, per
//! lint L4): the retained set is a pure function of the access sequence,
//! and since cached answers equal freshly solved ones, *answers* are
//! byte-identical under every policy — only hit rates differ.
//!
//! ## Keyword-subset reuse
//!
//! A side index keyed by [`ParamSig`] (everything of a key *except* the
//! keywords) remembers which keyword sets are resident per parameter
//! combination. [`ResultCache::get_superset`] probes it for a cached
//! answer to a superset query `W' ⊇ W`: the caller re-projects that
//! answer's coverage masks onto `W` and uses the projected coverage
//! counts to seed the branch-and-bound `TopN` floor (see
//! `serve::executor`). Returning a superset answer *verbatim* would be
//! unsound — the top-N groups under `W` can differ from the re-projected
//! top-N under `W'` even at full coverage (smaller-member groups that
//! `W'` ranked below its own top-N may outrank them under `W`) — so the
//! probe only ever tightens the initial bound, which provably preserves
//! the result (DESIGN.md §17).

use ktg_common::{FxHashMap, FxHasher64};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::bb::{BbOptions, MemberOrdering};
use crate::dktg::DktgQuery;
use crate::query::KtgQuery;

/// Number of cache stripes (see [`ktg_index::NeighborhoodCache`] for the
/// same sizing argument: a small power of two keeps the pick cheap while
/// letting a handful of workers proceed in parallel).
const CACHE_SHARDS: usize = 16;

/// Recency half-life in shard ticks: an entry's benefit score halves for
/// every `HALF_LIFE` shard accesses since its last hit.
const HALF_LIFE: u64 = 64;

/// Keyword sets remembered per parameter signature in the subset-reuse
/// side index. A small bound: the index is a best-effort seed source,
/// not a second cache.
const SUBSET_INDEX_WIDTH: usize = 32;

/// Benefit of keeping an entry: what recomputing it would cost, decayed
/// by how long it has gone unreferenced.
fn benefit_score(cost: u64, age: u64) -> u64 {
    cost >> (age / HALF_LIFE).min(63)
}

/// Eviction/admission policy for [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Insertion-order eviction, admit-everything — the original
    /// baseline, kept selectable for differential testing and as the
    /// `qps` comparison point.
    Fifo,
    /// Benefit-score eviction (recorded solve cost × recency decay) with
    /// a cost-admission floor.
    #[default]
    Cost,
}

/// A canonicalized query identity: two queries with the same key are
/// guaranteed the same answer (at the same graph epoch).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// 0 = KTG, 1 = DKTG — keeps the two query families from colliding.
    kind: u8,
    /// Query keyword ids, sorted ascending (`W_Q` is a set).
    keywords: Vec<u32>,
    p: usize,
    k: u32,
    n: usize,
    /// `γ.to_bits()` for DKTG, 0 for KTG.
    gamma_bits: u64,
    ordering: u8,
    keyword_pruning: bool,
    kline_filtering: bool,
    bitmap_threshold: usize,
}

fn ordering_tag(ordering: MemberOrdering) -> u8 {
    match ordering {
        MemberOrdering::Qkc => 0,
        MemberOrdering::Vkc => 1,
        MemberOrdering::VkcDeg => 2,
        MemberOrdering::VkcDegDesc => 3,
    }
}

fn sorted_ids(query: &KtgQuery) -> Vec<u32> {
    let mut ids: Vec<u32> = query.keywords().ids().iter().map(|id| id.0).collect();
    ids.sort_unstable();
    ids
}

impl CacheKey {
    /// Canonical key for a KTG query under the given engine options.
    pub fn ktg(query: &KtgQuery, opts: &BbOptions) -> Self {
        CacheKey {
            kind: 0,
            keywords: sorted_ids(query),
            p: query.p(),
            k: query.k(),
            n: query.n(),
            gamma_bits: 0,
            ordering: ordering_tag(opts.ordering),
            keyword_pruning: opts.keyword_pruning,
            kline_filtering: opts.kline_filtering,
            bitmap_threshold: opts.bitmap_threshold,
        }
    }

    /// Canonical key for a DKTG query under the given inner-engine
    /// options.
    pub fn dktg(query: &DktgQuery, opts: &BbOptions) -> Self {
        CacheKey {
            kind: 1,
            gamma_bits: query.gamma().to_bits(),
            ..CacheKey::ktg(query.base(), opts)
        }
    }

    fn shard_index(&self) -> usize {
        let mut h = FxHasher64::default();
        self.hash(&mut h);
        (h.finish() >> 56) as usize % CACHE_SHARDS
    }

    /// The key's identity minus its keyword set — the subset-reuse
    /// side-index bucket it belongs to.
    fn param_sig(&self) -> ParamSig {
        ParamSig {
            kind: self.kind,
            p: self.p,
            k: self.k,
            n: self.n,
            gamma_bits: self.gamma_bits,
            ordering: self.ordering,
            keyword_pruning: self.keyword_pruning,
            kline_filtering: self.kline_filtering,
            bitmap_threshold: self.bitmap_threshold,
        }
    }

    /// The same query identity over a different keyword set.
    fn with_keywords(&self, keywords: Vec<u32>) -> CacheKey {
        CacheKey { keywords, ..self.clone() }
    }

    /// Sorted keyword ids this key canonicalizes.
    pub(crate) fn keywords(&self) -> &[u32] {
        &self.keywords
    }
}

/// Everything of a [`CacheKey`] except the keywords. Stored as the full
/// field set — never a hash — so distinct parameter combinations can
/// never alias a side-index bucket (an aliased bucket would seed floors
/// from answers to *different* queries, which is unsound).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ParamSig {
    kind: u8,
    p: usize,
    k: u32,
    n: usize,
    gamma_bits: u64,
    ordering: u8,
    keyword_pruning: bool,
    kline_filtering: bool,
    bitmap_threshold: usize,
}

/// A resident answer with the graph epoch it was computed at plus the
/// bookkeeping the cost policy scores by.
struct Entry<V> {
    epoch: u64,
    value: V,
    /// Recorded solve cost (nanoseconds; 1 for inserts with no recording).
    cost: u64,
    /// Shard tick of the last hit or insert.
    last_touch: u64,
    /// Insertion sequence, unique per shard — eviction's total-order tie
    /// break, so the `(score, seq)` minimum is always a single entry.
    seq: u64,
}

struct CacheShard<V> {
    /// Newest epoch this shard has observed (monotone). Entries stamped
    /// below it are dead weight awaiting reclamation; inserts stamped
    /// below it are discarded outright.
    latest: u64,
    map: FxHashMap<CacheKey, Entry<V>>,
    /// Insertion order for FIFO eviction, with the epoch each record was
    /// pushed at. Records are deleted lazily: a popped record only evicts
    /// when the resident entry still carries the same stamp (an entry
    /// re-inserted at a newer epoch leaves its old record dangling).
    /// Unused (empty) under [`CachePolicy::Cost`].
    fifo: VecDeque<(CacheKey, u64)>,
    /// Records in `fifo` whose entry no longer matches. When they exceed
    /// the live entries the queue is compacted — without this, same-key
    /// overwrite churn grows `fifo` without bound.
    dangling: usize,
    /// Logical access clock: bumped once per lookup or insert.
    tick: u64,
    /// Insertion counter feeding [`Entry::seq`].
    seq: u64,
}

/// A bounded, sharded, epoch-guarded memo of whole query answers.
pub struct ResultCache<V> {
    shards: Vec<Mutex<CacheShard<V>>>,
    per_shard_capacity: usize,
    policy: CachePolicy,
    /// Keyword sets resident per parameter signature, for superset
    /// probes. Best-effort: bounded per bucket, entries may outlive the
    /// answers they point at (a probe just misses then).
    subsets: Mutex<FxHashMap<ParamSig, Vec<Vec<u32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    reclaimed: AtomicU64,
    compactions: AtomicU64,
    subset_hits: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// Creates a cache holding at most `capacity` answers in total
    /// (rounded up to a multiple of the stripe count; a zero capacity
    /// still admits one answer per stripe), under the default
    /// [`CachePolicy::Cost`].
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, CachePolicy::default())
    }

    /// [`new`](Self::new) with an explicit eviction/admission policy.
    pub fn with_policy(capacity: usize, policy: CachePolicy) -> Self {
        ResultCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        latest: 0,
                        map: FxHashMap::default(),
                        fifo: VecDeque::new(),
                        dangling: 0,
                        tick: 0,
                        seq: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            policy,
            subsets: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            subset_hits: AtomicU64::new(0),
        }
    }

    /// The eviction/admission policy this cache runs.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a fresh solve so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Stale-epoch entries reclaimed so far — lazily on lookup, or in
    /// bulk when an over-capacity insert purges a shard's dead
    /// generation before evicting anything live.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Lazy-deletion record-queue compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Successful superset probes ([`get_superset`](Self::get_superset))
    /// so far.
    pub fn subset_hits(&self) -> u64 {
        self.subset_hits.load(Ordering::Relaxed)
    }

    /// Cached answers currently resident (all shards, stale included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).map.len()).sum()
    }

    /// Whether the cache currently holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lazy-deletion records resident across shards (live +
    /// dangling) — test instrumentation for the compaction bound.
    #[cfg(test)]
    fn record_count(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).fifo.len()).sum()
    }

    fn lock<'a>(&self, shard: &'a Mutex<CacheShard<V>>) -> MutexGuard<'a, CacheShard<V>> {
        // Entries are inserted whole under the lock, so a panicking
        // borrower cannot leave a shard half-written: recover the lock.
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the cached answer for `key` computed at `epoch`, if any.
    ///
    /// Only an entry stamped with exactly `epoch` can hit. A lookup that
    /// lands on a stale entry removes it on the spot (counted by
    /// [`ResultCache::reclaimed`]) and reports a miss. The caller must
    /// pass a monotonically nondecreasing epoch for a given graph state
    /// (the executor's update path guarantees this: mutation takes
    /// `&mut self`, so no lookup can race an epoch bump).
    pub fn get(&self, key: &CacheKey, epoch: u64) -> Option<V> {
        // Fault-injection site, fired *before* the shard lock is taken so
        // an injected panic can never poison (or skew) shard state — a
        // retried lookup sees the cache exactly as the first attempt did.
        ktg_common::fault::inject(ktg_common::fault::FaultSite::CacheLookup);
        let mut shard = self.lock(&self.shards[key.shard_index()]);
        shard.latest = shard.latest.max(epoch);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_touch = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            Some(_) => {
                // Dead on arrival: the entry predates the current graph.
                // Its FIFO record is left dangling (lazy deletion).
                shard.map.remove(key);
                if self.policy == CachePolicy::Fifo {
                    shard.dangling += 1;
                    self.maybe_compact(&mut shard);
                }
                self.reclaimed.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Compacts the lazy-deletion record queue once dangling records
    /// outnumber live entries, so same-key overwrite churn (or stale
    /// reclamation) cannot grow it without bound. Amortized O(1): each
    /// compaction touches at most 2× the live entries and halves-or-more
    /// the queue.
    fn maybe_compact(&self, shard: &mut CacheShard<V>) {
        if shard.dangling > shard.map.len() {
            let CacheShard { map, fifo, .. } = &mut *shard;
            fifo.retain(|(k, e)| map.get(k).is_some_and(|entry| entry.epoch == *e));
            shard.dangling = 0;
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stores `value` as the answer for `key` at `epoch`, with no
    /// recorded solve cost (scored as cost 1 under the cost policy).
    pub fn insert(&self, key: CacheKey, epoch: u64, value: V) {
        self.insert_with_cost(key, epoch, value, 1);
    }

    /// Stores `value` as the answer for `key` at `epoch`, recording the
    /// solve nanos that produced it. An insert stamped older than the
    /// newest epoch the shard has seen is discarded (the answer is
    /// already stale).
    ///
    /// When the shard is at capacity, entries from dead generations are
    /// purged **first** — evicting a live entry while unreachable stale
    /// ones still occupy the shard would collapse the hit rate under
    /// edge-update churn. Only if the shard is still full after the
    /// purge does the policy run: FIFO evicts the oldest live entry;
    /// the cost policy evicts the minimum-benefit entry *unless* the
    /// incoming answer is cheaper than that entry's current score, in
    /// which case the insert itself is rejected (admission floor).
    pub fn insert_with_cost(&self, key: CacheKey, epoch: u64, value: V, cost_ns: u64) {
        let cost = cost_ns.max(1);
        let mut shard = self.lock(&self.shards[key.shard_index()]);
        if epoch < shard.latest {
            return;
        }
        shard.latest = epoch;
        shard.tick += 1;

        // Make room for a *new* key while the shard is full.
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            let latest = shard.latest;
            let before = shard.map.len();
            shard.map.retain(|_, entry| entry.epoch == latest);
            let dead = before - shard.map.len();
            if dead > 0 {
                self.reclaimed.fetch_add(dead as u64, Ordering::Relaxed);
                let CacheShard { map, fifo, .. } = &mut *shard;
                fifo.retain(|(k, e)| map.get(k).is_some_and(|entry| entry.epoch == *e));
                shard.dangling = 0;
            }
            if shard.map.len() >= self.per_shard_capacity {
                match self.policy {
                    CachePolicy::Fifo => {
                        while let Some((oldest, stamp)) = shard.fifo.pop_front() {
                            if shard.map.get(&oldest).is_some_and(|e| e.epoch == stamp) {
                                shard.map.remove(&oldest);
                                break;
                            }
                            shard.dangling = shard.dangling.saturating_sub(1);
                        }
                    }
                    CachePolicy::Cost => {
                        let tick = shard.tick;
                        // `seq` is unique per shard, so the `(score, seq)`
                        // minimum is one entry regardless of map iteration
                        // order — eviction stays deterministic. An empty
                        // shard needs no eviction at all.
                        let weakest = shard
                            .map
                            .iter()
                            .map(|(k, e)| {
                                (
                                    (
                                        benefit_score(
                                            e.cost,
                                            tick.saturating_sub(e.last_touch),
                                        ),
                                        e.seq,
                                    ),
                                    k.clone(),
                                )
                            })
                            .min_by_key(|(rank, _)| *rank);
                        if let Some(((floor, _), victim)) = weakest {
                            if cost < floor {
                                // Admission floor: the incoming answer is
                                // cheaper to recompute than the benefit
                                // of the entry it would displace.
                                return;
                            }
                            shard.map.remove(&victim);
                        }
                    }
                }
            }
        }

        shard.seq += 1;
        let (tick, seq) = (shard.tick, shard.seq);
        let previous =
            shard.map.insert(key.clone(), Entry { epoch, value, cost, last_touch: tick, seq });
        if self.policy == CachePolicy::Fifo {
            let stamp_changed = match &previous {
                Some(old) => old.epoch != epoch,
                None => true,
            };
            if stamp_changed {
                // A same-epoch overwrite keeps its original FIFO
                // position; everything else needs a fresh record (the
                // old one, if any, now dangles and is skipped at pop
                // time).
                if previous.is_some() {
                    shard.dangling += 1;
                }
                shard.fifo.push_back((key.clone(), epoch));
                self.maybe_compact(&mut shard);
            }
        }
        drop(shard);

        // Remember the keyword set for superset probes (bounded FIFO per
        // parameter bucket; see `get_superset`).
        let sig = key.param_sig();
        let mut subsets = match self.subsets.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let bucket = subsets.entry(sig).or_default();
        if !bucket.iter().any(|ws| ws == key.keywords()) {
            bucket.push(key.keywords().to_vec());
            if bucket.len() > SUBSET_INDEX_WIDTH {
                bucket.remove(0);
            }
        }
    }

    /// Probes for a resident answer to a *strict-superset* query: same
    /// parameters, keyword set `W' ⊃ W`, same epoch. Returns the
    /// superset's sorted keyword ids and its cached answer. Counters are
    /// untouched except [`subset_hits`](Self::subset_hits) on success —
    /// a failed probe is not a "miss", and the probe must not perturb
    /// the fault-injection or hit-rate accounting of the primary path.
    pub fn get_superset(&self, key: &CacheKey, epoch: u64) -> Option<(Vec<u32>, V)> {
        let candidates: Vec<Vec<u32>> = {
            let subsets = match self.subsets.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let bucket = subsets.get(&key.param_sig())?;
            bucket
                .iter()
                .filter(|ws| {
                    ws.len() > key.keywords().len() && is_subset(key.keywords(), ws)
                })
                .cloned()
                .collect()
        };
        for ws in candidates {
            let skey = key.with_keywords(ws);
            let shard = self.lock(&self.shards[skey.shard_index()]);
            if let Some(entry) = shard.map.get(&skey) {
                if entry.epoch == epoch {
                    let value = entry.value.clone();
                    drop(shard);
                    self.subset_hits.fetch_add(1, Ordering::Relaxed);
                    let CacheKey { keywords, .. } = skey;
                    return Some((keywords, value));
                }
            }
        }
        None
    }
}

/// Is sorted `a` a subset of sorted `b`?
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.by_ref().any(|y| y == x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn paper_key(net: &crate::network::AttributedGraph, terms: [&str; 5]) -> CacheKey {
        let query =
            KtgQuery::new(net.query_keywords(terms).unwrap(), 3, 1, 2).unwrap();
        CacheKey::ktg(&query, &BbOptions::vkc_deg())
    }

    /// A family of distinct keys (varying `p`) for filling shards.
    fn key_with_p(net: &crate::network::AttributedGraph, p: usize) -> CacheKey {
        let query =
            KtgQuery::new(net.query_keywords(["SN", "QP"]).unwrap(), p, 1, 1).unwrap();
        CacheKey::ktg(&query, &BbOptions::vkc_deg())
    }

    #[test]
    fn keyword_order_is_canonicalized() {
        let net = fixtures::figure1();
        let a = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let b = paper_key(&net, ["GD", "GQ", "DQ", "QP", "SN"]);
        assert_eq!(a, b, "W_Q is a set; permutations must share one entry");
    }

    #[test]
    fn options_that_change_results_split_keys() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let base = CacheKey::ktg(&query, &BbOptions::vkc_deg());
        assert_ne!(base, CacheKey::ktg(&query, &BbOptions::qkc()));
        assert_ne!(
            base,
            CacheKey::ktg(
                &query,
                &BbOptions { keyword_pruning: false, ..BbOptions::vkc_deg() }
            )
        );
        // Thread count is result-invariant and must NOT split the key.
        assert_eq!(base, CacheKey::ktg(&query, &BbOptions::vkc_deg().with_threads(8)));
        // DKTG with the same base query must not collide with KTG.
        let dq = DktgQuery::new(query.clone(), 0.5).unwrap();
        assert_ne!(base, CacheKey::dktg(&dq, &BbOptions::vkc_deg()));
        let dq2 = DktgQuery::new(query, 0.7).unwrap();
        assert_ne!(
            CacheKey::dktg(&dq2, &BbOptions::vkc_deg()),
            CacheKey::dktg(&DktgQuery::new(dq2.base().clone(), 0.5).unwrap(), &BbOptions::vkc_deg()),
            "gamma is part of the DKTG identity"
        );
    }

    #[test]
    fn get_insert_roundtrip_counts_hits() {
        let net = fixtures::figure1();
        let key = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let cache: ResultCache<u32> = ResultCache::new(64);
        assert_eq!(cache.get(&key, 1), None);
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 1), Some(42));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.reclaimed(), 0);
    }

    #[test]
    fn epoch_change_invalidates() {
        let net = fixtures::figure1();
        let key = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let cache: ResultCache<u32> = ResultCache::new(64);
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 2), None, "post-update lookups must miss");
        assert_eq!(cache.reclaimed(), 1, "the stale entry is reclaimed on touch");
        // A stale insert (computed before the bump) must be discarded.
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 2), None);
        cache.insert(key.clone(), 2, 43);
        assert_eq!(cache.get(&key, 2), Some(43));
    }

    #[test]
    fn capacity_is_bounded() {
        let net = fixtures::figure1();
        let cache: ResultCache<usize> = ResultCache::new(16);
        for p in 1..200usize {
            cache.insert(key_with_p(&net, p), 1, p);
        }
        assert!(cache.len() <= 16, "resident {} exceeds capacity", cache.len());
    }

    /// Regression for the epoch-churn eviction bug: an over-capacity
    /// insert must purge the shard's stale (dead-epoch) entries before
    /// evicting anything live. Without the purge, entries computed
    /// before an edge update sit unreachable in the FIFO and squeeze
    /// out the very answers the current epoch can still hit.
    #[test]
    fn stale_generations_are_purged_before_live_eviction() {
        let net = fixtures::figure1();
        // Capacity 16 ⇒ one entry per shard: any shard already holding
        // an epoch-1 entry overflows on its first epoch-2 insert.
        let cache: ResultCache<usize> = ResultCache::new(16);
        for p in 1..33usize {
            cache.insert(key_with_p(&net, p), 1, p);
        }
        let resident_before = cache.len();
        assert!(resident_before > 0);
        // Edge-update churn: a new generation arrives without any lookup
        // having touched the old one.
        for p in 101..133usize {
            cache.insert(key_with_p(&net, p), 2, p);
        }
        assert!(
            cache.reclaimed() > 0,
            "over-capacity inserts must reclaim the dead generation"
        );
        // The newest entry of the new generation is never the eviction
        // victim: stale entries go first, then FIFO order among live ones.
        assert_eq!(cache.get(&key_with_p(&net, 132), 2), Some(132));
        assert!(cache.len() <= 16, "resident {} exceeds capacity", cache.len());
        // Every surviving entry is from the live generation.
        for p in 1..33usize {
            let dead_hit = {
                let before = cache.hits();
                cache.get(&key_with_p(&net, p), 2);
                cache.hits() != before
            };
            assert!(!dead_hit, "stale entry for p={p} survived the purge and hit");
        }
    }

    /// A same-epoch overwrite (two workers racing the same miss) must
    /// not duplicate FIFO records — otherwise the duplicate record
    /// evicts the entry ahead of its turn.
    #[test]
    fn same_epoch_overwrite_keeps_one_fifo_record() {
        let net = fixtures::figure1();
        let cache: ResultCache<usize> = ResultCache::with_policy(16, CachePolicy::Fifo);
        let key = key_with_p(&net, 1);
        cache.insert(key.clone(), 1, 10);
        cache.insert(key.clone(), 1, 11);
        // Fill the shard far past capacity with distinct keys; the
        // overwritten key is evicted exactly once, and the cache stays
        // consistent (no phantom entries, bound respected).
        for p in 2..40usize {
            cache.insert(key_with_p(&net, p), 1, p);
        }
        assert!(cache.len() <= 16);
    }

    /// Regression: cross-epoch overwrites of the *same* key leave one
    /// dangling record each; without compaction the queue grows without
    /// bound (live entries stay constant at one).
    #[test]
    fn fifo_dangling_records_are_compacted() {
        let net = fixtures::figure1();
        let cache: ResultCache<usize> = ResultCache::with_policy(16, CachePolicy::Fifo);
        let key = key_with_p(&net, 1);
        for epoch in 1..500u64 {
            cache.insert(key.clone(), epoch, 0);
        }
        assert!(cache.compactions() > 0, "overwrite churn must trigger compactions");
        assert!(
            cache.record_count() <= 2 * cache.len() + CACHE_SHARDS,
            "record queue stays proportional to live entries, got {} records for {} entries",
            cache.record_count(),
            cache.len()
        );
    }

    /// Groups `p`-parameterized keys by the shard they hash to, so tests
    /// can co-locate keys in one stripe.
    fn shard_groups(net: &crate::network::AttributedGraph) -> Vec<Vec<CacheKey>> {
        let mut groups: Vec<Vec<CacheKey>> = (0..CACHE_SHARDS).map(|_| Vec::new()).collect();
        for p in 1..200usize {
            let key = key_with_p(net, p);
            groups[key.shard_index()].push(key);
        }
        groups
    }

    /// The cost policy evicts the minimum `(benefit score, seq)` entry
    /// and rejects inserts cheaper than that floor — deterministically.
    #[test]
    fn cost_eviction_order_is_deterministic() {
        let net = fixtures::figure1();
        let groups = shard_groups(&net);
        let keys = groups.iter().find(|g| g.len() >= 6).expect("a stripe with 6 keys");
        // Two independent instances replaying the same access sequence
        // must retain the same set.
        for _ in 0..2 {
            // Capacity 64 → 4 entries per stripe.
            let cache: ResultCache<usize> = ResultCache::with_policy(64, CachePolicy::Cost);
            let costs = [100u64, 10, 1000, 50];
            for (i, cost) in costs.iter().enumerate() {
                cache.insert_with_cost(keys[i].clone(), 1, i, *cost);
            }
            // Fifth key: the victim is the cheapest resident (cost 10).
            cache.insert_with_cost(keys[4].clone(), 1, 4, 500);
            assert_eq!(cache.get(&keys[1], 1), None, "cheapest entry evicted");
            for i in [0usize, 2, 3, 4] {
                assert_eq!(cache.get(&keys[i], 1), Some(i), "survivor {i}");
            }
            // Admission floor: cheaper than the current minimum benefit
            // (cost 50) ⇒ rejected outright, residents untouched.
            cache.insert_with_cost(keys[5].clone(), 1, 5, 5);
            assert_eq!(cache.get(&keys[5], 1), None, "below-floor insert rejected");
            for i in [0usize, 2, 3, 4] {
                assert_eq!(cache.get(&keys[i], 1), Some(i), "survivor {i} after rejection");
            }
        }
    }

    /// Recency decay: an expensive entry nobody hits eventually scores
    /// below a cheap one that stays hot, and becomes the victim.
    #[test]
    fn cost_eviction_decays_unused_entries() {
        let net = fixtures::figure1();
        let groups = shard_groups(&net);
        let keys = groups.iter().find(|g| g.len() >= 6).expect("a stripe with 6 keys");
        let cache: ResultCache<usize> = ResultCache::with_policy(64, CachePolicy::Cost);
        cache.insert_with_cost(keys[0].clone(), 1, 0, 1_000_000); // expensive, then cold
        for (i, key) in keys.iter().enumerate().take(4).skip(1) {
            cache.insert_with_cost(key.clone(), 1, i, 10);
        }
        // ~30 half-lives of hits on the cheap entries: the cold entry's
        // score decays to zero while the hot ones stay at full cost.
        for _ in 0..(30 * HALF_LIFE) {
            assert_eq!(cache.get(&keys[1], 1), Some(1));
        }
        cache.insert_with_cost(keys[4].clone(), 1, 4, 10);
        assert_eq!(cache.get(&keys[0], 1), None, "decayed expensive entry evicted");
        for (i, key) in keys.iter().enumerate().take(5).skip(1) {
            assert_eq!(cache.get(key, 1), Some(i), "hot survivor {i}");
        }
    }

    fn key_with_terms(
        net: &crate::network::AttributedGraph,
        terms: &[&str],
        p: usize,
    ) -> CacheKey {
        let kws = net.query_keywords(terms.iter().copied()).unwrap();
        let query = KtgQuery::new(kws, p, 1, 2).unwrap();
        CacheKey::ktg(&query, &BbOptions::vkc_deg())
    }

    #[test]
    fn superset_probe_finds_strict_same_param_supersets_only() {
        let net = fixtures::figure1();
        let sub = key_with_terms(&net, &["SN", "QP"], 3);
        let sup = key_with_terms(&net, &["SN", "QP", "DQ"], 3);
        let cache: ResultCache<usize> = ResultCache::new(64);
        cache.insert_with_cost(sup.clone(), 1, 7, 100);
        assert!(cache.get_superset(&sup, 1).is_none(), "no self-match: strict supersets only");
        let (ws, v) = cache.get_superset(&sub, 1).expect("superset answer is resident");
        assert_eq!(v, 7);
        assert_eq!(ws, sup.keywords().to_vec());
        assert!(cache.get_superset(&sub, 2).is_none(), "stale epochs never seed");
        let other_p = key_with_terms(&net, &["SN", "QP"], 4);
        assert!(
            cache.get_superset(&other_p, 1).is_none(),
            "parameter signatures must not alias"
        );
        assert_eq!(cache.subset_hits(), 1);
        assert_eq!(cache.misses(), 0, "probes never skew the primary hit accounting");
    }
}

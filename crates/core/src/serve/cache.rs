//! The epoch-guarded result cache.
//!
//! Served workloads repeat themselves: popular keyword combinations come
//! back query after query (the Zipf-shaped access pattern every
//! query-serving system sees). [`ResultCache`] memoizes whole answers
//! keyed on the *canonicalized* query — sorted keyword ids plus every
//! engine option that can change the result — so a repeat costs one hash
//! lookup and a clone instead of a branch-and-bound search.
//!
//! Three properties keep it safe to put in front of an exact algorithm:
//!
//! * **Canonical keys.** [`CacheKey`] sorts the keyword ids (the engine
//!   itself is insensitive to `W_Q` order) and folds in `p`, `k`, `N`,
//!   `γ`, the member ordering, both pruning toggles, and the bitmap
//!   threshold. Worker-thread counts are deliberately *excluded*: results
//!   are byte-identical across thread counts, so including them would
//!   only split the hit rate. Deadlines are excluded for the same reason:
//!   the executor only ever inserts `Exact` answers, and an exact answer
//!   is independent of whatever deadline failed to fire.
//! * **Epoch guard.** Every entry is stamped with the graph epoch it was
//!   computed at. The executor bumps its epoch on each applied edge
//!   update, and only an entry whose stamp equals the lookup epoch can
//!   hit — a post-update query can never observe a pre-update answer.
//!   Stale entries are reclaimed lazily: a lookup that lands on one
//!   removes it, and an over-capacity insert purges the shard's dead
//!   generation *before* evicting any live entry (a long-lived serving
//!   session with edge churn must not let unreachable entries squeeze
//!   out reachable ones). [`ResultCache::reclaimed`] counts them.
//! * **Bounded shards.** Entries live in a fixed stripe array (hashed by
//!   key) with per-shard FIFO eviction, so concurrent workers do not
//!   serialize on one lock and a long-running session cannot grow without
//!   limit.

use ktg_common::{FxHashMap, FxHasher64};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::bb::{BbOptions, MemberOrdering};
use crate::dktg::DktgQuery;
use crate::query::KtgQuery;

/// Number of cache stripes (see [`ktg_index::NeighborhoodCache`] for the
/// same sizing argument: a small power of two keeps the pick cheap while
/// letting a handful of workers proceed in parallel).
const CACHE_SHARDS: usize = 16;

/// A canonicalized query identity: two queries with the same key are
/// guaranteed the same answer (at the same graph epoch).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// 0 = KTG, 1 = DKTG — keeps the two query families from colliding.
    kind: u8,
    /// Query keyword ids, sorted ascending (`W_Q` is a set).
    keywords: Vec<u32>,
    p: usize,
    k: u32,
    n: usize,
    /// `γ.to_bits()` for DKTG, 0 for KTG.
    gamma_bits: u64,
    ordering: u8,
    keyword_pruning: bool,
    kline_filtering: bool,
    bitmap_threshold: usize,
}

fn ordering_tag(ordering: MemberOrdering) -> u8 {
    match ordering {
        MemberOrdering::Qkc => 0,
        MemberOrdering::Vkc => 1,
        MemberOrdering::VkcDeg => 2,
        MemberOrdering::VkcDegDesc => 3,
    }
}

fn sorted_ids(query: &KtgQuery) -> Vec<u32> {
    let mut ids: Vec<u32> = query.keywords().ids().iter().map(|id| id.0).collect();
    ids.sort_unstable();
    ids
}

impl CacheKey {
    /// Canonical key for a KTG query under the given engine options.
    pub fn ktg(query: &KtgQuery, opts: &BbOptions) -> Self {
        CacheKey {
            kind: 0,
            keywords: sorted_ids(query),
            p: query.p(),
            k: query.k(),
            n: query.n(),
            gamma_bits: 0,
            ordering: ordering_tag(opts.ordering),
            keyword_pruning: opts.keyword_pruning,
            kline_filtering: opts.kline_filtering,
            bitmap_threshold: opts.bitmap_threshold,
        }
    }

    /// Canonical key for a DKTG query under the given inner-engine
    /// options.
    pub fn dktg(query: &DktgQuery, opts: &BbOptions) -> Self {
        CacheKey {
            kind: 1,
            gamma_bits: query.gamma().to_bits(),
            ..CacheKey::ktg(query.base(), opts)
        }
    }

    fn shard_index(&self) -> usize {
        let mut h = FxHasher64::default();
        self.hash(&mut h);
        (h.finish() >> 56) as usize % CACHE_SHARDS
    }
}

/// A resident answer with the graph epoch it was computed at.
struct Entry<V> {
    epoch: u64,
    value: V,
}

struct CacheShard<V> {
    /// Newest epoch this shard has observed (monotone). Entries stamped
    /// below it are dead weight awaiting reclamation; inserts stamped
    /// below it are discarded outright.
    latest: u64,
    map: FxHashMap<CacheKey, Entry<V>>,
    /// Insertion order for FIFO eviction, with the epoch each record was
    /// pushed at. Records are deleted lazily: a popped record only evicts
    /// when the resident entry still carries the same stamp (an entry
    /// re-inserted at a newer epoch leaves its old record dangling).
    fifo: VecDeque<(CacheKey, u64)>,
}

/// A bounded, sharded, epoch-guarded memo of whole query answers.
pub struct ResultCache<V> {
    shards: Vec<Mutex<CacheShard<V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    reclaimed: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// Creates a cache holding at most `capacity` answers in total
    /// (rounded up to a multiple of the stripe count; a zero capacity
    /// still admits one answer per stripe).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        latest: 0,
                        map: FxHashMap::default(),
                        fifo: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a fresh solve so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Stale-epoch entries reclaimed so far — lazily on lookup, or in
    /// bulk when an over-capacity insert purges a shard's dead
    /// generation before evicting anything live.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Cached answers currently resident (all shards, stale included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).map.len()).sum()
    }

    /// Whether the cache currently holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock<'a>(&self, shard: &'a Mutex<CacheShard<V>>) -> MutexGuard<'a, CacheShard<V>> {
        // Entries are inserted whole under the lock, so a panicking
        // borrower cannot leave a shard half-written: recover the lock.
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the cached answer for `key` computed at `epoch`, if any.
    ///
    /// Only an entry stamped with exactly `epoch` can hit. A lookup that
    /// lands on a stale entry removes it on the spot (counted by
    /// [`ResultCache::reclaimed`]) and reports a miss. The caller must
    /// pass a monotonically nondecreasing epoch for a given graph state
    /// (the executor's update path guarantees this: mutation takes
    /// `&mut self`, so no lookup can race an epoch bump).
    pub fn get(&self, key: &CacheKey, epoch: u64) -> Option<V> {
        // Fault-injection site, fired *before* the shard lock is taken so
        // an injected panic can never poison (or skew) shard state — a
        // retried lookup sees the cache exactly as the first attempt did.
        ktg_common::fault::inject(ktg_common::fault::FaultSite::CacheLookup);
        let mut shard = self.lock(&self.shards[key.shard_index()]);
        shard.latest = shard.latest.max(epoch);
        match shard.map.get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            Some(_) => {
                // Dead on arrival: the entry predates the current graph.
                // Its FIFO record is left dangling (lazy deletion).
                shard.map.remove(key);
                self.reclaimed.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` as the answer for `key` at `epoch`. An insert
    /// stamped older than the newest epoch the shard has seen is
    /// discarded (the answer is already stale).
    ///
    /// When the shard is over capacity, entries from dead generations
    /// are purged **first** — evicting a live entry while unreachable
    /// stale ones still occupy the shard would collapse the hit rate
    /// under edge-update churn. Only if the shard is still over capacity
    /// after the purge does FIFO eviction remove the oldest live entry.
    pub fn insert(&self, key: CacheKey, epoch: u64, value: V) {
        let mut shard = self.lock(&self.shards[key.shard_index()]);
        if epoch < shard.latest {
            return;
        }
        shard.latest = epoch;
        let stamp_changed = match shard.map.insert(key.clone(), Entry { epoch, value }) {
            Some(old) => old.epoch != epoch,
            None => true,
        };
        if stamp_changed {
            // A same-epoch overwrite keeps its original FIFO position;
            // everything else needs a fresh record (the old one, if any,
            // now dangles and is skipped at pop time).
            shard.fifo.push_back((key, epoch));
        }
        if shard.map.len() > self.per_shard_capacity {
            let latest = shard.latest;
            let before = shard.map.len();
            shard.map.retain(|_, entry| entry.epoch == latest);
            let dead = before - shard.map.len();
            if dead > 0 {
                self.reclaimed.fetch_add(dead as u64, Ordering::Relaxed);
                let CacheShard { map, fifo, .. } = &mut *shard;
                fifo.retain(|(k, e)| map.get(k).is_some_and(|entry| entry.epoch == *e));
            }
            while shard.map.len() > self.per_shard_capacity {
                let Some((oldest, stamp)) = shard.fifo.pop_front() else { break };
                if shard.map.get(&oldest).is_some_and(|entry| entry.epoch == stamp) {
                    shard.map.remove(&oldest);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn paper_key(net: &crate::network::AttributedGraph, terms: [&str; 5]) -> CacheKey {
        let query =
            KtgQuery::new(net.query_keywords(terms).unwrap(), 3, 1, 2).unwrap();
        CacheKey::ktg(&query, &BbOptions::vkc_deg())
    }

    /// A family of distinct keys (varying `p`) for filling shards.
    fn key_with_p(net: &crate::network::AttributedGraph, p: usize) -> CacheKey {
        let query =
            KtgQuery::new(net.query_keywords(["SN", "QP"]).unwrap(), p, 1, 1).unwrap();
        CacheKey::ktg(&query, &BbOptions::vkc_deg())
    }

    #[test]
    fn keyword_order_is_canonicalized() {
        let net = fixtures::figure1();
        let a = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let b = paper_key(&net, ["GD", "GQ", "DQ", "QP", "SN"]);
        assert_eq!(a, b, "W_Q is a set; permutations must share one entry");
    }

    #[test]
    fn options_that_change_results_split_keys() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let base = CacheKey::ktg(&query, &BbOptions::vkc_deg());
        assert_ne!(base, CacheKey::ktg(&query, &BbOptions::qkc()));
        assert_ne!(
            base,
            CacheKey::ktg(
                &query,
                &BbOptions { keyword_pruning: false, ..BbOptions::vkc_deg() }
            )
        );
        // Thread count is result-invariant and must NOT split the key.
        assert_eq!(base, CacheKey::ktg(&query, &BbOptions::vkc_deg().with_threads(8)));
        // DKTG with the same base query must not collide with KTG.
        let dq = DktgQuery::new(query.clone(), 0.5).unwrap();
        assert_ne!(base, CacheKey::dktg(&dq, &BbOptions::vkc_deg()));
        let dq2 = DktgQuery::new(query, 0.7).unwrap();
        assert_ne!(
            CacheKey::dktg(&dq2, &BbOptions::vkc_deg()),
            CacheKey::dktg(&DktgQuery::new(dq2.base().clone(), 0.5).unwrap(), &BbOptions::vkc_deg()),
            "gamma is part of the DKTG identity"
        );
    }

    #[test]
    fn get_insert_roundtrip_counts_hits() {
        let net = fixtures::figure1();
        let key = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let cache: ResultCache<u32> = ResultCache::new(64);
        assert_eq!(cache.get(&key, 1), None);
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 1), Some(42));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.reclaimed(), 0);
    }

    #[test]
    fn epoch_change_invalidates() {
        let net = fixtures::figure1();
        let key = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let cache: ResultCache<u32> = ResultCache::new(64);
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 2), None, "post-update lookups must miss");
        assert_eq!(cache.reclaimed(), 1, "the stale entry is reclaimed on touch");
        // A stale insert (computed before the bump) must be discarded.
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 2), None);
        cache.insert(key.clone(), 2, 43);
        assert_eq!(cache.get(&key, 2), Some(43));
    }

    #[test]
    fn capacity_is_bounded() {
        let net = fixtures::figure1();
        let cache: ResultCache<usize> = ResultCache::new(16);
        for p in 1..200usize {
            cache.insert(key_with_p(&net, p), 1, p);
        }
        assert!(cache.len() <= 16, "resident {} exceeds capacity", cache.len());
    }

    /// Regression for the epoch-churn eviction bug: an over-capacity
    /// insert must purge the shard's stale (dead-epoch) entries before
    /// evicting anything live. Without the purge, entries computed
    /// before an edge update sit unreachable in the FIFO and squeeze
    /// out the very answers the current epoch can still hit.
    #[test]
    fn stale_generations_are_purged_before_live_eviction() {
        let net = fixtures::figure1();
        // Capacity 16 ⇒ one entry per shard: any shard already holding
        // an epoch-1 entry overflows on its first epoch-2 insert.
        let cache: ResultCache<usize> = ResultCache::new(16);
        for p in 1..33usize {
            cache.insert(key_with_p(&net, p), 1, p);
        }
        let resident_before = cache.len();
        assert!(resident_before > 0);
        // Edge-update churn: a new generation arrives without any lookup
        // having touched the old one.
        for p in 101..133usize {
            cache.insert(key_with_p(&net, p), 2, p);
        }
        assert!(
            cache.reclaimed() > 0,
            "over-capacity inserts must reclaim the dead generation"
        );
        // The newest entry of the new generation is never the eviction
        // victim: stale entries go first, then FIFO order among live ones.
        assert_eq!(cache.get(&key_with_p(&net, 132), 2), Some(132));
        assert!(cache.len() <= 16, "resident {} exceeds capacity", cache.len());
        // Every surviving entry is from the live generation.
        for p in 1..33usize {
            let dead_hit = {
                let before = cache.hits();
                cache.get(&key_with_p(&net, p), 2);
                cache.hits() != before
            };
            assert!(!dead_hit, "stale entry for p={p} survived the purge and hit");
        }
    }

    /// A same-epoch overwrite (two workers racing the same miss) must
    /// not duplicate FIFO records — otherwise the duplicate record
    /// evicts the entry ahead of its turn.
    #[test]
    fn same_epoch_overwrite_keeps_one_fifo_record() {
        let net = fixtures::figure1();
        let cache: ResultCache<usize> = ResultCache::new(16);
        let key = key_with_p(&net, 1);
        cache.insert(key.clone(), 1, 10);
        cache.insert(key.clone(), 1, 11);
        // Fill the shard far past capacity with distinct keys; the
        // overwritten key is evicted exactly once, and the cache stays
        // consistent (no phantom entries, bound respected).
        for p in 2..40usize {
            cache.insert(key_with_p(&net, p), 1, p);
        }
        assert!(cache.len() <= 16);
    }
}

//! The epoch-guarded result cache.
//!
//! Served workloads repeat themselves: popular keyword combinations come
//! back query after query (the Zipf-shaped access pattern every
//! query-serving system sees). [`ResultCache`] memoizes whole answers
//! keyed on the *canonicalized* query — sorted keyword ids plus every
//! engine option that can change the result — so a repeat costs one hash
//! lookup and a clone instead of a branch-and-bound search.
//!
//! Three properties keep it safe to put in front of an exact algorithm:
//!
//! * **Canonical keys.** [`CacheKey`] sorts the keyword ids (the engine
//!   itself is insensitive to `W_Q` order) and folds in `p`, `k`, `N`,
//!   `γ`, the member ordering, both pruning toggles, and the bitmap
//!   threshold. Worker-thread counts are deliberately *excluded*: results
//!   are byte-identical across thread counts, so including them would
//!   only split the hit rate. Deadlines are excluded for the same reason:
//!   the executor only ever inserts `Exact` answers, and an exact answer
//!   is independent of whatever deadline failed to fire.
//! * **Epoch guard.** Every entry is stamped with the graph epoch it was
//!   computed at. The executor bumps its epoch on each applied edge
//!   update, and a lookup under a newer epoch drops the shard's stale
//!   generation wholesale — a post-update query can never observe a
//!   pre-update answer.
//! * **Bounded shards.** Entries live in a fixed stripe array (hashed by
//!   key) with per-shard FIFO eviction, so concurrent workers do not
//!   serialize on one lock and a long-running session cannot grow without
//!   limit.

use ktg_common::{FxHashMap, FxHasher64};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::bb::{BbOptions, MemberOrdering};
use crate::dktg::DktgQuery;
use crate::query::KtgQuery;

/// Number of cache stripes (see [`ktg_index::NeighborhoodCache`] for the
/// same sizing argument: a small power of two keeps the pick cheap while
/// letting a handful of workers proceed in parallel).
const CACHE_SHARDS: usize = 16;

/// A canonicalized query identity: two queries with the same key are
/// guaranteed the same answer (at the same graph epoch).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// 0 = KTG, 1 = DKTG — keeps the two query families from colliding.
    kind: u8,
    /// Query keyword ids, sorted ascending (`W_Q` is a set).
    keywords: Vec<u32>,
    p: usize,
    k: u32,
    n: usize,
    /// `γ.to_bits()` for DKTG, 0 for KTG.
    gamma_bits: u64,
    ordering: u8,
    keyword_pruning: bool,
    kline_filtering: bool,
    bitmap_threshold: usize,
}

fn ordering_tag(ordering: MemberOrdering) -> u8 {
    match ordering {
        MemberOrdering::Qkc => 0,
        MemberOrdering::Vkc => 1,
        MemberOrdering::VkcDeg => 2,
        MemberOrdering::VkcDegDesc => 3,
    }
}

fn sorted_ids(query: &KtgQuery) -> Vec<u32> {
    let mut ids: Vec<u32> = query.keywords().ids().iter().map(|id| id.0).collect();
    ids.sort_unstable();
    ids
}

impl CacheKey {
    /// Canonical key for a KTG query under the given engine options.
    pub fn ktg(query: &KtgQuery, opts: &BbOptions) -> Self {
        CacheKey {
            kind: 0,
            keywords: sorted_ids(query),
            p: query.p(),
            k: query.k(),
            n: query.n(),
            gamma_bits: 0,
            ordering: ordering_tag(opts.ordering),
            keyword_pruning: opts.keyword_pruning,
            kline_filtering: opts.kline_filtering,
            bitmap_threshold: opts.bitmap_threshold,
        }
    }

    /// Canonical key for a DKTG query under the given inner-engine
    /// options.
    pub fn dktg(query: &DktgQuery, opts: &BbOptions) -> Self {
        CacheKey {
            kind: 1,
            gamma_bits: query.gamma().to_bits(),
            ..CacheKey::ktg(query.base(), opts)
        }
    }

    fn shard_index(&self) -> usize {
        let mut h = FxHasher64::default();
        self.hash(&mut h);
        (h.finish() >> 56) as usize % CACHE_SHARDS
    }
}

struct CacheShard<V> {
    /// Graph epoch this shard's entries were computed at.
    epoch: u64,
    map: FxHashMap<CacheKey, V>,
    /// Insertion order for FIFO eviction.
    fifo: VecDeque<CacheKey>,
}

/// A bounded, sharded, epoch-guarded memo of whole query answers.
pub struct ResultCache<V> {
    shards: Vec<Mutex<CacheShard<V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// Creates a cache holding at most `capacity` answers in total
    /// (rounded up to a multiple of the stripe count; a zero capacity
    /// still admits one answer per stripe).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        epoch: 0,
                        map: FxHashMap::default(),
                        fifo: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a fresh solve so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached answers currently resident (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).map.len()).sum()
    }

    /// Whether the cache currently holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock<'a>(&self, shard: &'a Mutex<CacheShard<V>>) -> MutexGuard<'a, CacheShard<V>> {
        // Entries are inserted whole under the lock, so a panicking
        // borrower cannot leave a shard half-written: recover the lock.
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the cached answer for `key` computed at `epoch`, if any.
    ///
    /// A shard whose entries predate `epoch` is invalidated lazily on
    /// first access: the stale generation is dropped wholesale before the
    /// lookup proceeds. The caller must pass a monotonically nondecreasing
    /// epoch for a given graph state (the executor's update path
    /// guarantees this: mutation takes `&mut self`, so no lookup can race
    /// an epoch bump).
    pub fn get(&self, key: &CacheKey, epoch: u64) -> Option<V> {
        // Fault-injection site, fired *before* the shard lock is taken so
        // an injected panic can never poison (or skew) shard state — a
        // retried lookup sees the cache exactly as the first attempt did.
        ktg_common::fault::inject(ktg_common::fault::FaultSite::CacheLookup);
        let mut shard = self.lock(&self.shards[key.shard_index()]);
        if shard.epoch != epoch {
            shard.map.clear();
            shard.fifo.clear();
            shard.epoch = epoch;
        }
        match shard.map.get(key) {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` as the answer for `key` at `epoch`, FIFO-evicting
    /// the shard's oldest entry when over capacity. An insert stamped
    /// with an epoch older than the shard's current generation is
    /// discarded (the answer is already stale).
    pub fn insert(&self, key: CacheKey, epoch: u64, value: V) {
        let mut shard = self.lock(&self.shards[key.shard_index()]);
        if shard.epoch != epoch {
            if shard.epoch > epoch {
                return;
            }
            shard.map.clear();
            shard.fifo.clear();
            shard.epoch = epoch;
        }
        if shard.map.insert(key.clone(), value).is_none() {
            shard.fifo.push_back(key);
            if shard.fifo.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.fifo.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn paper_key(net: &crate::network::AttributedGraph, terms: [&str; 5]) -> CacheKey {
        let query =
            KtgQuery::new(net.query_keywords(terms).unwrap(), 3, 1, 2).unwrap();
        CacheKey::ktg(&query, &BbOptions::vkc_deg())
    }

    #[test]
    fn keyword_order_is_canonicalized() {
        let net = fixtures::figure1();
        let a = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let b = paper_key(&net, ["GD", "GQ", "DQ", "QP", "SN"]);
        assert_eq!(a, b, "W_Q is a set; permutations must share one entry");
    }

    #[test]
    fn options_that_change_results_split_keys() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let base = CacheKey::ktg(&query, &BbOptions::vkc_deg());
        assert_ne!(base, CacheKey::ktg(&query, &BbOptions::qkc()));
        assert_ne!(
            base,
            CacheKey::ktg(
                &query,
                &BbOptions { keyword_pruning: false, ..BbOptions::vkc_deg() }
            )
        );
        // Thread count is result-invariant and must NOT split the key.
        assert_eq!(base, CacheKey::ktg(&query, &BbOptions::vkc_deg().with_threads(8)));
        // DKTG with the same base query must not collide with KTG.
        let dq = DktgQuery::new(query.clone(), 0.5).unwrap();
        assert_ne!(base, CacheKey::dktg(&dq, &BbOptions::vkc_deg()));
        let dq2 = DktgQuery::new(query, 0.7).unwrap();
        assert_ne!(
            CacheKey::dktg(&dq2, &BbOptions::vkc_deg()),
            CacheKey::dktg(&DktgQuery::new(dq2.base().clone(), 0.5).unwrap(), &BbOptions::vkc_deg()),
            "gamma is part of the DKTG identity"
        );
    }

    #[test]
    fn get_insert_roundtrip_counts_hits() {
        let net = fixtures::figure1();
        let key = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let cache: ResultCache<u32> = ResultCache::new(64);
        assert_eq!(cache.get(&key, 1), None);
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 1), Some(42));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_change_invalidates() {
        let net = fixtures::figure1();
        let key = paper_key(&net, ["SN", "QP", "DQ", "GQ", "GD"]);
        let cache: ResultCache<u32> = ResultCache::new(64);
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 2), None, "post-update lookups must miss");
        // A stale insert (computed before the bump) must be discarded.
        cache.insert(key.clone(), 1, 42);
        assert_eq!(cache.get(&key, 2), None);
        cache.insert(key.clone(), 2, 43);
        assert_eq!(cache.get(&key, 2), Some(43));
    }

    #[test]
    fn capacity_is_bounded() {
        let net = fixtures::figure1();
        let cache: ResultCache<usize> = ResultCache::new(16);
        for p in 1..200usize {
            let query = KtgQuery::new(
                net.query_keywords(["SN", "QP"]).unwrap(),
                p,
                1,
                1,
            )
            .unwrap();
            cache.insert(CacheKey::ktg(&query, &BbOptions::vkc_deg()), 1, p);
        }
        assert!(cache.len() <= 16, "resident {} exceeds capacity", cache.len());
    }
}

//! The batched workload executor.
//!
//! [`ServeSession`] owns one attributed network and replays
//! [`WorkloadItem`] scripts against it, amortizing everything that a
//! query-at-a-time loop re-pays per query:
//!
//! * **Scratch pooling** — each worker borrows an [`Arena`] (candidate
//!   vector, kernel scratch, bitmap rows) from a [`ktg_common::Pool`];
//!   steady state performs no large allocations per query.
//! * **Result caching** — whole answers are memoized in a
//!   [`ResultCache`] keyed on the canonicalized query, guarded by the
//!   session's graph epoch.
//! * **Conflict-row reuse** — fresh solves assemble their conflict-bitmap
//!   kernels through the [`ktg_index::NeighborhoodCache`] `(vertex, k)`
//!   memo instead of re-running one bounded BFS per candidate per query.
//!
//! Updates are serialization points: [`ServeSession::run`] splits the
//! workload into maximal query runs separated by edge updates, fans each
//! run out over [`ktg_common::parallel::scope_join`] workers (atomic
//! work claiming, results merged positionally so output order equals
//! workload order), and applies updates sequentially under `&mut self` —
//! which is the whole invalidation story: an epoch bump cannot race a
//! lookup, so a stale answer is unreachable by construction.
//!
//! **Answer fidelity.** Every path — pooled, cached, parallel — returns
//! groups and scores byte-identical to a fresh sequential
//! [`bb::solve`] / [`crate::dktg::solve_with_options`] call against the
//! current graph: candidate extraction is shared, the bitmap-vs-oracle
//! fork runs on [`ConflictKernel::wants_bitmap`] exactly, and the cached
//! kernel rows are bit-for-bit those of
//! [`ktg_index::kline_conflict_bitmaps`]. The differential suite
//! (`tests/tests/serve_diff.rs`) enforces this across thread counts,
//! cache settings, and interleaved updates.
//!
//! **Robustness.** Every workload item executes under
//! [`std::panic::catch_unwind`]: a panicking item (injected fault or
//! genuine bug) discards its borrowed arena — half-mutated scratch never
//! returns to the pool — is retried once with fault injection
//! suppressed, and on a second failure becomes an
//! [`ItemOutcome::Failed`] record while the session keeps draining the
//! rest of the run. [`ServeOptions::max_inflight`] bounds admission per
//! [`ServeSession::run`] call, shedding the excess as
//! [`ItemOutcome::Overloaded`]. Deadline-cut solves come back flagged
//! [`CompletionStatus::Degraded`]; only `Exact` answers ever enter the
//! result cache.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use ktg_common::fault::{self, FaultSite};
use ktg_common::parallel::{scope_join, worker_count};
use ktg_common::{CompletionStatus, FixedBitSet, Pool, PoolGuard, VertexId};
use ktg_index::{
    conflict_bitmaps_cached, kline_conflict_bitmaps, DistanceOracle, DynamicNlrnl, KernelScratch,
    NeighborhoodCache,
};

use crate::bb::{self, BbOptions, ConflictKernel, KtgOutcome};
use crate::candidates::{self, Candidate};
use crate::dktg::{self, DktgQuery};
use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;

use super::cache::{CacheKey, ResultCache};
use super::workload::WorkloadItem;
use super::ServeOptions;

/// The answer to one KTG workload item.
#[derive(Clone, Debug, PartialEq)]
pub struct KtgAnswer {
    /// Result groups, identical to a fresh sequential solve.
    pub groups: Vec<Group>,
    /// Whether this answer came out of the result cache.
    pub cached: bool,
    /// `Exact`, or `Degraded` when a deadline/budget cut the search and
    /// the groups are best-so-far. Cache hits are always `Exact` (only
    /// exact answers are inserted).
    pub status: CompletionStatus,
}

/// The answer to one DKTG workload item.
#[derive(Clone, Debug, PartialEq)]
pub struct DktgAnswer {
    /// Result groups in greedy discovery order.
    pub groups: Vec<Group>,
    /// `dL(RG)` — mean pairwise Jaccard distance.
    pub diversity: f64,
    /// `min_g QKC(g)` over the result groups.
    pub min_qkc: f64,
    /// The combined score (Eq. 4).
    pub score: f64,
    /// Whether this answer came out of the result cache.
    pub cached: bool,
    /// `Exact`, or `Degraded` when the shared greedy-round budget fired
    /// and the groups found so far were kept. Cache hits are always
    /// `Exact`.
    pub status: CompletionStatus,
}

/// The outcome of one workload item, in workload order.
#[derive(Clone, Debug, PartialEq)]
pub enum ItemOutcome {
    /// Answer to a [`WorkloadItem::Ktg`] line.
    Ktg(KtgAnswer),
    /// Answer to a [`WorkloadItem::Dktg`] line.
    Dktg(DktgAnswer),
    /// Report for an [`WorkloadItem::Insert`] / [`WorkloadItem::Remove`]
    /// line: `applied` is `false` when the edge already existed (insert),
    /// was already absent (remove), or the endpoints were invalid.
    Update {
        /// Whether the graph actually changed (and the epoch advanced).
        applied: bool,
    },
    /// The item's worker panicked on the solve *and* on the suppressed
    /// retry; its arena was discarded both times and the session moved
    /// on. `reason` renders the second panic's payload.
    Failed {
        /// Human-readable panic payload of the final attempt.
        reason: String,
    },
    /// Shed unsolved by the [`super::ServeOptions::max_inflight`]
    /// admission bound (see [`ktg_common::KtgError::Overloaded`]).
    Overloaded,
}

/// What a cached entry stores: exactly the result-bearing fields, never
/// the search stats (counters describe work performed, and a cache hit
/// performs none). Group coverage masks are stored in *canonical* bit
/// order (sorted keyword ids) — see [`MaskPermutation`].
#[derive(Clone)]
enum CachedAnswer {
    Ktg(Vec<Group>),
    Dktg { groups: Vec<Group>, diversity: f64, min_qkc: f64, score: f64 },
}

/// The bit permutation between a query's compile-order coverage masks
/// (bit `q` = `keywords().ids()[q]`) and the canonical sorted-id order
/// the cache stores.
///
/// [`CacheKey`] canonicalizes `W_Q` as a set, so two permutations of the
/// same keywords share one entry — but their *masks* index bits by
/// position in the query's id list. The group member sets and their
/// ranking are permutation-invariant (every ordering criterion reduces
/// to popcounts over consistently-permuted masks), so translating the
/// masks is all it takes to hand a permuted query the byte-identical
/// answer a fresh solve would produce.
enum MaskPermutation {
    /// The query's ids are already sorted — masks pass through untouched
    /// (the overwhelmingly common case).
    Identity,
    /// `pos[q]` = position of the query's `q`-th keyword id in sorted
    /// order.
    Permuted(Vec<u32>),
}

impl MaskPermutation {
    fn of(query: &KtgQuery) -> Self {
        let ids = query.keywords().ids();
        let mut order: Vec<u32> = (0..ids.len() as u32).collect();
        order.sort_unstable_by_key(|&q| ids[q as usize].0);
        if order.iter().enumerate().all(|(s, &q)| s as u32 == q) {
            return MaskPermutation::Identity;
        }
        let mut pos = vec![0u32; ids.len()];
        for (s, &q) in order.iter().enumerate() {
            pos[q as usize] = s as u32;
        }
        MaskPermutation::Permuted(pos)
    }

    /// Rewrites `groups` from query bit order into canonical order (for
    /// inserts). Pass `groups` already cloned.
    fn groups_to_canonical(&self, groups: Vec<Group>) -> Vec<Group> {
        self.map_groups(groups, |mask, pos| {
            pos.iter()
                .enumerate()
                .fold(0, |acc, (q, &s)| acc | (((mask >> q) & 1) << s))
        })
    }

    /// Rewrites `groups` from canonical order into query bit order (for
    /// hits).
    fn groups_from_canonical(&self, groups: Vec<Group>) -> Vec<Group> {
        self.map_groups(groups, |mask, pos| {
            pos.iter()
                .enumerate()
                .fold(0, |acc, (q, &s)| acc | (((mask >> s) & 1) << q))
        })
    }

    fn map_groups(&self, groups: Vec<Group>, f: impl Fn(u64, &[u32]) -> u64) -> Vec<Group> {
        match self {
            MaskPermutation::Identity => groups,
            MaskPermutation::Permuted(pos) => groups
                .into_iter()
                .map(|g| Group::new(g.members().to_vec(), f(g.mask(), pos)))
                .collect(),
        }
    }
}

/// Per-worker recycled scratch: everything a fresh solve needs that is
/// sized by the query, pooled so steady-state serving allocates nothing
/// large. (The per-query keyword-mask compile still allocates inside
/// `ktg-keywords`; see DESIGN.md §13.)
#[derive(Default)]
struct Arena {
    kernel: KernelScratch,
    cands: Vec<Candidate>,
    sources: Vec<VertexId>,
    bitmaps: Vec<FixedBitSet>,
}

/// Aggregate cache instrumentation for one session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Whole answers served from the result cache.
    pub result_hits: u64,
    /// Queries that fell through to a fresh solve.
    pub result_misses: u64,
    /// Stale-epoch result entries reclaimed (lazily on lookup, or in
    /// bulk when an over-capacity insert purges a dead generation).
    pub result_reclaimed: u64,
    /// Conflict rows served from the `(vertex, k)` memo.
    pub row_hits: u64,
    /// Conflict rows computed by bounded BFS.
    pub row_misses: u64,
    /// Current graph epoch (number of applied edge updates).
    pub epoch: u64,
}

/// A long-lived query-serving session over one attributed network.
pub struct ServeSession {
    net: AttributedGraph,
    /// Mutable mirror of `net`'s topology bundled with an incrementally
    /// maintained NLRNL index — the shared, immutable-between-updates
    /// distance oracle every worker reads concurrently. Queries always
    /// run against the frozen CSR in `net`, rebuilt from this mirror
    /// after each applied update.
    dynamic: DynamicNlrnl,
    /// Bumped once per applied edge update; stamps every cache entry.
    epoch: u64,
    options: ServeOptions,
    results: ResultCache<CachedAnswer>,
    rows: NeighborhoodCache,
    arenas: Pool<Arena>,
}

impl ServeSession {
    /// Opens a session over `net` with the given serving options.
    pub fn new(net: AttributedGraph, options: ServeOptions) -> Self {
        let dynamic = DynamicNlrnl::new(net.graph());
        ServeSession {
            dynamic,
            epoch: 0,
            results: ResultCache::new(options.cache_entries),
            rows: NeighborhoodCache::new(options.cache_entries),
            arenas: Pool::new(),
            options,
            net,
        }
    }

    /// The network in its current (post-update) state.
    #[inline]
    pub fn net(&self) -> &AttributedGraph {
        &self.net
    }

    /// The current graph epoch: the number of applied edge updates.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cache instrumentation so far.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            result_hits: self.results.hits(),
            result_misses: self.results.misses(),
            result_reclaimed: self.results.reclaimed(),
            row_hits: self.rows.hits(),
            row_misses: self.rows.misses(),
            epoch: self.epoch,
        }
    }

    /// Replays a workload, returning one outcome per item in workload
    /// order. Maximal runs of queries execute in parallel; updates apply
    /// sequentially between them.
    pub fn run(&mut self, workload: &[WorkloadItem]) -> Vec<ItemOutcome> {
        // Admission budget for this call: only *query* items count
        // against it. Edge updates always apply — shedding one would
        // silently fork the graph state the surviving queries see.
        let mut admit_left = match self.options.max_inflight {
            0 => usize::MAX,
            bound => bound,
        };
        let mut out = Vec::with_capacity(workload.len());
        let mut i = 0;
        while i < workload.len() {
            match workload[i] {
                WorkloadItem::Insert(u, v) => {
                    out.push(self.apply_update(true, u, v));
                    i += 1;
                }
                WorkloadItem::Remove(u, v) => {
                    out.push(self.apply_update(false, u, v));
                    i += 1;
                }
                _ => {
                    let start = i;
                    while i < workload.len() && workload[i].is_query() {
                        i += 1;
                    }
                    let run = &workload[start..i];
                    let admitted = run.len().min(admit_left);
                    admit_left -= admitted;
                    self.run_queries(&run[..admitted], &mut out);
                    // Shed, don't solve: refusals are reported in place
                    // so outcomes stay aligned with the workload.
                    out.extend(run[admitted..].iter().map(|_| ItemOutcome::Overloaded));
                }
            }
        }
        out
    }

    /// Answers one *query* item through the full isolated pipeline
    /// (cache, pooled arena, panic isolation, retry-once) without
    /// mutating the session.
    ///
    /// This is the network server's read-path entry point: because it
    /// takes `&self`, many connections can answer concurrently under a
    /// shared read lock while edge updates serialize behind the write
    /// lock via [`ServeSession::apply_item`]. Update items are not
    /// accepted here — they would need `&mut self` — and come back as
    /// [`ItemOutcome::Failed`] rather than panicking, so a misrouted
    /// item degrades one response instead of the whole connection.
    pub fn answer_query(&self, item: &WorkloadItem) -> ItemOutcome {
        if !item.is_query() {
            return ItemOutcome::Failed {
                reason: "update items require exclusive session access".to_string(),
            };
        }
        let oracle = self.dynamic.index();
        let mut slot: Option<PoolGuard<'_, Arena>> = None;
        self.answer_isolated(item, oracle, &mut slot)
    }

    /// Executes one item of any kind, taking `&mut self`: queries go
    /// through the same pipeline as [`ServeSession::answer_query`], edge
    /// updates apply (bumping the epoch on a real topology change). The
    /// network server routes update lines here under its write lock.
    pub fn apply_item(&mut self, item: &WorkloadItem) -> ItemOutcome {
        match *item {
            WorkloadItem::Insert(u, v) => self.apply_update(true, u, v),
            WorkloadItem::Remove(u, v) => self.apply_update(false, u, v),
            _ => self.answer_query(item),
        }
    }

    /// Applies one edge update. On an actual topology change the epoch
    /// advances (making every cached answer and conflict row stale) and
    /// the frozen CSR is rebuilt; a no-op update leaves both untouched so
    /// caches stay warm.
    fn apply_update(&mut self, insert: bool, u: VertexId, v: VertexId) -> ItemOutcome {
        let changed = if insert {
            self.dynamic.insert_edge(u, v)
        } else {
            self.dynamic.remove_edge(u, v)
        };
        // Out-of-range/self-loop updates are reported, not fatal: a
        // workload replay keeps going (the parser already rejects them in
        // files; this arm covers programmatic workloads).
        let applied = changed.unwrap_or(false);
        if applied {
            self.epoch += 1;
            self.net = AttributedGraph::new(
                self.dynamic.graph().to_csr(),
                self.net.vocab().clone(),
                self.net.keywords().clone(),
            );
        }
        ItemOutcome::Update { applied }
    }

    /// Answers a run of consecutive queries, fanning out across workers
    /// when both the options and the run length allow it.
    fn run_queries(&self, items: &[WorkloadItem], out: &mut Vec<ItemOutcome>) {
        let workers = match self.options.threads {
            0 => worker_count(),
            t => t,
        }
        .min(items.len())
        .max(1);

        // The session's NLRNL index is immutable between updates, so
        // every worker reads the same oracle lock-free — the shared-index
        // amortization that makes the fan-out actually scale (per-worker
        // memoizing oracles would redo each other's BFS work).
        let oracle = self.dynamic.index();

        if workers <= 1 {
            let mut slot: Option<PoolGuard<'_, Arena>> = None;
            out.extend(
                items.iter().map(|item| self.answer_isolated(item, oracle, &mut slot)),
            );
            return;
        }

        let next = AtomicUsize::new(0);
        let parts = scope_join((0..workers).map(|_| {
            let next = &next;
            move || {
                // The arena is acquired lazily inside each isolated
                // attempt so an injected pool-acquire fault is charged to
                // the item that triggered it, not to worker startup.
                let mut slot: Option<PoolGuard<'_, Arena>> = None;
                let mut local = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    local.push((idx, self.answer_isolated(item, oracle, &mut slot)));
                }
                local
            }
        }));

        // Positional merge: claiming hands out each index exactly once,
        // so the output is in workload order regardless of worker timing.
        let mut slots: Vec<Option<ItemOutcome>> = items.iter().map(|_| None).collect();
        for (idx, outcome) in parts.into_iter().flatten() {
            slots[idx] = Some(outcome);
        }
        out.extend(slots.into_iter().map(|slot| match slot {
            Some(outcome) => outcome,
            None => unreachable!("every claimed index produces an outcome"),
        }));
    }

    /// Answers one item with panic isolation and a retry-once policy.
    ///
    /// A panicking attempt discards the borrowed arena (`slot`) so
    /// half-mutated scratch never re-enters the pool, then retries once
    /// under [`fault::suppressed`]: an *injected* fault cannot re-fire,
    /// so transients always recover to the byte-identical answer, while a
    /// genuine persistent bug fails again and is recorded as
    /// [`ItemOutcome::Failed`] — the session keeps draining.
    fn answer_isolated<'p>(
        &'p self,
        item: &WorkloadItem,
        oracle: &impl DistanceOracle,
        slot: &mut Option<PoolGuard<'p, Arena>>,
    ) -> ItemOutcome {
        match self.attempt(item, oracle, slot) {
            Ok(outcome) => outcome,
            Err(_first) => {
                if let Some(guard) = slot.take() {
                    guard.discard();
                }
                match fault::suppressed(|| self.attempt(item, oracle, slot)) {
                    Ok(outcome) => outcome,
                    Err(second) => {
                        if let Some(guard) = slot.take() {
                            guard.discard();
                        }
                        ItemOutcome::Failed { reason: panic_reason(second.as_ref()) }
                    }
                }
            }
        }
    }

    /// One guarded solve attempt. `AssertUnwindSafe` is justified by the
    /// discard-on-panic contract: the arena in `slot` is the only state a
    /// panicking attempt can leave half-mutated, and `answer_isolated`
    /// throws it away before anything observes it again (the caches
    /// mutate whole entries under poison-recovering locks, and all fault
    /// sites fire *before* their lock is taken).
    fn attempt<'p>(
        &'p self,
        item: &WorkloadItem,
        oracle: &impl DistanceOracle,
        slot: &mut Option<PoolGuard<'p, Arena>>,
    ) -> std::thread::Result<ItemOutcome> {
        catch_unwind(AssertUnwindSafe(|| {
            fault::inject(FaultSite::WorkerSolve);
            if slot.is_none() {
                *slot = Some(self.arenas.acquire_with(Arena::default));
            }
            match slot.as_mut() {
                Some(arena) => self.answer(item, oracle, arena),
                None => unreachable!("arena slot was filled just above"),
            }
        }))
    }

    /// Engine options for inner solves: worker parallelism lives at the
    /// workload level, so each individual search runs sequentially (which
    /// is also what makes outcomes independent of the fan-out).
    fn inner_opts(&self) -> BbOptions {
        BbOptions { threads: 1, ..self.options.engine }
    }

    fn answer(
        &self,
        item: &WorkloadItem,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
    ) -> ItemOutcome {
        match item {
            WorkloadItem::Ktg(query) => ItemOutcome::Ktg(self.answer_ktg(query, oracle, arena)),
            WorkloadItem::Dktg(query) => {
                ItemOutcome::Dktg(self.answer_dktg(query, oracle, arena))
            }
            WorkloadItem::Insert(..) | WorkloadItem::Remove(..) => {
                unreachable!("updates are split out of query runs")
            }
        }
    }

    fn answer_ktg(
        &self,
        query: &KtgQuery,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
    ) -> KtgAnswer {
        let opts = self.inner_opts();
        let key = self.options.use_cache.then(|| CacheKey::ktg(query, &opts));
        if let Some(key) = &key {
            if let Some(CachedAnswer::Ktg(groups)) = self.results.get(key, self.epoch) {
                let groups = MaskPermutation::of(query).groups_from_canonical(groups);
                // Checked mode re-audits even cached answers: a cache bug
                // shows up as a verification failure, not a wrong result.
                crate::verify::enforce(&self.net, query, &groups);
                return KtgAnswer { groups, cached: true, status: CompletionStatus::Exact };
            }
        }
        let outcome = self.solve_ktg(query, oracle, arena, &opts);
        // Only exact answers are cacheable: a deadline-cut result is
        // valid best-so-far but not canonical, and must not shadow the
        // exact answer for later repeats of the same query.
        if outcome.status.is_exact() {
            if let Some(key) = key {
                let canonical =
                    MaskPermutation::of(query).groups_to_canonical(outcome.groups.clone());
                self.results.insert(key, self.epoch, CachedAnswer::Ktg(canonical));
            }
        }
        KtgAnswer { groups: outcome.groups, cached: false, status: outcome.status }
    }

    /// A fresh KTG solve through the pooled arena, taking the
    /// bitmap-vs-oracle fork on exactly [`ConflictKernel::wants_bitmap`]
    /// so stats and results match [`bb::solve`] bit for bit.
    fn solve_ktg(
        &self,
        query: &KtgQuery,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
        opts: &BbOptions,
    ) -> KtgOutcome {
        let masks = self.net.compile(query.keywords());
        candidates::collect(self.net.graph(), &masks, &mut arena.cands);
        if !ConflictKernel::wants_bitmap(arena.cands.len(), opts) {
            return bb::solve_with_kernel(
                &self.net,
                query,
                oracle,
                &arena.cands,
                &ConflictKernel::Oracle,
                opts,
            );
        }
        arena.sources.clear();
        arena.sources.extend(arena.cands.iter().map(|c| c.v));
        if self.options.use_cache {
            conflict_bitmaps_cached(
                self.net.graph(),
                &arena.sources,
                query.k(),
                &self.rows,
                self.epoch,
                &mut arena.kernel,
                &mut arena.bitmaps,
            );
        } else {
            arena.bitmaps = kline_conflict_bitmaps(self.net.graph(), &arena.sources, query.k());
        }
        let kernel = ConflictKernel::Bitmap(std::mem::take(&mut arena.bitmaps));
        let outcome =
            bb::solve_with_kernel(&self.net, query, oracle, &arena.cands, &kernel, opts);
        if let Some(rows) = kernel.into_bitmaps() {
            // Hand the rows back to the arena so the next query reuses
            // their word allocations.
            arena.bitmaps = rows;
        }
        outcome
    }

    fn answer_dktg(
        &self,
        query: &DktgQuery,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
    ) -> DktgAnswer {
        let opts = self.inner_opts();
        let key = self.options.use_cache.then(|| CacheKey::dktg(query, &opts));
        if let Some(key) = &key {
            if let Some(CachedAnswer::Dktg { groups, diversity, min_qkc, score }) =
                self.results.get(key, self.epoch)
            {
                let groups =
                    MaskPermutation::of(query.base()).groups_from_canonical(groups);
                crate::verify::enforce_dktg(&self.net, query, &groups);
                return DktgAnswer {
                    groups,
                    diversity,
                    min_qkc,
                    score,
                    cached: true,
                    status: CompletionStatus::Exact,
                };
            }
        }
        // Same code path as `dktg::solve_with_options`, minus the
        // candidate-vector allocation: greedy rounds consume the pooled
        // vector in place.
        let masks = self.net.compile(query.base().keywords());
        candidates::collect(self.net.graph(), &masks, &mut arena.cands);
        let outcome = dktg::solve_with_candidates(query, oracle, &mut arena.cands, &opts);
        crate::verify::enforce_dktg(&self.net, query, &outcome.groups);
        if let Some(key) = key.filter(|_| outcome.status.is_exact()) {
            let canonical =
                MaskPermutation::of(query.base()).groups_to_canonical(outcome.groups.clone());
            self.results.insert(
                key,
                self.epoch,
                CachedAnswer::Dktg {
                    groups: canonical,
                    diversity: outcome.diversity,
                    min_qkc: outcome.min_qkc,
                    score: outcome.score,
                },
            );
        }
        DktgAnswer {
            groups: outcome.groups,
            diversity: outcome.diversity,
            min_qkc: outcome.min_qkc,
            score: outcome.score,
            cached: false,
            status: outcome.status,
        }
    }
}

/// Renders a caught panic payload for an [`ItemOutcome::Failed`] record.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<fault::InjectedFault>() {
        return injected.to_string();
    }
    if let Some(msg) = payload.downcast_ref::<&str>() {
        return (*msg).to_string();
    }
    if let Some(msg) = payload.downcast_ref::<String>() {
        return msg.clone();
    }
    "worker panicked with a non-string payload".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::serve::workload::parse_workload;
    use ktg_graph::DynamicGraph;
    use ktg_index::BfsOracle;

    fn paper_workload(net: &AttributedGraph) -> Vec<WorkloadItem> {
        parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2 gamma=0.5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=GD,QP,SN,DQ,GQ p=3 k=1 n=2 gamma=0.5
",
            net,
        )
        .unwrap()
    }

    fn reference_ktg(net: &AttributedGraph) -> Vec<Group> {
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        bb::solve(net, &query, &oracle, &BbOptions::vkc_deg()).groups
    }

    #[test]
    fn serves_paper_answers_and_caches_repeats() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let outcomes = session.run(&paper_workload(&net));
        let ItemOutcome::Ktg(first) = &outcomes[0] else { panic!("expected ktg") };
        assert_eq!(first.groups, expect);
        assert!(!first.cached);
        let ItemOutcome::Ktg(repeat) = &outcomes[2] else { panic!("expected ktg") };
        assert!(repeat.cached, "identical query must hit the cache");
        assert_eq!(repeat.groups, expect);
        let ItemOutcome::Dktg(permuted) = &outcomes[3] else { panic!("expected dktg") };
        assert!(permuted.cached, "keyword permutation shares the canonical key");
        let stats = session.stats();
        assert_eq!(stats.result_hits, 2);
        assert_eq!(stats.result_misses, 2);
    }

    #[test]
    fn no_cache_mode_still_matches() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        let opts = ServeOptions { use_cache: false, ..ServeOptions::default() };
        let mut session = ServeSession::new(net.clone(), opts);
        let outcomes = session.run(&paper_workload(&net));
        for outcome in &outcomes {
            if let ItemOutcome::Ktg(ans) = outcome {
                assert!(!ans.cached);
                assert_eq!(ans.groups, expect);
            }
        }
        assert_eq!(session.stats().result_hits, 0);
        assert_eq!(session.stats().row_hits, 0);
    }

    #[test]
    fn parallel_output_is_in_workload_order() {
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        for _ in 0..4 {
            workload.extend(paper_workload(&net));
        }
        let sequential = ServeSession::new(net.clone(), ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        })
        .run(&workload);
        for threads in [2usize, 4, 0] {
            let parallel = ServeSession::new(net.clone(), ServeOptions {
                threads,
                ..ServeOptions::default()
            })
            .run(&workload);
            // `cached` flags may differ (racing workers can both miss),
            // so compare the result-bearing fields.
            assert_eq!(sequential.len(), parallel.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                match (s, p) {
                    (ItemOutcome::Ktg(a), ItemOutcome::Ktg(b)) => assert_eq!(a.groups, b.groups),
                    (ItemOutcome::Dktg(a), ItemOutcome::Dktg(b)) => {
                        assert_eq!(a.groups, b.groups);
                        assert_eq!(a.score, b.score);
                    }
                    other => panic!("outcome shape diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn permuted_keywords_hit_with_translated_masks() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=GD,GQ,DQ,QP,SN p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let out = session.run(&workload);
        let ItemOutcome::Ktg(first) = &out[0] else { panic!("expected ktg") };
        let ItemOutcome::Ktg(second) = &out[1] else { panic!("expected ktg") };
        assert!(second.cached, "permutations share the canonical entry");
        // The hit's masks must be in the *permuted* query's bit order —
        // byte-identical to solving that query fresh (mask field and all).
        let permuted = KtgQuery::new(
            net.query_keywords(["GD", "GQ", "DQ", "QP", "SN"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let fresh = bb::solve(&net, &permuted, &oracle, &BbOptions::vkc_deg());
        assert_eq!(second.groups, fresh.groups);
        // Same member sets either way, different mask bit order.
        for (a, b) in first.groups.iter().zip(&second.groups) {
            assert_eq!(a.members(), b.members());
            assert_eq!(a.coverage_count(), b.coverage_count());
        }
    }

    #[test]
    fn updates_bump_epoch_and_invalidate() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
remove 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let outcomes = session.run(&workload);
        assert_eq!(outcomes[1], ItemOutcome::Update { applied: true });
        let ItemOutcome::Ktg(after) = &outcomes[2] else { panic!("expected ktg") };
        assert!(!after.cached, "update must invalidate the cached answer");
        // Post-update answer matches a fresh solve against the new graph.
        let mut dyn_g = DynamicGraph::from_csr(net.graph());
        dyn_g.insert_edge(VertexId(0), VertexId(5)).unwrap();
        let mutated = AttributedGraph::new(
            dyn_g.to_csr(),
            net.vocab().clone(),
            net.keywords().clone(),
        );
        assert_eq!(after.groups, reference_ktg(&mutated));
        assert_eq!(outcomes[3], ItemOutcome::Update { applied: false }, "duplicate insert");
        assert_eq!(outcomes[4], ItemOutcome::Update { applied: true });
        let ItemOutcome::Ktg(restored) = &outcomes[5] else { panic!("expected ktg") };
        assert_eq!(restored.groups, reference_ktg(&net), "remove restored the topology");
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn invalid_programmatic_update_is_reported_not_fatal() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net, ServeOptions::default());
        let out = session.run(&[WorkloadItem::Insert(VertexId(0), VertexId(9999))]);
        assert_eq!(out, vec![ItemOutcome::Update { applied: false }]);
        assert_eq!(session.epoch(), 0);
    }

    /// Serializes tests that arm the process-global fault registry.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A query interned against a larger vocabulary: its keyword id is
    /// out of range for figure1's inverted index, so compiling it panics
    /// (a genuine, persistent bug — unlike an injected fault, the retry
    /// fails the same way).
    fn poison_item() -> WorkloadItem {
        let mut vocab = ktg_keywords::Vocabulary::new();
        vocab.intern_all(fixtures::FIGURE1_TERMS);
        vocab.intern_all(["XX"]);
        let qk = ktg_keywords::QueryKeywords::from_terms(&vocab, ["XX"]).unwrap();
        WorkloadItem::Ktg(KtgQuery::new(qk, 2, 1, 1).unwrap())
    }

    #[test]
    fn worker_panic_is_isolated_and_session_drains() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        for threads in [1usize, 2] {
            let mut session = ServeSession::new(
                net.clone(),
                ServeOptions { threads, ..ServeOptions::default() },
            );
            let mut workload = paper_workload(&net);
            workload.insert(1, poison_item());
            let out = session.run(&workload);
            assert_eq!(out.len(), 5);
            let ItemOutcome::Failed { reason } = &out[1] else {
                panic!("expected Failed, got {:?}", out[1])
            };
            assert!(reason.contains("index out of bounds"), "reason: {reason}");
            let ItemOutcome::Ktg(first) = &out[0] else { panic!("expected ktg") };
            assert_eq!(first.groups, expect);
            let ItemOutcome::Ktg(repeat) = &out[3] else { panic!("expected ktg") };
            assert_eq!(repeat.groups, expect, "items after the failure still answer");
            // The session itself survives the panic: a fresh run works.
            let again = session.run(&paper_workload(&net));
            assert!(matches!(&again[0], ItemOutcome::Ktg(a) if a.groups == expect));
        }
    }

    #[test]
    fn injected_faults_recover_byte_identically() {
        let _guard = fault_lock();
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        workload.extend(paper_workload(&net));
        let opts = || ServeOptions { threads: 1, ..ServeOptions::default() };
        let baseline = ServeSession::new(net.clone(), opts()).run(&workload);
        for seed in [1u64, 7, 99] {
            ktg_common::fault::set_config(Some(ktg_common::FaultConfig::new(
                &ktg_common::fault::ALL_SITES,
                1.0,
                seed,
            )));
            let faulted = ServeSession::new(net.clone(), opts()).run(&workload);
            ktg_common::fault::set_config(None);
            assert_eq!(baseline, faulted, "seed {seed}: retries must restore the answers");
            assert!(
                !faulted.iter().any(|o| matches!(o, ItemOutcome::Failed { .. })),
                "injected faults are transient — retry-once must absorb them"
            );
        }
    }

    #[test]
    fn max_inflight_sheds_excess_as_overloaded() {
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        workload.extend(paper_workload(&net));
        let mut session = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, max_inflight: 3, ..ServeOptions::default() },
        );
        let out = session.run(&workload);
        assert_eq!(out.len(), 8);
        for o in &out[..3] {
            assert!(!matches!(o, ItemOutcome::Overloaded), "admitted items are solved");
        }
        for o in &out[3..] {
            assert_eq!(*o, ItemOutcome::Overloaded);
        }
        // The budget is per `run` call: the next call admits again.
        let again = session.run(&paper_workload(&net));
        assert!(matches!(again[0], ItemOutcome::Ktg(_)));
        // Updates never count against (or get shed by) the bound.
        let mixed = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let mut tight = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, max_inflight: 1, ..ServeOptions::default() },
        );
        let out = tight.run(&mixed);
        assert!(matches!(out[0], ItemOutcome::Ktg(_)));
        assert_eq!(out[1], ItemOutcome::Update { applied: true });
        assert_eq!(out[2], ItemOutcome::Overloaded);
    }

    #[test]
    fn degraded_answers_are_flagged_and_never_cached() {
        let net = fixtures::figure1();
        let engine = BbOptions { node_budget: Some(1), ..BbOptions::vkc_deg() };
        let mut session = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, engine, ..ServeOptions::default() },
        );
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let out = session.run(&workload);
        for o in &out {
            let ItemOutcome::Ktg(ans) = o else { panic!("expected ktg") };
            assert!(!ans.status.is_exact(), "budget-cut solves must be flagged");
            assert!(!ans.cached, "degraded answers must not come from the cache");
        }
        assert_eq!(session.stats().result_hits, 0, "nothing degraded was inserted");
    }

    /// The server's item-at-a-time entry points must produce the same
    /// result-bearing outcomes as the batched `run` path — this is the
    /// contract that makes TCP responses byte-identical to `ktg batch`.
    #[test]
    fn shared_entry_points_match_run() {
        let net = fixtures::figure1();
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2 gamma=0.5
remove 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let opts = || ServeOptions { threads: 1, ..ServeOptions::default() };
        let batched = ServeSession::new(net.clone(), opts()).run(&workload);
        let mut item_session = ServeSession::new(net.clone(), opts());
        let itemized: Vec<ItemOutcome> =
            workload.iter().map(|item| item_session.apply_item(item)).collect();
        assert_eq!(batched, itemized);
        // answer_query never mutates: an update item routed there is a
        // reported failure, and the epoch stands still.
        let epoch = item_session.epoch();
        let misrouted = item_session.answer_query(&WorkloadItem::Insert(VertexId(0), VertexId(5)));
        assert!(matches!(misrouted, ItemOutcome::Failed { .. }));
        assert_eq!(item_session.epoch(), epoch);
    }

    #[test]
    fn row_cache_reused_across_distinct_queries() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        // Distinct p ⇒ distinct result-cache keys, but identical k and
        // candidate sets ⇒ the second query's conflict rows all hit.
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=SN,QP,DQ,GQ,GD p=2 k=1 n=2
",
            &net,
        )
        .unwrap();
        session.run(&workload);
        let stats = session.stats();
        assert_eq!(stats.result_hits, 0);
        assert!(stats.row_hits > 0, "second query must reuse (vertex, k) rows");
    }
}

//! The batched workload executor.
//!
//! [`ServeSession`] owns one attributed network and replays
//! [`WorkloadItem`] scripts against it, amortizing everything that a
//! query-at-a-time loop re-pays per query:
//!
//! * **Scratch pooling** — each worker borrows an [`Arena`] (candidate
//!   vector, kernel scratch, bitmap rows) from a [`ktg_common::Pool`];
//!   steady state performs no large allocations per query.
//! * **Result caching** — whole answers are memoized in a
//!   [`ResultCache`] keyed on the canonicalized query, guarded by the
//!   session's graph epoch.
//! * **Conflict-row reuse** — fresh solves assemble their conflict-bitmap
//!   kernels through the [`ktg_index::NeighborhoodCache`] `(vertex, k)`
//!   memo instead of re-running one bounded BFS per candidate per query.
//!
//! Updates are serialization points: [`ServeSession::run`] splits the
//! workload into maximal query runs separated by edge updates, fans each
//! run out over [`ktg_common::parallel::scope_join`] workers (atomic
//! work claiming, results merged positionally so output order equals
//! workload order), and applies updates sequentially under `&mut self` —
//! which is the whole invalidation story: an epoch bump cannot race a
//! lookup, so a stale answer is unreachable by construction.
//!
//! **Answer fidelity.** Every path — pooled, cached, parallel — returns
//! groups and scores byte-identical to a fresh sequential
//! [`bb::solve`] / [`crate::dktg::solve_with_options`] call against the
//! current graph: candidate extraction is shared, the bitmap-vs-oracle
//! fork runs on [`ConflictKernel::wants_bitmap`] exactly, and the cached
//! kernel rows are bit-for-bit those of
//! [`ktg_index::kline_conflict_bitmaps`]. The differential suite
//! (`tests/tests/serve_diff.rs`) enforces this across thread counts,
//! cache settings, and interleaved updates.
//!
//! **Robustness.** Every workload item executes under
//! [`std::panic::catch_unwind`]: a panicking item (injected fault or
//! genuine bug) discards its borrowed arena — half-mutated scratch never
//! returns to the pool — is retried once with fault injection
//! suppressed, and on a second failure becomes an
//! [`ItemOutcome::Failed`] record while the session keeps draining the
//! rest of the run. [`ServeOptions::max_inflight`] bounds admission per
//! [`ServeSession::run`] call, shedding the excess as
//! [`ItemOutcome::Overloaded`]. Deadline-cut solves come back flagged
//! [`CompletionStatus::Degraded`]; only `Exact` answers ever enter the
//! result cache.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use ktg_common::fault::{self, FaultSite};
use ktg_common::parallel::{scope_join, worker_count};
use ktg_common::{CompletionStatus, FixedBitSet, Pool, PoolGuard, Stopwatch, VertexId};
use ktg_graph::{Adjacency, DynamicGraph, GraphStore};
use ktg_index::{
    conflict_bitmaps_cached, kline_conflict_bitmaps, pll_conflict_bitmaps_into, DistanceOracle,
    DynamicNlrnl, KernelScratch, NeighborhoodCache, NlrnlIndex, PllIndex,
};

use crate::bb::{self, BbOptions, ConflictKernel, KtgOutcome};
use crate::candidates::{self, Candidate};
use crate::dktg::{self, DktgQuery};
use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;

use super::cache::{CacheKey, ResultCache};
use super::workload::WorkloadItem;
use super::ServeOptions;

/// The answer to one KTG workload item.
#[derive(Clone, Debug, PartialEq)]
pub struct KtgAnswer {
    /// Result groups, identical to a fresh sequential solve.
    pub groups: Vec<Group>,
    /// Whether this answer came out of the result cache.
    pub cached: bool,
    /// `Exact`, or `Degraded` when a deadline/budget cut the search and
    /// the groups are best-so-far. Cache hits are always `Exact` (only
    /// exact answers are inserted).
    pub status: CompletionStatus,
}

/// The answer to one DKTG workload item.
#[derive(Clone, Debug, PartialEq)]
pub struct DktgAnswer {
    /// Result groups in greedy discovery order.
    pub groups: Vec<Group>,
    /// `dL(RG)` — mean pairwise Jaccard distance.
    pub diversity: f64,
    /// `min_g QKC(g)` over the result groups.
    pub min_qkc: f64,
    /// The combined score (Eq. 4).
    pub score: f64,
    /// Whether this answer came out of the result cache.
    pub cached: bool,
    /// `Exact`, or `Degraded` when the shared greedy-round budget fired
    /// and the groups found so far were kept. Cache hits are always
    /// `Exact`.
    pub status: CompletionStatus,
}

/// The outcome of one workload item, in workload order.
#[derive(Clone, Debug, PartialEq)]
pub enum ItemOutcome {
    /// Answer to a [`WorkloadItem::Ktg`] line.
    Ktg(KtgAnswer),
    /// Answer to a [`WorkloadItem::Dktg`] line.
    Dktg(DktgAnswer),
    /// Report for an [`WorkloadItem::Insert`] / [`WorkloadItem::Remove`]
    /// line: `applied` is `false` when the edge already existed (insert),
    /// was already absent (remove), or the endpoints were invalid.
    Update {
        /// Whether the graph actually changed (and the epoch advanced).
        applied: bool,
    },
    /// The item's worker panicked on the solve *and* on the suppressed
    /// retry; its arena was discarded both times and the session moved
    /// on. `reason` renders the second panic's payload.
    Failed {
        /// Human-readable panic payload of the final attempt.
        reason: String,
    },
    /// Shed unsolved by the [`super::ServeOptions::max_inflight`]
    /// admission bound (see [`ktg_common::KtgError::Overloaded`]).
    Overloaded,
}

/// What a cached entry stores: exactly the result-bearing fields, never
/// the search stats (counters describe work performed, and a cache hit
/// performs none). Group coverage masks are stored in *canonical* bit
/// order (sorted keyword ids) — see [`MaskPermutation`].
#[derive(Clone)]
enum CachedAnswer {
    Ktg(Vec<Group>),
    Dktg { groups: Vec<Group>, diversity: f64, min_qkc: f64, score: f64 },
}

/// The bit permutation between a query's compile-order coverage masks
/// (bit `q` = `keywords().ids()[q]`) and the canonical sorted-id order
/// the cache stores.
///
/// [`CacheKey`] canonicalizes `W_Q` as a set, so two permutations of the
/// same keywords share one entry — but their *masks* index bits by
/// position in the query's id list. The group member sets and their
/// ranking are permutation-invariant (every ordering criterion reduces
/// to popcounts over consistently-permuted masks), so translating the
/// masks is all it takes to hand a permuted query the byte-identical
/// answer a fresh solve would produce.
enum MaskPermutation {
    /// The query's ids are already sorted — masks pass through untouched
    /// (the overwhelmingly common case).
    Identity,
    /// `pos[q]` = position of the query's `q`-th keyword id in sorted
    /// order.
    Permuted(Vec<u32>),
}

impl MaskPermutation {
    fn of(query: &KtgQuery) -> Self {
        let ids = query.keywords().ids();
        let mut order: Vec<u32> = (0..ids.len() as u32).collect();
        order.sort_unstable_by_key(|&q| ids[q as usize].0);
        if order.iter().enumerate().all(|(s, &q)| s as u32 == q) {
            return MaskPermutation::Identity;
        }
        let mut pos = vec![0u32; ids.len()];
        for (s, &q) in order.iter().enumerate() {
            pos[q as usize] = s as u32;
        }
        MaskPermutation::Permuted(pos)
    }

    /// Rewrites `groups` from query bit order into canonical order (for
    /// inserts). Pass `groups` already cloned.
    fn groups_to_canonical(&self, groups: Vec<Group>) -> Vec<Group> {
        self.map_groups(groups, |mask, pos| {
            pos.iter()
                .enumerate()
                .fold(0, |acc, (q, &s)| acc | (((mask >> q) & 1) << s))
        })
    }

    /// Rewrites `groups` from canonical order into query bit order (for
    /// hits).
    fn groups_from_canonical(&self, groups: Vec<Group>) -> Vec<Group> {
        self.map_groups(groups, |mask, pos| {
            pos.iter()
                .enumerate()
                .fold(0, |acc, (q, &s)| acc | (((mask >> s) & 1) << q))
        })
    }

    fn map_groups(&self, groups: Vec<Group>, f: impl Fn(u64, &[u32]) -> u64) -> Vec<Group> {
        match self {
            MaskPermutation::Identity => groups,
            MaskPermutation::Permuted(pos) => groups
                .into_iter()
                .map(|g| Group::new(g.members().to_vec(), f(g.mask(), pos)))
                .collect(),
        }
    }
}

/// Selects which distance oracle a [`ServeSession`] maintains behind its
/// conflict-row construction and pairwise probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleKind {
    /// The paper's NLRNL index, maintained *incrementally* under edge
    /// updates (the default — cheapest when updates are frequent).
    #[default]
    Nlrnl,
    /// Pruned landmark labeling: distance queries are label merges and a
    /// candidate's whole conflict row falls out of one label scan
    /// ([`ktg_index::pll_conflict_bitmaps_into`]). Each applied edge
    /// update triggers a full — but parallel and deterministic — label
    /// rebuild, so this kind favors query-heavy workloads.
    Pll,
}

impl OracleKind {
    /// Flag-facing name (`--oracle` value).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Nlrnl => "nlrnl",
            OracleKind::Pll => "pll",
        }
    }
}

/// The session's distance oracle: one mutable topology mirror bundled
/// with whichever index [`OracleKind`] selected, kept consistent across
/// edge updates. Queries always run against the frozen CSR in the
/// session's [`AttributedGraph`], rebuilt from this mirror after each
/// applied update.
pub enum ServeOracle {
    /// NLRNL with incremental maintenance.
    Nlrnl(DynamicNlrnl),
    /// PLL labels, rebuilt in parallel after each applied update.
    Pll {
        /// The mutable topology mirror.
        graph: DynamicGraph,
        /// Labels over the current topology.
        index: PllIndex,
    },
}

impl ServeOracle {
    /// Builds the session oracle, reusing a pre-built NLRNL index (a bundle reload)
    /// instead of reconstructing it. A prebuilt index under the PLL
    /// oracle, or one covering a different vertex count, is ignored and
    /// the index is rebuilt — the session must always open consistent.
    fn with_prebuilt<A: Adjacency + Sync>(
        kind: OracleKind,
        graph: &A,
        prebuilt: Option<NlrnlIndex>,
    ) -> Self {
        match kind {
            OracleKind::Nlrnl => {
                if let Some(index) = prebuilt {
                    if let Ok(d) = DynamicNlrnl::with_index(graph, index) {
                        return ServeOracle::Nlrnl(d);
                    }
                }
                ServeOracle::Nlrnl(DynamicNlrnl::new(graph))
            }
            OracleKind::Pll => ServeOracle::Pll {
                graph: DynamicGraph::from_graph(graph),
                index: PllIndex::build_parallel(graph),
            },
        }
    }

    /// The current topology.
    pub fn graph(&self) -> &DynamicGraph {
        match self {
            ServeOracle::Nlrnl(d) => d.graph(),
            ServeOracle::Pll { graph, .. } => graph,
        }
    }

    /// Applies one edge mutation, keeping the index consistent. Returns
    /// whether the topology actually changed; errors propagate from graph
    /// validation (range, self-loop).
    fn apply(&mut self, insert: bool, u: VertexId, v: VertexId) -> ktg_common::Result<bool> {
        match self {
            ServeOracle::Nlrnl(d) => {
                if insert {
                    d.insert_edge(u, v)
                } else {
                    d.remove_edge(u, v)
                }
            }
            ServeOracle::Pll { graph, index } => {
                let changed = if insert {
                    graph.insert_edge(u, v)?
                } else {
                    graph.remove_edge(u, v)?
                };
                if changed {
                    // No incremental maintenance for 2-hop labels; rebuild
                    // in parallel. The batch construction is deterministic
                    // (thread-count independent), so the post-update label
                    // set — and every answer derived from it — is too.
                    *index = PllIndex::build_parallel(&graph.to_csr());
                }
                Ok(changed)
            }
        }
    }

    /// A `Copy` borrow for the worker fan-out.
    fn as_ref(&self) -> OracleRef<'_> {
        match self {
            ServeOracle::Nlrnl(d) => OracleRef::Nlrnl(d.index()),
            ServeOracle::Pll { index, .. } => OracleRef::Pll(index),
        }
    }
}

/// Borrowed view of the session oracle that every worker carries through
/// the answer pipeline. Implements [`DistanceOracle`] by delegation;
/// `solve_ktg` additionally matches on it to pick the conflict-row
/// construction path (cached bounded BFS vs. PLL label scans).
#[derive(Clone, Copy)]
enum OracleRef<'a> {
    Nlrnl(&'a NlrnlIndex),
    Pll(&'a PllIndex),
}

impl DistanceOracle for OracleRef<'_> {
    #[inline]
    fn farther_than(&self, u: VertexId, v: VertexId, k: u32) -> bool {
        match self {
            OracleRef::Nlrnl(index) => index.farther_than(u, v, k),
            OracleRef::Pll(index) => index.farther_than(u, v, k),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            OracleRef::Nlrnl(index) => index.name(),
            OracleRef::Pll(index) => index.name(),
        }
    }
}

/// Per-worker recycled scratch: everything a fresh solve needs that is
/// sized by the query, pooled so steady-state serving allocates nothing
/// large. (The per-query keyword-mask compile still allocates inside
/// `ktg-keywords`; see DESIGN.md §13.)
#[derive(Default)]
struct Arena {
    kernel: KernelScratch,
    cands: Vec<Candidate>,
    sources: Vec<VertexId>,
    bitmaps: Vec<FixedBitSet>,
}

/// Aggregate cache instrumentation for one session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Whole answers served from the result cache.
    pub result_hits: u64,
    /// Queries that fell through to a fresh solve.
    pub result_misses: u64,
    /// Stale-epoch result entries reclaimed (lazily on lookup, or in
    /// bulk when an over-capacity insert purges a dead generation).
    pub result_reclaimed: u64,
    /// Conflict rows served from the `(vertex, k)` memo.
    pub row_hits: u64,
    /// Conflict rows computed by bounded BFS.
    pub row_misses: u64,
    /// Conflict rows evicted from the bounded `(vertex, k)` memo by its
    /// benefit-score policy.
    pub row_evictions: u64,
    /// Result-cache misses that found a same-parameter keyword-superset
    /// entry and seeded the solver's initial pruning floor from it.
    pub subset_hits: u64,
    /// Lazy-deletion record-queue compactions performed by the result
    /// cache (FIFO policy only; the cost policy keeps no record queue).
    pub compactions: u64,
    /// Current graph epoch (number of applied edge updates).
    pub epoch: u64,
}

/// A long-lived query-serving session over one attributed network.
pub struct ServeSession {
    net: AttributedGraph,
    /// Mutable mirror of `net`'s topology bundled with the configured
    /// distance index — the shared, immutable-between-updates oracle
    /// every worker reads concurrently. Queries always run against the
    /// frozen CSR in `net`, rebuilt from this mirror after each applied
    /// update.
    oracle: ServeOracle,
    /// Bumped once per applied edge update; stamps every cache entry.
    epoch: u64,
    options: ServeOptions,
    results: ResultCache<CachedAnswer>,
    rows: NeighborhoodCache,
    arenas: Pool<Arena>,
}

impl ServeSession {
    /// Opens a session over `net` with the given serving options.
    pub fn new(net: AttributedGraph, options: ServeOptions) -> Self {
        Self::with_index(net, options, None)
    }

    /// Opens a session reusing a pre-built NLRNL index (the bundle-reload
    /// path; see [`ServeOracle::with_prebuilt`] for the fallback rules).
    pub fn with_index(
        net: AttributedGraph,
        options: ServeOptions,
        index: Option<NlrnlIndex>,
    ) -> Self {
        let oracle = ServeOracle::with_prebuilt(options.oracle, net.graph(), index);
        ServeSession {
            oracle,
            epoch: 0,
            results: ResultCache::with_policy(options.cache_entries, options.cache_policy),
            rows: NeighborhoodCache::new(options.cache_entries),
            arenas: Pool::new(),
            options,
            net,
        }
    }

    /// The network in its current (post-update) state.
    #[inline]
    pub fn net(&self) -> &AttributedGraph {
        &self.net
    }

    /// The current graph epoch: the number of applied edge updates.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live NLRNL index when that oracle is configured (`None` under
    /// PLL). This is the checkpoint seam: the server persists it into
    /// the rewritten bundle so a recovery reload skips reconstruction.
    pub fn nlrnl_index(&self) -> Option<&NlrnlIndex> {
        match &self.oracle {
            ServeOracle::Nlrnl(d) => Some(d.index()),
            ServeOracle::Pll { .. } => None,
        }
    }

    /// Cache instrumentation so far.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            result_hits: self.results.hits(),
            result_misses: self.results.misses(),
            result_reclaimed: self.results.reclaimed(),
            row_hits: self.rows.hits(),
            row_misses: self.rows.misses(),
            row_evictions: self.rows.evictions(),
            subset_hits: self.results.subset_hits(),
            compactions: self.results.compactions(),
            epoch: self.epoch,
        }
    }

    /// Replays a workload, returning one outcome per item in workload
    /// order. Maximal runs of queries execute in parallel; updates apply
    /// sequentially between them.
    pub fn run(&mut self, workload: &[WorkloadItem]) -> Vec<ItemOutcome> {
        // Admission budget for this call: only *query* items count
        // against it. Edge updates always apply — shedding one would
        // silently fork the graph state the surviving queries see.
        let mut admit_left = match self.options.max_inflight {
            0 => usize::MAX,
            bound => bound,
        };
        let mut out = Vec::with_capacity(workload.len());
        let mut i = 0;
        while i < workload.len() {
            match workload[i] {
                WorkloadItem::Insert(u, v) => {
                    out.push(self.apply_update(true, u, v));
                    i += 1;
                }
                WorkloadItem::Remove(u, v) => {
                    out.push(self.apply_update(false, u, v));
                    i += 1;
                }
                _ => {
                    let start = i;
                    while i < workload.len() && workload[i].is_query() {
                        i += 1;
                    }
                    let run = &workload[start..i];
                    let admitted = run.len().min(admit_left);
                    admit_left -= admitted;
                    self.run_queries(&run[..admitted], &mut out);
                    // Shed, don't solve: refusals are reported in place
                    // so outcomes stay aligned with the workload.
                    out.extend(run[admitted..].iter().map(|_| ItemOutcome::Overloaded));
                }
            }
        }
        out
    }

    /// Answers one *query* item through the full isolated pipeline
    /// (cache, pooled arena, panic isolation, retry-once) without
    /// mutating the session.
    ///
    /// This is the network server's read-path entry point: because it
    /// takes `&self`, many connections can answer concurrently under a
    /// shared read lock while edge updates serialize behind the write
    /// lock via [`ServeSession::apply_item`]. Update items are not
    /// accepted here — they would need `&mut self` — and come back as
    /// [`ItemOutcome::Failed`] rather than panicking, so a misrouted
    /// item degrades one response instead of the whole connection.
    pub fn answer_query(&self, item: &WorkloadItem) -> ItemOutcome {
        if !item.is_query() {
            return ItemOutcome::Failed {
                reason: "update items require exclusive session access".to_string(),
            };
        }
        let oracle = self.oracle.as_ref();
        let mut slot: Option<PoolGuard<'_, Arena>> = None;
        self.answer_isolated(item, oracle, &mut slot)
    }

    /// Executes one item of any kind, taking `&mut self`: queries go
    /// through the same pipeline as [`ServeSession::answer_query`], edge
    /// updates apply (bumping the epoch on a real topology change). The
    /// network server routes update lines here under its write lock.
    pub fn apply_item(&mut self, item: &WorkloadItem) -> ItemOutcome {
        match *item {
            WorkloadItem::Insert(u, v) => self.apply_update(true, u, v),
            WorkloadItem::Remove(u, v) => self.apply_update(false, u, v),
            _ => self.answer_query(item),
        }
    }

    /// Applies one edge update. On an actual topology change the epoch
    /// advances (making every cached answer and conflict row stale) and
    /// the frozen CSR is rebuilt; a no-op update leaves both untouched so
    /// caches stay warm.
    fn apply_update(&mut self, insert: bool, u: VertexId, v: VertexId) -> ItemOutcome {
        let changed = self.oracle.apply(insert, u, v);
        // Out-of-range/self-loop updates are reported, not fatal: a
        // workload replay keeps going (the parser already rejects them in
        // files; this arm covers programmatic workloads).
        let applied = changed.unwrap_or(false);
        if applied {
            self.epoch += 1;
            self.net = AttributedGraph::with_store(
                GraphStore::from_csr(self.oracle.graph().to_csr(), self.net.graph().format()),
                self.net.vocab().clone(),
                self.net.keywords().clone(),
            );
        }
        ItemOutcome::Update { applied }
    }

    /// Answers a run of consecutive queries, fanning out across workers
    /// when both the options and the run length allow it.
    fn run_queries(&self, items: &[WorkloadItem], out: &mut Vec<ItemOutcome>) {
        let workers = match self.options.threads {
            0 => worker_count(),
            t => t,
        }
        .min(items.len())
        .max(1);

        // The session's index is immutable between updates, so every
        // worker reads the same oracle lock-free — the shared-index
        // amortization that makes the fan-out actually scale (per-worker
        // memoizing oracles would redo each other's BFS work).
        let oracle = self.oracle.as_ref();

        if workers <= 1 {
            let mut slot: Option<PoolGuard<'_, Arena>> = None;
            out.extend(
                items.iter().map(|item| self.answer_isolated(item, oracle, &mut slot)),
            );
            return;
        }

        let next = AtomicUsize::new(0);
        let parts = scope_join((0..workers).map(|_| {
            let next = &next;
            move || {
                // The arena is acquired lazily inside each isolated
                // attempt so an injected pool-acquire fault is charged to
                // the item that triggered it, not to worker startup.
                let mut slot: Option<PoolGuard<'_, Arena>> = None;
                let mut local = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    local.push((idx, self.answer_isolated(item, oracle, &mut slot)));
                }
                local
            }
        }));

        // Positional merge: claiming hands out each index exactly once,
        // so the output is in workload order regardless of worker timing.
        let mut slots: Vec<Option<ItemOutcome>> = items.iter().map(|_| None).collect();
        for (idx, outcome) in parts.into_iter().flatten() {
            slots[idx] = Some(outcome);
        }
        out.extend(slots.into_iter().map(|slot| match slot {
            Some(outcome) => outcome,
            None => unreachable!("every claimed index produces an outcome"),
        }));
    }

    /// Answers one item with panic isolation and a retry-once policy.
    ///
    /// A panicking attempt discards the borrowed arena (`slot`) so
    /// half-mutated scratch never re-enters the pool, then retries once
    /// under [`fault::suppressed`]: an *injected* fault cannot re-fire,
    /// so transients always recover to the byte-identical answer, while a
    /// genuine persistent bug fails again and is recorded as
    /// [`ItemOutcome::Failed`] — the session keeps draining.
    fn answer_isolated<'p>(
        &'p self,
        item: &WorkloadItem,
        oracle: OracleRef<'_>,
        slot: &mut Option<PoolGuard<'p, Arena>>,
    ) -> ItemOutcome {
        match self.attempt(item, oracle, slot) {
            Ok(outcome) => outcome,
            Err(_first) => {
                if let Some(guard) = slot.take() {
                    guard.discard();
                }
                match fault::suppressed(|| self.attempt(item, oracle, slot)) {
                    Ok(outcome) => outcome,
                    Err(second) => {
                        if let Some(guard) = slot.take() {
                            guard.discard();
                        }
                        ItemOutcome::Failed { reason: panic_reason(second.as_ref()) }
                    }
                }
            }
        }
    }

    /// One guarded solve attempt. `AssertUnwindSafe` is justified by the
    /// discard-on-panic contract: the arena in `slot` is the only state a
    /// panicking attempt can leave half-mutated, and `answer_isolated`
    /// throws it away before anything observes it again (the caches
    /// mutate whole entries under poison-recovering locks, and all fault
    /// sites fire *before* their lock is taken).
    fn attempt<'p>(
        &'p self,
        item: &WorkloadItem,
        oracle: OracleRef<'_>,
        slot: &mut Option<PoolGuard<'p, Arena>>,
    ) -> std::thread::Result<ItemOutcome> {
        catch_unwind(AssertUnwindSafe(|| {
            fault::inject(FaultSite::WorkerSolve);
            if slot.is_none() {
                *slot = Some(self.arenas.acquire_with(Arena::default));
            }
            match slot.as_mut() {
                Some(arena) => self.answer(item, oracle, arena),
                None => unreachable!("arena slot was filled just above"),
            }
        }))
    }

    /// Engine options for inner solves: worker parallelism lives at the
    /// workload level, so each individual search runs sequentially (which
    /// is also what makes outcomes independent of the fan-out).
    fn inner_opts(&self) -> BbOptions {
        BbOptions { threads: 1, ..self.options.engine }
    }

    fn answer(
        &self,
        item: &WorkloadItem,
        oracle: OracleRef<'_>,
        arena: &mut Arena,
    ) -> ItemOutcome {
        match item {
            WorkloadItem::Ktg(query) => ItemOutcome::Ktg(self.answer_ktg(query, oracle, arena)),
            WorkloadItem::Dktg(query) => {
                ItemOutcome::Dktg(self.answer_dktg(query, oracle, arena))
            }
            WorkloadItem::Insert(..) | WorkloadItem::Remove(..) => {
                unreachable!("updates are split out of query runs")
            }
        }
    }

    fn answer_ktg(
        &self,
        query: &KtgQuery,
        oracle: OracleRef<'_>,
        arena: &mut Arena,
    ) -> KtgAnswer {
        let opts = self.inner_opts();
        let key = self.options.use_cache.then(|| CacheKey::ktg(query, &opts));
        if let Some(key) = &key {
            if let Some(CachedAnswer::Ktg(groups)) = self.results.get(key, self.epoch) {
                let groups = MaskPermutation::of(query).groups_from_canonical(groups);
                // Checked mode re-audits even cached answers: a cache bug
                // shows up as a verification failure, not a wrong result.
                crate::verify::enforce(&self.net, query, &groups);
                return KtgAnswer { groups, cached: true, status: CompletionStatus::Exact };
            }
        }
        // Keyword-subset reuse (DESIGN.md §17): a cached answer for a
        // same-parameter superset W' ⊇ W_Q cannot be returned verbatim —
        // its top-N was selected under W'-projected coverage — but its
        // groups, re-projected onto W_Q and filtered to W_Q's candidate
        // set, are feasible groups of *this* query, so their N-th-best
        // projected coverage is a sound initial Theorem-2 floor. Skipped
        // for order-dependent solves (node budget / coverage early-exit),
        // whose results are defined by unseeded discovery order.
        let seed = if self.options.subset_reuse
            && opts.node_budget.is_none()
            && opts.stop_at_coverage.is_none()
        {
            key.as_ref().and_then(|key| match self.results.get_superset(key, self.epoch) {
                Some((super_kw, CachedAnswer::Ktg(groups))) => Some(SubsetSeed {
                    query_kw: key.keywords().to_vec(),
                    super_kw,
                    groups,
                }),
                _ => None,
            })
        } else {
            None
        };
        let clock = Stopwatch::start();
        let outcome = self.solve_ktg(query, oracle, arena, &opts, seed);
        let solve_ns = clock.elapsed_nanos();
        // Only exact answers are cacheable: a deadline-cut result is
        // valid best-so-far but not canonical, and must not shadow the
        // exact answer for later repeats of the same query.
        if outcome.status.is_exact() {
            if let Some(key) = key {
                let canonical =
                    MaskPermutation::of(query).groups_to_canonical(outcome.groups.clone());
                self.results.insert_with_cost(
                    key,
                    self.epoch,
                    CachedAnswer::Ktg(canonical),
                    solve_ns,
                );
            }
        }
        KtgAnswer { groups: outcome.groups, cached: false, status: outcome.status }
    }

    /// A fresh KTG solve through the pooled arena, taking the
    /// bitmap-vs-oracle fork on exactly [`ConflictKernel::wants_bitmap`]
    /// so stats and results match [`bb::solve`] bit for bit.
    fn solve_ktg(
        &self,
        query: &KtgQuery,
        oracle: OracleRef<'_>,
        arena: &mut Arena,
        opts: &BbOptions,
        seed: Option<SubsetSeed>,
    ) -> KtgOutcome {
        let masks = self.net.compile(query.keywords());
        candidates::collect(self.net.graph(), &masks, &mut arena.cands);
        // The floor only tightens pruning — never what is enumerable — so
        // seeded and unseeded solves return byte-identical groups.
        let floor = seed.and_then(|seed| seed.floor(&arena.cands, query.n()));
        if !ConflictKernel::wants_bitmap(arena.cands.len(), opts) {
            return bb::solve_with_kernel(
                &self.net,
                query,
                &oracle,
                &arena.cands,
                &ConflictKernel::Oracle,
                opts,
                floor,
            );
        }
        arena.sources.clear();
        arena.sources.extend(arena.cands.iter().map(|c| c.v));
        match oracle {
            OracleRef::Pll(pll) => {
                // PLL fast path: every row falls out of label merges,
                // bit-identical to the BFS rows (enforced in ktg-index).
                // The `(vertex, k)` memo is bypassed — the labels already
                // amortize across queries — so `row_hits`/`row_misses`
                // stay untouched in this mode.
                pll_conflict_bitmaps_into(pll, &arena.sources, query.k(), &mut arena.bitmaps);
            }
            OracleRef::Nlrnl(_) if self.options.use_cache => {
                conflict_bitmaps_cached(
                    self.net.graph(),
                    &arena.sources,
                    query.k(),
                    &self.rows,
                    self.epoch,
                    &mut arena.kernel,
                    &mut arena.bitmaps,
                );
            }
            OracleRef::Nlrnl(_) => {
                arena.bitmaps =
                    kline_conflict_bitmaps(self.net.graph(), &arena.sources, query.k());
            }
        }
        let kernel = ConflictKernel::Bitmap(std::mem::take(&mut arena.bitmaps));
        let outcome =
            bb::solve_with_kernel(&self.net, query, &oracle, &arena.cands, &kernel, opts, floor);
        if let Some(rows) = kernel.into_bitmaps() {
            // Hand the rows back to the arena so the next query reuses
            // their word allocations.
            arena.bitmaps = rows;
        }
        outcome
    }

    fn answer_dktg(
        &self,
        query: &DktgQuery,
        oracle: OracleRef<'_>,
        arena: &mut Arena,
    ) -> DktgAnswer {
        let opts = self.inner_opts();
        let key = self.options.use_cache.then(|| CacheKey::dktg(query, &opts));
        if let Some(key) = &key {
            if let Some(CachedAnswer::Dktg { groups, diversity, min_qkc, score }) =
                self.results.get(key, self.epoch)
            {
                let groups =
                    MaskPermutation::of(query.base()).groups_from_canonical(groups);
                crate::verify::enforce_dktg(&self.net, query, &groups);
                return DktgAnswer {
                    groups,
                    diversity,
                    min_qkc,
                    score,
                    cached: true,
                    status: CompletionStatus::Exact,
                };
            }
        }
        // Same code path as `dktg::solve_with_options`, minus the
        // candidate-vector allocation: greedy rounds consume the pooled
        // vector in place. No subset seeding here: DKTG's greedy rounds
        // are defined by discovery order, which a pre-published floor
        // would perturb.
        let clock = Stopwatch::start();
        let masks = self.net.compile(query.base().keywords());
        candidates::collect(self.net.graph(), &masks, &mut arena.cands);
        let outcome = dktg::solve_with_candidates(query, &oracle, &mut arena.cands, &opts);
        let solve_ns = clock.elapsed_nanos();
        crate::verify::enforce_dktg(&self.net, query, &outcome.groups);
        if let Some(key) = key.filter(|_| outcome.status.is_exact()) {
            let canonical =
                MaskPermutation::of(query.base()).groups_to_canonical(outcome.groups.clone());
            self.results.insert_with_cost(
                key,
                self.epoch,
                CachedAnswer::Dktg {
                    groups: canonical,
                    diversity: outcome.diversity,
                    min_qkc: outcome.min_qkc,
                    score: outcome.score,
                },
                solve_ns,
            );
        }
        DktgAnswer {
            groups: outcome.groups,
            diversity: outcome.diversity,
            min_qkc: outcome.min_qkc,
            score: outcome.score,
            cached: false,
            status: outcome.status,
        }
    }
}

/// A superset cache entry selected for keyword-subset floor seeding:
/// the probing query's canonical (sorted) keyword ids, the cached
/// superset's, and the cached groups with masks in the superset's
/// canonical bit order.
struct SubsetSeed {
    query_kw: Vec<u32>,
    super_kw: Vec<u32>,
    groups: Vec<Group>,
}

impl SubsetSeed {
    /// N-th-best projected coverage over the seed groups that are valid
    /// groups of the subset query, or `None` when fewer than `n` qualify.
    ///
    /// Validity needs only one check beyond what the cached entry already
    /// guarantees (same epoch ⇒ identical distances; same `p`/`k` in the
    /// parameter signature ⇒ identical size and tenuity constraints):
    /// every member must be a candidate of the *subset* query, because
    /// the engine only enumerates candidate groups and a member covering
    /// only `W' \ W_Q` keywords is unreachable here. Projection commutes
    /// with the per-member mask union (`W_Q ⊆ W'`), so a surviving
    /// group's projected mask equals the mask a fresh subset solve would
    /// assign it — which is also why re-projected masks pass the
    /// checked-mode audit.
    fn floor(&self, cands: &[Candidate], n: usize) -> Option<u32> {
        // Bit `s'` of a canonical-W' mask maps to bit `s` of the
        // canonical-W_Q mask when keyword `super_kw[s']` is in `W_Q`.
        let proj: Vec<Option<u32>> = self
            .super_kw
            .iter()
            .map(|id| self.query_kw.binary_search(id).ok().map(|s| s as u32))
            .collect();
        let mut members: Vec<VertexId> = cands.iter().map(|c| c.v).collect();
        members.sort_unstable();
        let mut counts: Vec<u32> = self
            .groups
            .iter()
            .filter_map(|g| {
                if !g.members().iter().all(|m| members.binary_search(m).is_ok()) {
                    return None;
                }
                let mask = proj.iter().enumerate().fold(0u64, |acc, (sp, s)| match s {
                    Some(s) if (g.mask() >> sp) & 1 == 1 => acc | (1u64 << s),
                    _ => acc,
                });
                // Members are candidates, so each covers ≥ 1 subset-query
                // keyword and the projected mask is provably nonzero; the
                // guard is defense in depth against a malformed entry.
                (mask != 0).then(|| mask.count_ones())
            })
            .collect();
        if counts.len() < n {
            return None;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.get(n - 1).copied().filter(|&floor| floor > 0)
    }
}

/// Renders a caught panic payload for an [`ItemOutcome::Failed`] record.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<fault::InjectedFault>() {
        return injected.to_string();
    }
    if let Some(msg) = payload.downcast_ref::<&str>() {
        return (*msg).to_string();
    }
    if let Some(msg) = payload.downcast_ref::<String>() {
        return msg.clone();
    }
    "worker panicked with a non-string payload".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::serve::workload::parse_workload;
    use ktg_graph::DynamicGraph;
    use ktg_index::BfsOracle;

    fn paper_workload(net: &AttributedGraph) -> Vec<WorkloadItem> {
        parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2 gamma=0.5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=GD,QP,SN,DQ,GQ p=3 k=1 n=2 gamma=0.5
",
            net,
        )
        .unwrap()
    }

    fn reference_ktg(net: &AttributedGraph) -> Vec<Group> {
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        bb::solve(net, &query, &oracle, &BbOptions::vkc_deg()).groups
    }

    #[test]
    fn serves_paper_answers_and_caches_repeats() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let outcomes = session.run(&paper_workload(&net));
        let ItemOutcome::Ktg(first) = &outcomes[0] else { panic!("expected ktg") };
        assert_eq!(first.groups, expect);
        assert!(!first.cached);
        let ItemOutcome::Ktg(repeat) = &outcomes[2] else { panic!("expected ktg") };
        assert!(repeat.cached, "identical query must hit the cache");
        assert_eq!(repeat.groups, expect);
        let ItemOutcome::Dktg(permuted) = &outcomes[3] else { panic!("expected dktg") };
        assert!(permuted.cached, "keyword permutation shares the canonical key");
        let stats = session.stats();
        assert_eq!(stats.result_hits, 2);
        assert_eq!(stats.result_misses, 2);
    }

    #[test]
    fn no_cache_mode_still_matches() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        let opts = ServeOptions { use_cache: false, ..ServeOptions::default() };
        let mut session = ServeSession::new(net.clone(), opts);
        let outcomes = session.run(&paper_workload(&net));
        for outcome in &outcomes {
            if let ItemOutcome::Ktg(ans) = outcome {
                assert!(!ans.cached);
                assert_eq!(ans.groups, expect);
            }
        }
        assert_eq!(session.stats().result_hits, 0);
        assert_eq!(session.stats().row_hits, 0);
    }

    #[test]
    fn parallel_output_is_in_workload_order() {
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        for _ in 0..4 {
            workload.extend(paper_workload(&net));
        }
        let sequential = ServeSession::new(net.clone(), ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        })
        .run(&workload);
        for threads in [2usize, 4, 0] {
            let parallel = ServeSession::new(net.clone(), ServeOptions {
                threads,
                ..ServeOptions::default()
            })
            .run(&workload);
            // `cached` flags may differ (racing workers can both miss),
            // so compare the result-bearing fields.
            assert_eq!(sequential.len(), parallel.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                match (s, p) {
                    (ItemOutcome::Ktg(a), ItemOutcome::Ktg(b)) => assert_eq!(a.groups, b.groups),
                    (ItemOutcome::Dktg(a), ItemOutcome::Dktg(b)) => {
                        assert_eq!(a.groups, b.groups);
                        assert_eq!(a.score, b.score);
                    }
                    other => panic!("outcome shape diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn permuted_keywords_hit_with_translated_masks() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=GD,GQ,DQ,QP,SN p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let out = session.run(&workload);
        let ItemOutcome::Ktg(first) = &out[0] else { panic!("expected ktg") };
        let ItemOutcome::Ktg(second) = &out[1] else { panic!("expected ktg") };
        assert!(second.cached, "permutations share the canonical entry");
        // The hit's masks must be in the *permuted* query's bit order —
        // byte-identical to solving that query fresh (mask field and all).
        let permuted = KtgQuery::new(
            net.query_keywords(["GD", "GQ", "DQ", "QP", "SN"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let fresh = bb::solve(&net, &permuted, &oracle, &BbOptions::vkc_deg());
        assert_eq!(second.groups, fresh.groups);
        // Same member sets either way, different mask bit order.
        for (a, b) in first.groups.iter().zip(&second.groups) {
            assert_eq!(a.members(), b.members());
            assert_eq!(a.coverage_count(), b.coverage_count());
        }
    }

    #[test]
    fn updates_bump_epoch_and_invalidate() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
remove 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let outcomes = session.run(&workload);
        assert_eq!(outcomes[1], ItemOutcome::Update { applied: true });
        let ItemOutcome::Ktg(after) = &outcomes[2] else { panic!("expected ktg") };
        assert!(!after.cached, "update must invalidate the cached answer");
        // Post-update answer matches a fresh solve against the new graph.
        let mut dyn_g = DynamicGraph::from_graph(net.graph());
        dyn_g.insert_edge(VertexId(0), VertexId(5)).unwrap();
        let mutated = AttributedGraph::new(
            dyn_g.to_csr(),
            net.vocab().clone(),
            net.keywords().clone(),
        );
        assert_eq!(after.groups, reference_ktg(&mutated));
        assert_eq!(outcomes[3], ItemOutcome::Update { applied: false }, "duplicate insert");
        assert_eq!(outcomes[4], ItemOutcome::Update { applied: true });
        let ItemOutcome::Ktg(restored) = &outcomes[5] else { panic!("expected ktg") };
        assert_eq!(restored.groups, reference_ktg(&net), "remove restored the topology");
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn invalid_programmatic_update_is_reported_not_fatal() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net, ServeOptions::default());
        let out = session.run(&[WorkloadItem::Insert(VertexId(0), VertexId(9999))]);
        assert_eq!(out, vec![ItemOutcome::Update { applied: false }]);
        assert_eq!(session.epoch(), 0);
    }

    /// Serializes tests that arm the process-global fault registry.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A query interned against a larger vocabulary: its keyword id is
    /// out of range for figure1's inverted index, so compiling it panics
    /// (a genuine, persistent bug — unlike an injected fault, the retry
    /// fails the same way).
    fn poison_item() -> WorkloadItem {
        let mut vocab = ktg_keywords::Vocabulary::new();
        vocab.intern_all(fixtures::FIGURE1_TERMS);
        vocab.intern_all(["XX"]);
        let qk = ktg_keywords::QueryKeywords::from_terms(&vocab, ["XX"]).unwrap();
        WorkloadItem::Ktg(KtgQuery::new(qk, 2, 1, 1).unwrap())
    }

    #[test]
    fn worker_panic_is_isolated_and_session_drains() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        for threads in [1usize, 2] {
            let mut session = ServeSession::new(
                net.clone(),
                ServeOptions { threads, ..ServeOptions::default() },
            );
            let mut workload = paper_workload(&net);
            workload.insert(1, poison_item());
            let out = session.run(&workload);
            assert_eq!(out.len(), 5);
            let ItemOutcome::Failed { reason } = &out[1] else {
                panic!("expected Failed, got {:?}", out[1])
            };
            assert!(reason.contains("index out of bounds"), "reason: {reason}");
            let ItemOutcome::Ktg(first) = &out[0] else { panic!("expected ktg") };
            assert_eq!(first.groups, expect);
            let ItemOutcome::Ktg(repeat) = &out[3] else { panic!("expected ktg") };
            assert_eq!(repeat.groups, expect, "items after the failure still answer");
            // The session itself survives the panic: a fresh run works.
            let again = session.run(&paper_workload(&net));
            assert!(matches!(&again[0], ItemOutcome::Ktg(a) if a.groups == expect));
        }
    }

    #[test]
    fn injected_faults_recover_byte_identically() {
        let _guard = fault_lock();
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        workload.extend(paper_workload(&net));
        let opts = || ServeOptions { threads: 1, ..ServeOptions::default() };
        let baseline = ServeSession::new(net.clone(), opts()).run(&workload);
        for seed in [1u64, 7, 99] {
            ktg_common::fault::set_config(Some(ktg_common::FaultConfig::new(
                &ktg_common::fault::ALL_SITES,
                1.0,
                seed,
            )));
            let faulted = ServeSession::new(net.clone(), opts()).run(&workload);
            ktg_common::fault::set_config(None);
            assert_eq!(baseline, faulted, "seed {seed}: retries must restore the answers");
            assert!(
                !faulted.iter().any(|o| matches!(o, ItemOutcome::Failed { .. })),
                "injected faults are transient — retry-once must absorb them"
            );
        }
    }

    #[test]
    fn max_inflight_sheds_excess_as_overloaded() {
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        workload.extend(paper_workload(&net));
        let mut session = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, max_inflight: 3, ..ServeOptions::default() },
        );
        let out = session.run(&workload);
        assert_eq!(out.len(), 8);
        for o in &out[..3] {
            assert!(!matches!(o, ItemOutcome::Overloaded), "admitted items are solved");
        }
        for o in &out[3..] {
            assert_eq!(*o, ItemOutcome::Overloaded);
        }
        // The budget is per `run` call: the next call admits again.
        let again = session.run(&paper_workload(&net));
        assert!(matches!(again[0], ItemOutcome::Ktg(_)));
        // Updates never count against (or get shed by) the bound.
        let mixed = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let mut tight = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, max_inflight: 1, ..ServeOptions::default() },
        );
        let out = tight.run(&mixed);
        assert!(matches!(out[0], ItemOutcome::Ktg(_)));
        assert_eq!(out[1], ItemOutcome::Update { applied: true });
        assert_eq!(out[2], ItemOutcome::Overloaded);
    }

    #[test]
    fn degraded_answers_are_flagged_and_never_cached() {
        let net = fixtures::figure1();
        let engine = BbOptions { node_budget: Some(1), ..BbOptions::vkc_deg() };
        let mut session = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, engine, ..ServeOptions::default() },
        );
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let out = session.run(&workload);
        for o in &out {
            let ItemOutcome::Ktg(ans) = o else { panic!("expected ktg") };
            assert!(!ans.status.is_exact(), "budget-cut solves must be flagged");
            assert!(!ans.cached, "degraded answers must not come from the cache");
        }
        assert_eq!(session.stats().result_hits, 0, "nothing degraded was inserted");
    }

    /// The server's item-at-a-time entry points must produce the same
    /// result-bearing outcomes as the batched `run` path — this is the
    /// contract that makes TCP responses byte-identical to `ktg batch`.
    #[test]
    fn shared_entry_points_match_run() {
        let net = fixtures::figure1();
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2 gamma=0.5
remove 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let opts = || ServeOptions { threads: 1, ..ServeOptions::default() };
        let batched = ServeSession::new(net.clone(), opts()).run(&workload);
        let mut item_session = ServeSession::new(net.clone(), opts());
        let itemized: Vec<ItemOutcome> =
            workload.iter().map(|item| item_session.apply_item(item)).collect();
        assert_eq!(batched, itemized);
        // answer_query never mutates: an update item routed there is a
        // reported failure, and the epoch stands still.
        let epoch = item_session.epoch();
        let misrouted = item_session.answer_query(&WorkloadItem::Insert(VertexId(0), VertexId(5)));
        assert!(matches!(misrouted, ItemOutcome::Failed { .. }));
        assert_eq!(item_session.epoch(), epoch);
    }

    #[test]
    fn subset_reuse_seeds_floor_without_changing_answers() {
        let net = fixtures::figure1();
        // Superset first, subset after: the subset query's cache miss
        // probes the superset entry and seeds the engine's initial floor.
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=SN,QP,DQ p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let mut seeded = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, ..ServeOptions::default() },
        );
        let out = seeded.run(&workload);
        assert_eq!(
            seeded.stats().subset_hits,
            1,
            "the subset miss must find the same-parameter superset entry"
        );
        // Byte-identical to a session with reuse disabled (debug builds
        // re-audit every returned group, so the re-projected masks also
        // pass the checked-mode verifier here).
        let mut plain = ServeSession::new(
            net.clone(),
            ServeOptions { threads: 1, subset_reuse: false, ..ServeOptions::default() },
        );
        assert_eq!(out, plain.run(&workload));
        assert_eq!(plain.stats().subset_hits, 0);
        // And byte-identical to a fresh sequential solve of the subset
        // query; the seeded path never fabricates a cache hit.
        let query = KtgQuery::new(net.query_keywords(["SN", "QP", "DQ"]).unwrap(), 3, 1, 2)
            .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let fresh = bb::solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let ItemOutcome::Ktg(sub) = &out[1] else { panic!("expected ktg") };
        assert_eq!(sub.groups, fresh.groups);
        assert!(!sub.cached, "subset reuse seeds the search, it is not a hit");
    }

    #[test]
    fn subset_seed_floor_projects_masks_exactly() {
        // Exercise SubsetSeed::floor directly: W' = {0, 2, 5}, W_Q = {0, 5}.
        // Canonical W' bit 1 (keyword 2) is outside W_Q and must vanish;
        // bits 0 and 2 map to W_Q bits 0 and 1.
        let mk = |v: u32, mask: u64| Candidate {
            v: VertexId(v),
            mask,
            degree: 1,
        };
        let cands = vec![mk(1, 0b01), mk(3, 0b10), mk(7, 0b11)];
        let seed = SubsetSeed {
            query_kw: vec![0, 5],
            super_kw: vec![0, 2, 5],
            groups: vec![
                // Covers all three W' keywords → projects to 0b11 (2).
                Group::new(vec![VertexId(1), VertexId(7)], 0b111),
                // Covers {0, 2} → keyword 2 drops out → 0b01 (1).
                Group::new(vec![VertexId(1), VertexId(3)], 0b011),
                // Contains a non-candidate member → filtered out entirely.
                Group::new(vec![VertexId(1), VertexId(9)], 0b111),
            ],
        };
        assert_eq!(seed.floor(&cands, 1), Some(2));
        assert_eq!(seed.floor(&cands, 2), Some(1));
        assert_eq!(seed.floor(&cands, 3), None, "only two groups survive the filter");
    }

    #[test]
    fn pll_oracle_session_matches_nlrnl() {
        let net = fixtures::figure1();
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2 gamma=0.5
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
remove 0 5
ktg terms=SN,QP,DQ p=2 k=2 n=1
",
            &net,
        )
        .unwrap();
        // Both the bitmap-kernel path (PLL label-scan rows) and the
        // pairwise-probe path (threshold 0) must agree with NLRNL.
        for engine in [BbOptions::vkc_deg(), BbOptions::vkc_deg().with_bitmap_threshold(0)] {
            let opts = |oracle| ServeOptions {
                threads: 1,
                oracle,
                engine,
                ..ServeOptions::default()
            };
            let nlrnl = ServeSession::new(net.clone(), opts(OracleKind::Nlrnl)).run(&workload);
            let mut pll_session = ServeSession::new(net.clone(), opts(OracleKind::Pll));
            let pll = pll_session.run(&workload);
            assert_eq!(nlrnl, pll, "threshold={}", engine.bitmap_threshold);
            assert_eq!(
                pll_session.stats().row_hits,
                0,
                "PLL mode bypasses the (vertex, k) memo entirely"
            );
            assert_eq!(pll_session.epoch(), 2, "updates rebuilt the labels twice");
        }
    }

    #[test]
    fn cache_policies_serve_identical_answers() {
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        workload.extend(paper_workload(&net));
        let run_with = |policy| {
            ServeSession::new(
                net.clone(),
                ServeOptions { threads: 1, cache_policy: policy, ..ServeOptions::default() },
            )
            .run(&workload)
        };
        use crate::serve::CachePolicy;
        assert_eq!(run_with(CachePolicy::Fifo), run_with(CachePolicy::Cost));
    }

    #[test]
    fn row_cache_reused_across_distinct_queries() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        // Distinct p ⇒ distinct result-cache keys, but identical k and
        // candidate sets ⇒ the second query's conflict rows all hit.
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=SN,QP,DQ,GQ,GD p=2 k=1 n=2
",
            &net,
        )
        .unwrap();
        session.run(&workload);
        let stats = session.stats();
        assert_eq!(stats.result_hits, 0);
        assert!(stats.row_hits > 0, "second query must reuse (vertex, k) rows");
    }
}

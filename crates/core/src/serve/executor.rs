//! The batched workload executor.
//!
//! [`ServeSession`] owns one attributed network and replays
//! [`WorkloadItem`] scripts against it, amortizing everything that a
//! query-at-a-time loop re-pays per query:
//!
//! * **Scratch pooling** — each worker borrows an [`Arena`] (candidate
//!   vector, kernel scratch, bitmap rows) from a [`ktg_common::Pool`];
//!   steady state performs no large allocations per query.
//! * **Result caching** — whole answers are memoized in a
//!   [`ResultCache`] keyed on the canonicalized query, guarded by the
//!   session's graph epoch.
//! * **Conflict-row reuse** — fresh solves assemble their conflict-bitmap
//!   kernels through the [`ktg_index::NeighborhoodCache`] `(vertex, k)`
//!   memo instead of re-running one bounded BFS per candidate per query.
//!
//! Updates are serialization points: [`ServeSession::run`] splits the
//! workload into maximal query runs separated by edge updates, fans each
//! run out over [`ktg_common::parallel::scope_join`] workers (atomic
//! work claiming, results merged positionally so output order equals
//! workload order), and applies updates sequentially under `&mut self` —
//! which is the whole invalidation story: an epoch bump cannot race a
//! lookup, so a stale answer is unreachable by construction.
//!
//! **Answer fidelity.** Every path — pooled, cached, parallel — returns
//! groups and scores byte-identical to a fresh sequential
//! [`bb::solve`] / [`crate::dktg::solve_with_options`] call against the
//! current graph: candidate extraction is shared, the bitmap-vs-oracle
//! fork runs on [`ConflictKernel::wants_bitmap`] exactly, and the cached
//! kernel rows are bit-for-bit those of
//! [`ktg_index::kline_conflict_bitmaps`]. The differential suite
//! (`tests/tests/serve_diff.rs`) enforces this across thread counts,
//! cache settings, and interleaved updates.

use std::sync::atomic::{AtomicUsize, Ordering};

use ktg_common::parallel::{scope_join, worker_count};
use ktg_common::{FixedBitSet, Pool, VertexId};
use ktg_index::{
    conflict_bitmaps_cached, kline_conflict_bitmaps, DistanceOracle, DynamicNlrnl, KernelScratch,
    NeighborhoodCache,
};

use crate::bb::{self, BbOptions, ConflictKernel, KtgOutcome};
use crate::candidates::{self, Candidate};
use crate::dktg::{self, DktgQuery};
use crate::group::Group;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;

use super::cache::{CacheKey, ResultCache};
use super::workload::WorkloadItem;
use super::ServeOptions;

/// The answer to one KTG workload item.
#[derive(Clone, Debug, PartialEq)]
pub struct KtgAnswer {
    /// Result groups, identical to a fresh sequential solve.
    pub groups: Vec<Group>,
    /// Whether this answer came out of the result cache.
    pub cached: bool,
}

/// The answer to one DKTG workload item.
#[derive(Clone, Debug, PartialEq)]
pub struct DktgAnswer {
    /// Result groups in greedy discovery order.
    pub groups: Vec<Group>,
    /// `dL(RG)` — mean pairwise Jaccard distance.
    pub diversity: f64,
    /// `min_g QKC(g)` over the result groups.
    pub min_qkc: f64,
    /// The combined score (Eq. 4).
    pub score: f64,
    /// Whether this answer came out of the result cache.
    pub cached: bool,
}

/// The outcome of one workload item, in workload order.
#[derive(Clone, Debug, PartialEq)]
pub enum ItemOutcome {
    /// Answer to a [`WorkloadItem::Ktg`] line.
    Ktg(KtgAnswer),
    /// Answer to a [`WorkloadItem::Dktg`] line.
    Dktg(DktgAnswer),
    /// Report for an [`WorkloadItem::Insert`] / [`WorkloadItem::Remove`]
    /// line: `applied` is `false` when the edge already existed (insert),
    /// was already absent (remove), or the endpoints were invalid.
    Update {
        /// Whether the graph actually changed (and the epoch advanced).
        applied: bool,
    },
}

/// What a cached entry stores: exactly the result-bearing fields, never
/// the search stats (counters describe work performed, and a cache hit
/// performs none). Group coverage masks are stored in *canonical* bit
/// order (sorted keyword ids) — see [`MaskPermutation`].
#[derive(Clone)]
enum CachedAnswer {
    Ktg(Vec<Group>),
    Dktg { groups: Vec<Group>, diversity: f64, min_qkc: f64, score: f64 },
}

/// The bit permutation between a query's compile-order coverage masks
/// (bit `q` = `keywords().ids()[q]`) and the canonical sorted-id order
/// the cache stores.
///
/// [`CacheKey`] canonicalizes `W_Q` as a set, so two permutations of the
/// same keywords share one entry — but their *masks* index bits by
/// position in the query's id list. The group member sets and their
/// ranking are permutation-invariant (every ordering criterion reduces
/// to popcounts over consistently-permuted masks), so translating the
/// masks is all it takes to hand a permuted query the byte-identical
/// answer a fresh solve would produce.
enum MaskPermutation {
    /// The query's ids are already sorted — masks pass through untouched
    /// (the overwhelmingly common case).
    Identity,
    /// `pos[q]` = position of the query's `q`-th keyword id in sorted
    /// order.
    Permuted(Vec<u32>),
}

impl MaskPermutation {
    fn of(query: &KtgQuery) -> Self {
        let ids = query.keywords().ids();
        let mut order: Vec<u32> = (0..ids.len() as u32).collect();
        order.sort_unstable_by_key(|&q| ids[q as usize].0);
        if order.iter().enumerate().all(|(s, &q)| s as u32 == q) {
            return MaskPermutation::Identity;
        }
        let mut pos = vec![0u32; ids.len()];
        for (s, &q) in order.iter().enumerate() {
            pos[q as usize] = s as u32;
        }
        MaskPermutation::Permuted(pos)
    }

    /// Rewrites `groups` from query bit order into canonical order (for
    /// inserts). Pass `groups` already cloned.
    fn groups_to_canonical(&self, groups: Vec<Group>) -> Vec<Group> {
        self.map_groups(groups, |mask, pos| {
            pos.iter()
                .enumerate()
                .fold(0, |acc, (q, &s)| acc | (((mask >> q) & 1) << s))
        })
    }

    /// Rewrites `groups` from canonical order into query bit order (for
    /// hits).
    fn groups_from_canonical(&self, groups: Vec<Group>) -> Vec<Group> {
        self.map_groups(groups, |mask, pos| {
            pos.iter()
                .enumerate()
                .fold(0, |acc, (q, &s)| acc | (((mask >> s) & 1) << q))
        })
    }

    fn map_groups(&self, groups: Vec<Group>, f: impl Fn(u64, &[u32]) -> u64) -> Vec<Group> {
        match self {
            MaskPermutation::Identity => groups,
            MaskPermutation::Permuted(pos) => groups
                .into_iter()
                .map(|g| Group::new(g.members().to_vec(), f(g.mask(), pos)))
                .collect(),
        }
    }
}

/// Per-worker recycled scratch: everything a fresh solve needs that is
/// sized by the query, pooled so steady-state serving allocates nothing
/// large. (The per-query keyword-mask compile still allocates inside
/// `ktg-keywords`; see DESIGN.md §13.)
#[derive(Default)]
struct Arena {
    kernel: KernelScratch,
    cands: Vec<Candidate>,
    sources: Vec<VertexId>,
    bitmaps: Vec<FixedBitSet>,
}

/// Aggregate cache instrumentation for one session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Whole answers served from the result cache.
    pub result_hits: u64,
    /// Queries that fell through to a fresh solve.
    pub result_misses: u64,
    /// Conflict rows served from the `(vertex, k)` memo.
    pub row_hits: u64,
    /// Conflict rows computed by bounded BFS.
    pub row_misses: u64,
    /// Current graph epoch (number of applied edge updates).
    pub epoch: u64,
}

/// A long-lived query-serving session over one attributed network.
pub struct ServeSession {
    net: AttributedGraph,
    /// Mutable mirror of `net`'s topology bundled with an incrementally
    /// maintained NLRNL index — the shared, immutable-between-updates
    /// distance oracle every worker reads concurrently. Queries always
    /// run against the frozen CSR in `net`, rebuilt from this mirror
    /// after each applied update.
    dynamic: DynamicNlrnl,
    /// Bumped once per applied edge update; stamps every cache entry.
    epoch: u64,
    options: ServeOptions,
    results: ResultCache<CachedAnswer>,
    rows: NeighborhoodCache,
    arenas: Pool<Arena>,
}

impl ServeSession {
    /// Opens a session over `net` with the given serving options.
    pub fn new(net: AttributedGraph, options: ServeOptions) -> Self {
        let dynamic = DynamicNlrnl::new(net.graph());
        ServeSession {
            dynamic,
            epoch: 0,
            results: ResultCache::new(options.cache_entries),
            rows: NeighborhoodCache::new(options.cache_entries),
            arenas: Pool::new(),
            options,
            net,
        }
    }

    /// The network in its current (post-update) state.
    #[inline]
    pub fn net(&self) -> &AttributedGraph {
        &self.net
    }

    /// The current graph epoch: the number of applied edge updates.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cache instrumentation so far.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            result_hits: self.results.hits(),
            result_misses: self.results.misses(),
            row_hits: self.rows.hits(),
            row_misses: self.rows.misses(),
            epoch: self.epoch,
        }
    }

    /// Replays a workload, returning one outcome per item in workload
    /// order. Maximal runs of queries execute in parallel; updates apply
    /// sequentially between them.
    pub fn run(&mut self, workload: &[WorkloadItem]) -> Vec<ItemOutcome> {
        let mut out = Vec::with_capacity(workload.len());
        let mut i = 0;
        while i < workload.len() {
            match workload[i] {
                WorkloadItem::Insert(u, v) => {
                    out.push(self.apply_update(true, u, v));
                    i += 1;
                }
                WorkloadItem::Remove(u, v) => {
                    out.push(self.apply_update(false, u, v));
                    i += 1;
                }
                _ => {
                    let start = i;
                    while i < workload.len() && workload[i].is_query() {
                        i += 1;
                    }
                    self.run_queries(&workload[start..i], &mut out);
                }
            }
        }
        out
    }

    /// Applies one edge update. On an actual topology change the epoch
    /// advances (making every cached answer and conflict row stale) and
    /// the frozen CSR is rebuilt; a no-op update leaves both untouched so
    /// caches stay warm.
    fn apply_update(&mut self, insert: bool, u: VertexId, v: VertexId) -> ItemOutcome {
        let changed = if insert {
            self.dynamic.insert_edge(u, v)
        } else {
            self.dynamic.remove_edge(u, v)
        };
        // Out-of-range/self-loop updates are reported, not fatal: a
        // workload replay keeps going (the parser already rejects them in
        // files; this arm covers programmatic workloads).
        let applied = changed.unwrap_or(false);
        if applied {
            self.epoch += 1;
            self.net = AttributedGraph::new(
                self.dynamic.graph().to_csr(),
                self.net.vocab().clone(),
                self.net.keywords().clone(),
            );
        }
        ItemOutcome::Update { applied }
    }

    /// Answers a run of consecutive queries, fanning out across workers
    /// when both the options and the run length allow it.
    fn run_queries(&self, items: &[WorkloadItem], out: &mut Vec<ItemOutcome>) {
        let workers = match self.options.threads {
            0 => worker_count(),
            t => t,
        }
        .min(items.len())
        .max(1);

        // The session's NLRNL index is immutable between updates, so
        // every worker reads the same oracle lock-free — the shared-index
        // amortization that makes the fan-out actually scale (per-worker
        // memoizing oracles would redo each other's BFS work).
        let oracle = self.dynamic.index();

        if workers <= 1 {
            let mut arena = self.arenas.acquire_with(Arena::default);
            out.extend(items.iter().map(|item| self.answer(item, oracle, &mut arena)));
            return;
        }

        let next = AtomicUsize::new(0);
        let parts = scope_join((0..workers).map(|_| {
            let next = &next;
            move || {
                let mut arena = self.arenas.acquire_with(Arena::default);
                let mut local = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    local.push((idx, self.answer(item, oracle, &mut arena)));
                }
                local
            }
        }));

        // Positional merge: claiming hands out each index exactly once,
        // so the output is in workload order regardless of worker timing.
        let mut slots: Vec<Option<ItemOutcome>> = items.iter().map(|_| None).collect();
        for (idx, outcome) in parts.into_iter().flatten() {
            slots[idx] = Some(outcome);
        }
        out.extend(slots.into_iter().map(|slot| match slot {
            Some(outcome) => outcome,
            None => unreachable!("every claimed index produces an outcome"),
        }));
    }

    /// Engine options for inner solves: worker parallelism lives at the
    /// workload level, so each individual search runs sequentially (which
    /// is also what makes outcomes independent of the fan-out).
    fn inner_opts(&self) -> BbOptions {
        BbOptions { threads: 1, ..self.options.engine }
    }

    fn answer(
        &self,
        item: &WorkloadItem,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
    ) -> ItemOutcome {
        match item {
            WorkloadItem::Ktg(query) => ItemOutcome::Ktg(self.answer_ktg(query, oracle, arena)),
            WorkloadItem::Dktg(query) => {
                ItemOutcome::Dktg(self.answer_dktg(query, oracle, arena))
            }
            WorkloadItem::Insert(..) | WorkloadItem::Remove(..) => {
                unreachable!("updates are split out of query runs")
            }
        }
    }

    fn answer_ktg(
        &self,
        query: &KtgQuery,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
    ) -> KtgAnswer {
        let opts = self.inner_opts();
        let key = self.options.use_cache.then(|| CacheKey::ktg(query, &opts));
        if let Some(key) = &key {
            if let Some(CachedAnswer::Ktg(groups)) = self.results.get(key, self.epoch) {
                let groups = MaskPermutation::of(query).groups_from_canonical(groups);
                // Checked mode re-audits even cached answers: a cache bug
                // shows up as a verification failure, not a wrong result.
                crate::verify::enforce(&self.net, query, &groups);
                return KtgAnswer { groups, cached: true };
            }
        }
        let outcome = self.solve_ktg(query, oracle, arena, &opts);
        if let Some(key) = key {
            let canonical = MaskPermutation::of(query).groups_to_canonical(outcome.groups.clone());
            self.results.insert(key, self.epoch, CachedAnswer::Ktg(canonical));
        }
        KtgAnswer { groups: outcome.groups, cached: false }
    }

    /// A fresh KTG solve through the pooled arena, taking the
    /// bitmap-vs-oracle fork on exactly [`ConflictKernel::wants_bitmap`]
    /// so stats and results match [`bb::solve`] bit for bit.
    fn solve_ktg(
        &self,
        query: &KtgQuery,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
        opts: &BbOptions,
    ) -> KtgOutcome {
        let masks = self.net.compile(query.keywords());
        candidates::collect(self.net.graph(), &masks, &mut arena.cands);
        if !ConflictKernel::wants_bitmap(arena.cands.len(), opts) {
            return bb::solve_with_kernel(
                &self.net,
                query,
                oracle,
                &arena.cands,
                &ConflictKernel::Oracle,
                opts,
            );
        }
        arena.sources.clear();
        arena.sources.extend(arena.cands.iter().map(|c| c.v));
        if self.options.use_cache {
            conflict_bitmaps_cached(
                self.net.graph(),
                &arena.sources,
                query.k(),
                &self.rows,
                self.epoch,
                &mut arena.kernel,
                &mut arena.bitmaps,
            );
        } else {
            arena.bitmaps = kline_conflict_bitmaps(self.net.graph(), &arena.sources, query.k());
        }
        let kernel = ConflictKernel::Bitmap(std::mem::take(&mut arena.bitmaps));
        let outcome =
            bb::solve_with_kernel(&self.net, query, oracle, &arena.cands, &kernel, opts);
        if let Some(rows) = kernel.into_bitmaps() {
            // Hand the rows back to the arena so the next query reuses
            // their word allocations.
            arena.bitmaps = rows;
        }
        outcome
    }

    fn answer_dktg(
        &self,
        query: &DktgQuery,
        oracle: &impl DistanceOracle,
        arena: &mut Arena,
    ) -> DktgAnswer {
        let opts = self.inner_opts();
        let key = self.options.use_cache.then(|| CacheKey::dktg(query, &opts));
        if let Some(key) = &key {
            if let Some(CachedAnswer::Dktg { groups, diversity, min_qkc, score }) =
                self.results.get(key, self.epoch)
            {
                let groups =
                    MaskPermutation::of(query.base()).groups_from_canonical(groups);
                crate::verify::enforce_dktg(&self.net, query, &groups);
                return DktgAnswer { groups, diversity, min_qkc, score, cached: true };
            }
        }
        // Same code path as `dktg::solve_with_options`, minus the
        // candidate-vector allocation: greedy rounds consume the pooled
        // vector in place.
        let masks = self.net.compile(query.base().keywords());
        candidates::collect(self.net.graph(), &masks, &mut arena.cands);
        let outcome = dktg::solve_with_candidates(query, oracle, &mut arena.cands, &opts);
        crate::verify::enforce_dktg(&self.net, query, &outcome.groups);
        if let Some(key) = key {
            let canonical =
                MaskPermutation::of(query.base()).groups_to_canonical(outcome.groups.clone());
            self.results.insert(
                key,
                self.epoch,
                CachedAnswer::Dktg {
                    groups: canonical,
                    diversity: outcome.diversity,
                    min_qkc: outcome.min_qkc,
                    score: outcome.score,
                },
            );
        }
        DktgAnswer {
            groups: outcome.groups,
            diversity: outcome.diversity,
            min_qkc: outcome.min_qkc,
            score: outcome.score,
            cached: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::serve::workload::parse_workload;
    use ktg_graph::DynamicGraph;
    use ktg_index::BfsOracle;

    fn paper_workload(net: &AttributedGraph) -> Vec<WorkloadItem> {
        parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2 gamma=0.5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
dktg terms=GD,QP,SN,DQ,GQ p=3 k=1 n=2 gamma=0.5
",
            net,
        )
        .unwrap()
    }

    fn reference_ktg(net: &AttributedGraph) -> Vec<Group> {
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        bb::solve(net, &query, &oracle, &BbOptions::vkc_deg()).groups
    }

    #[test]
    fn serves_paper_answers_and_caches_repeats() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let outcomes = session.run(&paper_workload(&net));
        let ItemOutcome::Ktg(first) = &outcomes[0] else { panic!("expected ktg") };
        assert_eq!(first.groups, expect);
        assert!(!first.cached);
        let ItemOutcome::Ktg(repeat) = &outcomes[2] else { panic!("expected ktg") };
        assert!(repeat.cached, "identical query must hit the cache");
        assert_eq!(repeat.groups, expect);
        let ItemOutcome::Dktg(permuted) = &outcomes[3] else { panic!("expected dktg") };
        assert!(permuted.cached, "keyword permutation shares the canonical key");
        let stats = session.stats();
        assert_eq!(stats.result_hits, 2);
        assert_eq!(stats.result_misses, 2);
    }

    #[test]
    fn no_cache_mode_still_matches() {
        let net = fixtures::figure1();
        let expect = reference_ktg(&net);
        let opts = ServeOptions { use_cache: false, ..ServeOptions::default() };
        let mut session = ServeSession::new(net.clone(), opts);
        let outcomes = session.run(&paper_workload(&net));
        for outcome in &outcomes {
            if let ItemOutcome::Ktg(ans) = outcome {
                assert!(!ans.cached);
                assert_eq!(ans.groups, expect);
            }
        }
        assert_eq!(session.stats().result_hits, 0);
        assert_eq!(session.stats().row_hits, 0);
    }

    #[test]
    fn parallel_output_is_in_workload_order() {
        let net = fixtures::figure1();
        let mut workload = paper_workload(&net);
        for _ in 0..4 {
            workload.extend(paper_workload(&net));
        }
        let sequential = ServeSession::new(net.clone(), ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        })
        .run(&workload);
        for threads in [2usize, 4, 0] {
            let parallel = ServeSession::new(net.clone(), ServeOptions {
                threads,
                ..ServeOptions::default()
            })
            .run(&workload);
            // `cached` flags may differ (racing workers can both miss),
            // so compare the result-bearing fields.
            assert_eq!(sequential.len(), parallel.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                match (s, p) {
                    (ItemOutcome::Ktg(a), ItemOutcome::Ktg(b)) => assert_eq!(a.groups, b.groups),
                    (ItemOutcome::Dktg(a), ItemOutcome::Dktg(b)) => {
                        assert_eq!(a.groups, b.groups);
                        assert_eq!(a.score, b.score);
                    }
                    other => panic!("outcome shape diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn permuted_keywords_hit_with_translated_masks() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=GD,GQ,DQ,QP,SN p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let out = session.run(&workload);
        let ItemOutcome::Ktg(first) = &out[0] else { panic!("expected ktg") };
        let ItemOutcome::Ktg(second) = &out[1] else { panic!("expected ktg") };
        assert!(second.cached, "permutations share the canonical entry");
        // The hit's masks must be in the *permuted* query's bit order —
        // byte-identical to solving that query fresh (mask field and all).
        let permuted = KtgQuery::new(
            net.query_keywords(["GD", "GQ", "DQ", "QP", "SN"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let fresh = bb::solve(&net, &permuted, &oracle, &BbOptions::vkc_deg());
        assert_eq!(second.groups, fresh.groups);
        // Same member sets either way, different mask bit order.
        for (a, b) in first.groups.iter().zip(&second.groups) {
            assert_eq!(a.members(), b.members());
            assert_eq!(a.coverage_count(), b.coverage_count());
        }
    }

    #[test]
    fn updates_bump_epoch_and_invalidate() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
insert 0 5
remove 0 5
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
",
            &net,
        )
        .unwrap();
        let outcomes = session.run(&workload);
        assert_eq!(outcomes[1], ItemOutcome::Update { applied: true });
        let ItemOutcome::Ktg(after) = &outcomes[2] else { panic!("expected ktg") };
        assert!(!after.cached, "update must invalidate the cached answer");
        // Post-update answer matches a fresh solve against the new graph.
        let mut dyn_g = DynamicGraph::from_csr(net.graph());
        dyn_g.insert_edge(VertexId(0), VertexId(5)).unwrap();
        let mutated = AttributedGraph::new(
            dyn_g.to_csr(),
            net.vocab().clone(),
            net.keywords().clone(),
        );
        assert_eq!(after.groups, reference_ktg(&mutated));
        assert_eq!(outcomes[3], ItemOutcome::Update { applied: false }, "duplicate insert");
        assert_eq!(outcomes[4], ItemOutcome::Update { applied: true });
        let ItemOutcome::Ktg(restored) = &outcomes[5] else { panic!("expected ktg") };
        assert_eq!(restored.groups, reference_ktg(&net), "remove restored the topology");
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn invalid_programmatic_update_is_reported_not_fatal() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net, ServeOptions::default());
        let out = session.run(&[WorkloadItem::Insert(VertexId(0), VertexId(9999))]);
        assert_eq!(out, vec![ItemOutcome::Update { applied: false }]);
        assert_eq!(session.epoch(), 0);
    }

    #[test]
    fn row_cache_reused_across_distinct_queries() {
        let net = fixtures::figure1();
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        // Distinct p ⇒ distinct result-cache keys, but identical k and
        // candidate sets ⇒ the second query's conflict rows all hit.
        let workload = parse_workload(
            "\
ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2
ktg terms=SN,QP,DQ,GQ,GD p=2 k=1 n=2
",
            &net,
        )
        .unwrap();
        session.run(&workload);
        let stats = session.stats();
        assert_eq!(stats.result_hits, 0);
        assert!(stats.row_hits > 0, "second query must reuse (vertex, k) rows");
    }
}

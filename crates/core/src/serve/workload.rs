//! Workload files: the batch executor's input format.
//!
//! A workload is a line-oriented text script replayed in order by
//! [`super::ServeSession::run`]. Blank lines and `#` comments are
//! skipped; every other line is one [`WorkloadItem`]:
//!
//! ```text
//! # KTG query: keyword terms (comma-separated), group size, tenuity, top-N
//! ktg terms=SN,QP,DQ p=3 k=1 n=2
//! # DKTG query: same fields plus the diversity weight (default 0.5)
//! dktg terms=SN,QP,DQ p=3 k=1 n=2 gamma=0.5
//! # dynamic edge updates, by vertex id
//! insert 4 17
//! remove 0 3
//! ```
//!
//! Key-value fields may appear in any order. Terms are resolved against
//! the network's vocabulary at parse time, so an unknown keyword or an
//! out-of-range vertex id fails fast with a line number instead of
//! surfacing mid-replay.

use ktg_common::{KtgError, Result, VertexId};

use crate::dktg::DktgQuery;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;

/// One line of a workload: a query to answer or an update to apply.
#[derive(Clone, Debug)]
pub enum WorkloadItem {
    /// A KTG query (answered with the session's engine options).
    Ktg(KtgQuery),
    /// A DKTG query (greedy diversified variant).
    Dktg(DktgQuery),
    /// Insert the undirected edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Remove the undirected edge `{u, v}`.
    Remove(VertexId, VertexId),
}

impl WorkloadItem {
    /// Whether this item is a query (parallelizable) as opposed to an
    /// update (a serialization point).
    #[inline]
    pub fn is_query(&self) -> bool {
        matches!(self, WorkloadItem::Ktg(_) | WorkloadItem::Dktg(_))
    }
}

fn line_err(lineno: usize, msg: impl std::fmt::Display) -> KtgError {
    KtgError::input(format!("workload line {lineno}: {msg}"))
}

struct Fields<'a> {
    terms: Option<&'a str>,
    p: Option<usize>,
    k: Option<u32>,
    n: Option<usize>,
    gamma: Option<f64>,
}

fn parse_fields<'a>(
    lineno: usize,
    tokens: impl Iterator<Item = &'a str>,
) -> Result<Fields<'a>> {
    let mut f = Fields { terms: None, p: None, k: None, n: None, gamma: None };
    for tok in tokens {
        let Some((key, val)) = tok.split_once('=') else {
            return Err(line_err(lineno, format!("expected key=value, got `{tok}`")));
        };
        let bad = |what: &str| line_err(lineno, format!("invalid {what} `{val}`"));
        match key {
            "terms" => f.terms = Some(val),
            "p" => f.p = Some(val.parse().map_err(|_| bad("group size p"))?),
            "k" => f.k = Some(val.parse().map_err(|_| bad("tenuity k"))?),
            "n" => f.n = Some(val.parse().map_err(|_| bad("result count n"))?),
            "gamma" => f.gamma = Some(val.parse().map_err(|_| bad("gamma"))?),
            other => {
                return Err(line_err(lineno, format!("unknown field `{other}`")));
            }
        }
    }
    Ok(f)
}

fn require<T>(lineno: usize, field: &str, value: Option<T>) -> Result<T> {
    value.ok_or_else(|| line_err(lineno, format!("missing required field `{field}`")))
}

fn parse_query(net: &AttributedGraph, lineno: usize, f: &Fields<'_>) -> Result<KtgQuery> {
    let terms = require(lineno, "terms", f.terms)?;
    let keywords = net
        .query_keywords(terms.split(',').map(str::trim).filter(|t| !t.is_empty()))
        .map_err(|e| line_err(lineno, e))?;
    KtgQuery::new(
        keywords,
        require(lineno, "p", f.p)?,
        require(lineno, "k", f.k)?,
        require(lineno, "n", f.n)?,
    )
    .map_err(|e| line_err(lineno, e))
}

fn parse_edge(
    net: &AttributedGraph,
    lineno: usize,
    rest: &mut std::str::SplitWhitespace<'_>,
) -> Result<(VertexId, VertexId)> {
    let mut endpoint = |name: &str| -> Result<VertexId> {
        let tok = rest
            .next()
            .ok_or_else(|| line_err(lineno, format!("missing vertex `{name}`")))?;
        let id: u32 =
            tok.parse().map_err(|_| line_err(lineno, format!("invalid vertex id `{tok}`")))?;
        if (id as usize) >= net.num_vertices() {
            return Err(line_err(
                lineno,
                format!("vertex {id} out of range for {} vertices", net.num_vertices()),
            ));
        }
        Ok(VertexId(id))
    };
    let u = endpoint("u")?;
    let v = endpoint("v")?;
    Ok((u, v))
}

/// Parses a workload script against a network's vocabulary and vertex
/// range.
///
/// # Errors
/// [`KtgError::InvalidInput`] naming the offending line for malformed
/// syntax, unknown keywords, invalid query parameters, or out-of-range
/// vertex ids.
pub fn parse_workload(text: &str, net: &AttributedGraph) -> Result<Vec<WorkloadItem>> {
    let mut items = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else { continue };
        match head {
            "ktg" => {
                let f = parse_fields(lineno, tokens)?;
                if f.gamma.is_some() {
                    return Err(line_err(lineno, "`gamma` is only valid on dktg lines"));
                }
                items.push(WorkloadItem::Ktg(parse_query(net, lineno, &f)?));
            }
            "dktg" => {
                let f = parse_fields(lineno, tokens)?;
                let base = parse_query(net, lineno, &f)?;
                let query = DktgQuery::new(base, f.gamma.unwrap_or(0.5))
                    .map_err(|e| line_err(lineno, e))?;
                items.push(WorkloadItem::Dktg(query));
            }
            "insert" => {
                let (u, v) = parse_edge(net, lineno, &mut tokens)?;
                items.push(WorkloadItem::Insert(u, v));
            }
            "remove" => {
                let (u, v) = parse_edge(net, lineno, &mut tokens)?;
                items.push(WorkloadItem::Remove(u, v));
            }
            other => {
                return Err(line_err(
                    lineno,
                    format!("unknown directive `{other}` (expected ktg, dktg, insert, remove)"),
                ));
            }
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn parses_mixed_workload() {
        let net = fixtures::figure1();
        let text = "\
# warm-up
ktg terms=SN,QP,DQ p=3 k=1 n=2

dktg terms=GD,,QP p=2 k=2 n=3 gamma=0.25
insert 0 5
remove 1 2
ktg n=1 k=0 p=2 terms=SN
";
        let items = parse_workload(text, &net).unwrap();
        assert_eq!(items.len(), 5);
        let WorkloadItem::Ktg(q) = &items[0] else { panic!("expected ktg") };
        assert_eq!((q.p(), q.k(), q.n(), q.keywords().len()), (3, 1, 2, 3));
        let WorkloadItem::Dktg(dq) = &items[1] else { panic!("expected dktg") };
        assert!((dq.gamma() - 0.25).abs() < 1e-12);
        assert_eq!(dq.base().keywords().len(), 2, "empty list entries are skipped");
        assert!(matches!(items[2], WorkloadItem::Insert(VertexId(0), VertexId(5))));
        assert!(matches!(items[3], WorkloadItem::Remove(VertexId(1), VertexId(2))));
        let WorkloadItem::Ktg(q) = &items[4] else { panic!("expected ktg") };
        assert_eq!((q.p(), q.k(), q.n()), (2, 0, 1), "fields accept any order");
        assert!(items[0].is_query());
        assert!(!items[2].is_query());
    }

    #[test]
    fn gamma_defaults_to_half() {
        let net = fixtures::figure1();
        let items = parse_workload("dktg terms=SN p=2 k=1 n=2", &net).unwrap();
        let WorkloadItem::Dktg(dq) = &items[0] else { panic!("expected dktg") };
        assert!((dq.gamma() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_name_the_line() {
        let net = fixtures::figure1();
        let check = |text: &str, needle: &str| {
            let err = parse_workload(text, &net).expect_err(needle).to_string();
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        };
        check("bogus 1 2", "unknown directive");
        check("ktg terms=NOPE p=3 k=1 n=1", "line 1");
        check("\n\nktg p=3 k=1 n=1", "line 3");
        check("ktg terms=SN p=0 k=1 n=1", "line 1");
        check("ktg terms=SN p=x k=1 n=1", "invalid group size");
        check("ktg terms=SN p=3 k=1 n=1 gamma=0.5", "only valid on dktg");
        check("insert 0", "missing vertex");
        check("insert 0 99", "out of range");
        check("remove a b", "invalid vertex id");
        check("ktg terms=SN p=3 k=1 n=1 q=7", "unknown field");
        check("ktg terms=SN p=3 k=1 n=1 extra", "expected key=value");
    }
}

//! Workload files: the batch executor's input format.
//!
//! A workload is a line-oriented text script replayed in order by
//! [`super::ServeSession::run`]. Blank lines and `#` comments are
//! skipped; every other line is one [`WorkloadItem`]:
//!
//! ```text
//! # KTG query: keyword terms (comma-separated), group size, tenuity, top-N
//! ktg terms=SN,QP,DQ p=3 k=1 n=2
//! # DKTG query: same fields plus the diversity weight (default 0.5)
//! dktg terms=SN,QP,DQ p=3 k=1 n=2 gamma=0.5
//! # dynamic edge updates, by vertex id
//! insert 4 17
//! remove 0 3
//! ```
//!
//! Key-value fields may appear in any order. Terms are resolved against
//! the network's vocabulary at parse time, so an unknown keyword or an
//! out-of-range vertex id fails fast with a line number instead of
//! surfacing mid-replay.

use ktg_common::{KtgError, Result, VertexId};

use crate::dktg::DktgQuery;
use crate::network::AttributedGraph;
use crate::query::KtgQuery;

/// One line of a workload: a query to answer or an update to apply.
#[derive(Clone, Debug)]
pub enum WorkloadItem {
    /// A KTG query (answered with the session's engine options).
    Ktg(KtgQuery),
    /// A DKTG query (greedy diversified variant).
    Dktg(DktgQuery),
    /// Insert the undirected edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Remove the undirected edge `{u, v}`.
    Remove(VertexId, VertexId),
}

impl WorkloadItem {
    /// Whether this item is a query (parallelizable) as opposed to an
    /// update (a serialization point).
    #[inline]
    pub fn is_query(&self) -> bool {
        matches!(self, WorkloadItem::Ktg(_) | WorkloadItem::Dktg(_))
    }
}

/// Longest accepted workload line, in bytes. Real workload lines are
/// tens of bytes; a multi-kilobyte "line" means a corrupt (or binary)
/// file was fed in, and it is refused with a line number before any
/// field parsing looks at its contents.
pub const MAX_LINE_BYTES: usize = 4096;

fn line_err(lineno: usize, msg: impl std::fmt::Display) -> KtgError {
    KtgError::input(format!("workload line {lineno}: {msg}"))
}

struct Fields<'a> {
    terms: Option<&'a str>,
    p: Option<usize>,
    k: Option<u32>,
    n: Option<usize>,
    gamma: Option<f64>,
}

fn parse_fields<'a>(
    lineno: usize,
    tokens: impl Iterator<Item = &'a str>,
) -> Result<Fields<'a>> {
    let mut f = Fields { terms: None, p: None, k: None, n: None, gamma: None };
    for tok in tokens {
        let Some((key, val)) = tok.split_once('=') else {
            return Err(line_err(lineno, format!("expected key=value, got `{tok}`")));
        };
        let bad = |what: &str| line_err(lineno, format!("invalid {what} `{val}`"));
        let dup = || line_err(lineno, format!("duplicate field `{key}`"));
        match key {
            "terms" if f.terms.is_some() => return Err(dup()),
            "p" if f.p.is_some() => return Err(dup()),
            "k" if f.k.is_some() => return Err(dup()),
            "n" if f.n.is_some() => return Err(dup()),
            "gamma" if f.gamma.is_some() => return Err(dup()),
            "terms" => f.terms = Some(val),
            "p" => f.p = Some(val.parse().map_err(|_| bad("group size p"))?),
            "k" => f.k = Some(val.parse().map_err(|_| bad("tenuity k"))?),
            "n" => f.n = Some(val.parse().map_err(|_| bad("result count n"))?),
            "gamma" => f.gamma = Some(val.parse().map_err(|_| bad("gamma"))?),
            other => {
                return Err(line_err(lineno, format!("unknown field `{other}`")));
            }
        }
    }
    Ok(f)
}

fn require<T>(lineno: usize, field: &str, value: Option<T>) -> Result<T> {
    value.ok_or_else(|| line_err(lineno, format!("missing required field `{field}`")))
}

fn parse_query(net: &AttributedGraph, lineno: usize, f: &Fields<'_>) -> Result<KtgQuery> {
    let terms = require(lineno, "terms", f.terms)?;
    // The engine's keyword-set type dedups silently (fine for
    // programmatic callers); in a workload file a repeated term is a
    // typo worth naming, like every other line-level mistake.
    let mut term_list: Vec<&str> = Vec::new();
    for term in terms.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        if term_list.contains(&term) {
            return Err(line_err(lineno, format!("duplicate query keyword `{term}`")));
        }
        term_list.push(term);
    }
    let keywords =
        net.query_keywords(term_list.iter().copied()).map_err(|e| line_err(lineno, e))?;
    KtgQuery::new(
        keywords,
        require(lineno, "p", f.p)?,
        require(lineno, "k", f.k)?,
        require(lineno, "n", f.n)?,
    )
    .map_err(|e| line_err(lineno, e))
}

fn parse_edge(
    net: &AttributedGraph,
    lineno: usize,
    rest: &mut std::str::SplitWhitespace<'_>,
) -> Result<(VertexId, VertexId)> {
    let mut endpoint = |name: &str| -> Result<VertexId> {
        let tok = rest
            .next()
            .ok_or_else(|| line_err(lineno, format!("missing vertex `{name}`")))?;
        let id: u32 =
            tok.parse().map_err(|_| line_err(lineno, format!("invalid vertex id `{tok}`")))?;
        if (id as usize) >= net.num_vertices() {
            return Err(line_err(
                lineno,
                format!("vertex {id} out of range for {} vertices", net.num_vertices()),
            ));
        }
        Ok(VertexId(id))
    };
    let u = endpoint("u")?;
    let v = endpoint("v")?;
    if let Some(extra) = rest.next() {
        return Err(line_err(lineno, format!("unexpected trailing token `{extra}`")));
    }
    Ok((u, v))
}

/// Parses one raw workload line. `Ok(None)` means the line carries no
/// item (blank, comment). All validation lives here so that
/// [`parse_workload`] is nothing but the loop plus the fault hook.
fn parse_line(
    net: &AttributedGraph,
    lineno: usize,
    raw: &str,
) -> Result<Option<WorkloadItem>> {
    // Accept CRLF input: a single trailing `\r` is line-ending framing,
    // not content. `str::lines()` only strips it when it also stripped a
    // `\n`, so a final line without a trailing newline (and every line a
    // network peer frames with bare CRLF) still carries it — and it must
    // be dropped *before* the byte cap so the cap measures content, and
    // before tokenizing so `n=1\r` does not fail integer parsing.
    let raw = raw.strip_suffix('\r').unwrap_or(raw);
    if raw.len() > MAX_LINE_BYTES {
        return Err(line_err(
            lineno,
            format!("line is {} bytes, exceeds {MAX_LINE_BYTES} bytes", raw.len()),
        ));
    }
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let Some(head) = tokens.next() else { return Ok(None) };
    let item = match head {
        "ktg" => {
            let f = parse_fields(lineno, tokens)?;
            if f.gamma.is_some() {
                return Err(line_err(lineno, "`gamma` is only valid on dktg lines"));
            }
            WorkloadItem::Ktg(parse_query(net, lineno, &f)?)
        }
        "dktg" => {
            let f = parse_fields(lineno, tokens)?;
            let base = parse_query(net, lineno, &f)?;
            let query =
                DktgQuery::new(base, f.gamma.unwrap_or(0.5)).map_err(|e| line_err(lineno, e))?;
            WorkloadItem::Dktg(query)
        }
        "insert" => {
            let (u, v) = parse_edge(net, lineno, &mut tokens)?;
            WorkloadItem::Insert(u, v)
        }
        "remove" => {
            let (u, v) = parse_edge(net, lineno, &mut tokens)?;
            WorkloadItem::Remove(u, v)
        }
        other => {
            return Err(line_err(
                lineno,
                format!("unknown directive `{other}` (expected ktg, dktg, insert, remove)"),
            ));
        }
    };
    Ok(Some(item))
}

/// Parses a workload script against a network's vocabulary and vertex
/// range.
///
/// Lines longer than [`MAX_LINE_BYTES`] are rejected outright. Parsing
/// is a [`ktg_common::fault`] injection site (`parse`): an injected
/// panic on a line is retried once with injection suppressed, so a
/// fault-armed run parses exactly what a clean run parses.
///
/// # Errors
/// [`KtgError::InvalidInput`] naming the offending line for malformed
/// syntax, unknown keywords, invalid query parameters, out-of-range
/// vertex ids, duplicate fields or keywords, trailing tokens, and
/// overlong lines.
pub fn parse_workload(text: &str, net: &AttributedGraph) -> Result<Vec<WorkloadItem>> {
    let mut items = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let parsed = ktg_common::fault::recoverable(
            ktg_common::fault::FaultSite::WorkloadParse,
            || parse_line(net, lineno, raw),
        )?;
        if let Some(item) = parsed {
            items.push(item);
        }
    }
    Ok(items)
}

/// Parses one request line exactly as [`parse_workload`] parses a file
/// line — same grammar, same `\r` handling, same byte cap, same
/// fault-injection site with retry-once recovery — reporting errors
/// against the caller-supplied line number.
///
/// This is the network server's per-line entry point: a connection is a
/// workload arriving one line at a time, and routing both paths through
/// [`parse_line`] is what keeps TCP responses byte-identical to
/// `ktg batch` on the same script.
///
/// # Errors
/// Exactly those of [`parse_workload`], for the single line.
pub fn parse_request_line(
    net: &AttributedGraph,
    lineno: usize,
    raw: &str,
) -> Result<Option<WorkloadItem>> {
    ktg_common::fault::recoverable(ktg_common::fault::FaultSite::WorkloadParse, || {
        parse_line(net, lineno, raw)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn parses_mixed_workload() {
        let net = fixtures::figure1();
        let text = "\
# warm-up
ktg terms=SN,QP,DQ p=3 k=1 n=2

dktg terms=GD,,QP p=2 k=2 n=3 gamma=0.25
insert 0 5
remove 1 2
ktg n=1 k=0 p=2 terms=SN
";
        let items = parse_workload(text, &net).unwrap();
        assert_eq!(items.len(), 5);
        let WorkloadItem::Ktg(q) = &items[0] else { panic!("expected ktg") };
        assert_eq!((q.p(), q.k(), q.n(), q.keywords().len()), (3, 1, 2, 3));
        let WorkloadItem::Dktg(dq) = &items[1] else { panic!("expected dktg") };
        assert!((dq.gamma() - 0.25).abs() < 1e-12);
        assert_eq!(dq.base().keywords().len(), 2, "empty list entries are skipped");
        assert!(matches!(items[2], WorkloadItem::Insert(VertexId(0), VertexId(5))));
        assert!(matches!(items[3], WorkloadItem::Remove(VertexId(1), VertexId(2))));
        let WorkloadItem::Ktg(q) = &items[4] else { panic!("expected ktg") };
        assert_eq!((q.p(), q.k(), q.n()), (2, 0, 1), "fields accept any order");
        assert!(items[0].is_query());
        assert!(!items[2].is_query());
    }

    #[test]
    fn gamma_defaults_to_half() {
        let net = fixtures::figure1();
        let items = parse_workload("dktg terms=SN p=2 k=1 n=2", &net).unwrap();
        let WorkloadItem::Dktg(dq) = &items[0] else { panic!("expected dktg") };
        assert!((dq.gamma() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_name_the_line() {
        let net = fixtures::figure1();
        let check = |text: &str, needle: &str| {
            let err = parse_workload(text, &net).expect_err(needle).to_string();
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        };
        check("bogus 1 2", "unknown directive");
        check("ktg terms=NOPE p=3 k=1 n=1", "line 1");
        check("\n\nktg p=3 k=1 n=1", "line 3");
        check("ktg terms=SN p=0 k=1 n=1", "line 1");
        check("ktg terms=SN p=x k=1 n=1", "invalid group size");
        check("ktg terms=SN p=3 k=1 n=1 gamma=0.5", "only valid on dktg");
        check("insert 0", "missing vertex");
        check("insert 0 99", "out of range");
        check("remove a b", "invalid vertex id");
        check("ktg terms=SN p=3 k=1 n=1 q=7", "unknown field");
        check("ktg terms=SN p=3 k=1 n=1 extra", "expected key=value");
    }

    /// Every way a workload line can be malformed yields
    /// [`KtgError::InvalidInput`] naming the line — never a panic, never
    /// a different error kind.
    #[test]
    fn malformed_corpus_is_rejected_with_line_numbers() {
        let net = fixtures::figure1();
        // (line, expected message fragment)
        let corpus: &[(&str, &str)] = &[
            // Truncated: directive with no fields, or missing one field.
            ("ktg", "missing required field `terms`"),
            ("ktg terms=SN,QP", "missing required field `p`"),
            ("ktg terms=SN,QP p=3 k=1", "missing required field `n`"),
            ("dktg terms=SN p=2", "missing required field `k`"),
            ("insert", "missing vertex `u`"),
            ("insert 3", "missing vertex `v`"),
            // Bad integers: overflow, negative, float, garbage.
            ("ktg terms=SN p=99999999999999999999 k=1 n=1", "invalid group size"),
            ("ktg terms=SN p=-3 k=1 n=1", "invalid group size"),
            ("ktg terms=SN p=3 k=1.5 n=1", "invalid tenuity"),
            ("ktg terms=SN p=3 k=1 n=0x2", "invalid result count"),
            ("insert 1e2 3", "invalid vertex id"),
            // Bad floats: NaN and infinity parse as f64 but are invalid
            // gammas; `x` does not parse at all.
            ("dktg terms=SN p=2 k=1 n=1 gamma=NaN", "line 1"),
            ("dktg terms=SN p=2 k=1 n=1 gamma=inf", "line 1"),
            ("dktg terms=SN p=2 k=1 n=1 gamma=x", "invalid gamma"),
            // Duplicates: repeated field, repeated query keyword.
            ("ktg terms=SN p=3 p=4 k=1 n=1", "duplicate field `p`"),
            ("ktg terms=SN,QP,SN p=3 k=1 n=1", "duplicate query keyword `SN`"),
            ("dktg terms=SN p=2 k=1 n=1 gamma=0.5 gamma=0.5", "duplicate field `gamma`"),
            // Trailing junk after a complete edge update.
            ("insert 0 5 9", "unexpected trailing token `9`"),
            ("remove 1 2 oops", "unexpected trailing token `oops`"),
        ];
        for (line, needle) in corpus {
            let err = parse_workload(line, &net).expect_err(line);
            assert!(
                matches!(err, KtgError::InvalidInput(_)),
                "`{line}` gave non-InvalidInput error: {err:?}"
            );
            let msg = err.to_string();
            assert!(msg.contains("line 1"), "`{line}` error lacks line number: {msg}");
            assert!(msg.contains(needle), "`{line}` gave `{msg}`, wanted `{needle}`");
        }

        // Overlong line: rejected by byte length before field parsing,
        // and the line number is still right when it is not the first.
        let long = format!("# ok\nktg terms={} p=3 k=1 n=1", "S".repeat(MAX_LINE_BYTES));
        let err = parse_workload(&long, &net).expect_err("overlong line");
        assert!(matches!(err, KtgError::InvalidInput(_)));
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("exceeds 4096 bytes"), "{msg}");
    }

    /// CRLF corpus: `str::lines()` leaves the `\r` on a final line that
    /// lacks a trailing `\n` (it only strips `\r` together with `\n`),
    /// so CR-carrying lines reach the parser — from Windows-edited
    /// files and from network peers framing with bare CRLF alike. A
    /// trailing `\r` is framing, not content, and must parse everywhere:
    /// on queries, updates, comments, and blank lines.
    #[test]
    fn crlf_line_endings_parse() {
        let net = fixtures::figure1();
        // Final line, CR retained by `lines()`.
        let items = parse_workload("ktg terms=SN p=2 k=1 n=1\r", &net).unwrap();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_query());
        // A whole CRLF-terminated file, including a CR-only blank line
        // and a CR-terminated comment and edge update.
        let items = parse_workload(
            "# crlf file\r\nktg terms=SN,QP p=2 k=1 n=1\r\n\r\ninsert 0 5\r\ndktg terms=GD p=2 k=1 n=1 gamma=0.25\r",
            &net,
        )
        .unwrap();
        assert_eq!(items.len(), 3);
        assert!(matches!(items[1], WorkloadItem::Insert(VertexId(0), VertexId(5))));
        // The error line numbers are unaffected by CRLF framing.
        let err = parse_workload("# a\r\nbogus\r\n", &net).expect_err("bad directive");
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("unknown directive"), "{msg}");
    }

    /// Regression for the cap boundary under CRLF: the cap must measure
    /// content bytes, after the framing `\r` is stripped.
    #[test]
    fn byte_cap_excludes_crlf_framing() {
        let net = fixtures::figure1();
        // Exactly MAX_LINE_BYTES of content parses...
        let pad = MAX_LINE_BYTES - "ktg terms=SN p=2 k=1 n=1".len();
        let exact = format!("ktg terms=SN p=2 k=1 n=1{}", " ".repeat(pad));
        assert_eq!(exact.len(), MAX_LINE_BYTES);
        assert_eq!(parse_workload(&exact, &net).unwrap().len(), 1);
        // ...including with a trailing `\r` pushing the raw line to
        // MAX_LINE_BYTES + 1 (pre-fix: wrongly cap-rejected).
        let exact_cr = format!("{exact}\r");
        assert_eq!(parse_workload(&exact_cr, &net).unwrap().len(), 1);
        // One content byte over the cap is rejected, the reported size is
        // the content size (not content + `\r`), and the line number is
        // right.
        let over = format!("# lead\n{} \r", exact);
        let err = parse_workload(&over, &net).expect_err("over cap");
        let msg = err.to_string();
        assert!(
            msg.contains("line 2")
                && msg.contains(&format!("line is {} bytes", MAX_LINE_BYTES + 1)),
            "{msg}"
        );
    }

    /// The server's per-line entry point shares the file parser's
    /// grammar, CR handling, and error shape verbatim.
    #[test]
    fn request_line_matches_file_grammar() {
        let net = fixtures::figure1();
        let item = parse_request_line(&net, 7, "ktg terms=SN p=2 k=1 n=1\r").unwrap();
        assert!(item.is_some_and(|i| i.is_query()));
        assert!(parse_request_line(&net, 7, "# comment").unwrap().is_none());
        assert!(parse_request_line(&net, 7, "").unwrap().is_none());
        let err = parse_request_line(&net, 7, "bogus").expect_err("bad directive");
        let msg = err.to_string();
        assert!(msg.contains("line 7") && msg.contains("unknown directive"), "{msg}");
    }

    /// Seeded garbage lines: the parser must return `InvalidInput` or
    /// (coincidentally) parse, but never panic and never surface any
    /// other error kind.
    #[test]
    fn fuzzed_garbage_lines_never_panic() {
        let net = fixtures::figure1();
        let mut rng = ktg_common::SplitMix64::new(0xC0FFEE);
        for _ in 0..256 {
            let len = (rng.next_u64() % 120) as usize;
            let line: String = (0..len)
                .map(|_| {
                    // Printable ASCII plus a bias toward the parser's
                    // structural characters.
                    let r = rng.next_u64();
                    match r % 8 {
                        0 => '=',
                        1 => ',',
                        2 => ' ',
                        _ => char::from(0x20 + (r >> 8) as u8 % 0x5F),
                    }
                })
                .collect();
            if let Err(err) = parse_workload(&line, &net) {
                assert!(
                    matches!(err, KtgError::InvalidInput(_)),
                    "garbage line `{line}` gave non-InvalidInput error: {err:?}"
                );
            }
        }
    }
}

//! KTG query validation (paper Definition 7).
//!
//! A KTG query is the 4-tuple `⟨W_Q, p, k, N⟩`: keyword set, group size,
//! tenuity constraint, and result count. Validation happens once at
//! construction so every algorithm can assume a well-formed query.

use ktg_common::{KtgError, Result};
use ktg_keywords::QueryKeywords;

/// A validated KTG query `⟨W_Q, p, k, N⟩`.
#[derive(Clone, Debug)]
pub struct KtgQuery {
    keywords: QueryKeywords,
    p: usize,
    k: u32,
    n: usize,
}

impl KtgQuery {
    /// Creates a query.
    ///
    /// # Errors
    /// [`KtgError::InvalidQuery`] if `p == 0` or `n == 0`. (`k = 0` is
    /// permitted and means "only the trivial no-distance constraint": any
    /// set of distinct vertices is a 0-distance group.)
    pub fn new(keywords: QueryKeywords, p: usize, k: u32, n: usize) -> Result<Self> {
        if p == 0 {
            return Err(KtgError::query("group size p must be at least 1"));
        }
        if n == 0 {
            return Err(KtgError::query("result count N must be at least 1"));
        }
        Ok(KtgQuery { keywords, p, k, n })
    }

    /// The query keyword set `W_Q`.
    #[inline]
    pub fn keywords(&self) -> &QueryKeywords {
        &self.keywords
    }

    /// Group size `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Tenuity constraint `k`: every pair in a result group must satisfy
    /// `Dis(u, v) > k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of result groups `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Derives a query with a different `N` (used by DKTG-Greedy, which
    /// repeatedly issues `N = 1` searches).
    pub fn with_n(&self, n: usize) -> Result<Self> {
        Self::new(self.keywords.clone(), self.p, self.k, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_keywords::KeywordId;

    fn kw() -> QueryKeywords {
        QueryKeywords::new([KeywordId(0), KeywordId(1)]).unwrap()
    }

    #[test]
    fn valid_query() {
        let q = KtgQuery::new(kw(), 3, 1, 2).unwrap();
        assert_eq!(q.p(), 3);
        assert_eq!(q.k(), 1);
        assert_eq!(q.n(), 2);
        assert_eq!(q.keywords().len(), 2);
    }

    #[test]
    fn zero_p_rejected() {
        assert!(KtgQuery::new(kw(), 0, 1, 1).is_err());
    }

    #[test]
    fn zero_n_rejected() {
        assert!(KtgQuery::new(kw(), 3, 1, 0).is_err());
    }

    #[test]
    fn zero_k_allowed() {
        assert!(KtgQuery::new(kw(), 2, 0, 1).is_ok());
    }

    #[test]
    fn with_n_rederives() {
        let q = KtgQuery::new(kw(), 3, 2, 5).unwrap();
        let q1 = q.with_n(1).unwrap();
        assert_eq!(q1.n(), 1);
        assert_eq!(q1.p(), 3);
    }
}

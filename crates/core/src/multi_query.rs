//! Multi-query-vertex extension (paper §IV-B, *Discussion*).
//!
//! "To handle the scenarios in which the authors are familiar with the
//! reviewers, our techniques can be extended to handle the query including
//! multiple query vertices (i.e., the authors). The main idea is to remove
//! those reviewers who are familiar with the authors, i.e., only reviewers
//! whose social distance from the authors is greater than k remain."
//!
//! [`restrict_candidates`] applies exactly that filter; compose it with
//! [`crate::bb::solve_with_candidates`] to run an author-aware query.

use crate::candidates::Candidate;
use ktg_common::VertexId;
use ktg_index::DistanceOracle;

/// Removes candidates within `k` hops of any query vertex (and the query
/// vertices themselves — an author cannot review their own paper).
/// Returns the number of candidates removed.
pub fn restrict_candidates(
    oracle: &impl DistanceOracle,
    query_vertices: &[VertexId],
    k: u32,
    candidates: &mut Vec<Candidate>,
) -> usize {
    let before = candidates.len();
    candidates.retain(|c| {
        query_vertices
            .iter()
            .all(|&a| c.v != a && oracle.farther_than(a, c.v, k))
    });
    before - candidates.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::{self, BbOptions};
    use crate::candidates;
    use crate::fixtures;
    use crate::query::KtgQuery;
    use ktg_index::ExactOracle;

    #[test]
    fn removes_close_reviewers() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let q = net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap();
        let masks = net.compile(&q);
        let mut cands = candidates::collect_vec(net.graph(), &masks);
        let before = cands.len();
        // Author u0 with k = 1: all of u0's qualified neighbors go.
        let removed = restrict_candidates(&oracle, &[ktg_common::VertexId(0)], 1, &mut cands);
        assert!(removed > 0);
        assert_eq!(before - removed, cands.len());
        for c in &cands {
            assert!(oracle.farther_than(ktg_common::VertexId(0), c.v, 1));
        }
    }

    #[test]
    fn author_themselves_excluded() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let q = net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap();
        let masks = net.compile(&q);
        let mut cands = candidates::collect_vec(net.graph(), &masks);
        // k = 0 removes nobody by distance, but the author must still go.
        restrict_candidates(&oracle, &[ktg_common::VertexId(7)], 0, &mut cands);
        assert!(cands.iter().all(|c| c.v != ktg_common::VertexId(7)));
    }

    #[test]
    fn end_to_end_author_aware_query() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap();
        let masks = net.compile(query.keywords());
        let mut cands = candidates::collect_vec(net.graph(), &masks);
        restrict_candidates(&oracle, &[ktg_common::VertexId(2)], 1, &mut cands);
        let out = bb::solve_with_candidates(&query, &oracle, &cands, &BbOptions::vkc_deg());
        for g in &out.groups {
            fixtures::assert_k_distance(net.graph(), g.members(), 1);
            // u2 and its neighbors (u0, u3, u10) cannot appear.
            for banned in [0u32, 2, 3, 10] {
                assert!(!g.contains(ktg_common::VertexId(banned)), "u{banned} in {g:?}");
            }
        }
    }
}

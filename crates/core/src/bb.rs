//! The exact branch-and-bound engine (paper §IV, Algorithm 1).
//!
//! One engine implements all three exact algorithm variants evaluated in
//! the paper; they differ only in the [`MemberOrdering`] used to rank the
//! remaining candidate set `S_R`:
//!
//! * **KTG-QKC** — static sort by query keyword coverage (Definition 5),
//!   computed once and never refreshed ("only need sorting once").
//! * **KTG-VKC** — dynamic sort by *valid* keyword coverage
//!   (Definition 8), recomputed against the covered set after every
//!   selection.
//! * **KTG-VKC-DEG** — VKC order with an ascending-degree tiebreak: among
//!   equal-VKC candidates, low-degree members conflict with fewer others,
//!   so feasible groups form earlier (§IV-B; see DESIGN.md on the paper's
//!   self-contradictory phrasing of the direction).
//!
//! The engine applies three cuts, each toggleable for ablation studies:
//!
//! * **Keyword pruning** (Theorem 2): a branch dies when even the top
//!   `p − |S_I|` remaining VKC values cannot lift the coverage above the
//!   current N-th best.
//! * **k-line filtering** (Theorem 3): after selecting `v`, every
//!   remaining candidate within `k` hops of `v` is removed. When disabled,
//!   feasibility is enforced lazily by pairwise checks at selection time
//!   (the search stays exact either way).
//! * **Feasibility cut**: a branch with `|S_I| + |S_R| < p` cannot reach
//!   size `p`.
//!
//! Exploration order matches Algorithm 1: at each node take the head of
//! the ordered `S_R`, recurse, then permanently exclude it at this level
//! and continue — enumerating unordered groups exactly once.

use crate::candidates::{self, Candidate};
use crate::group::{Group, RankedGroup};
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::TopN;
use ktg_index::DistanceOracle;
use ktg_keywords::coverage;

/// Candidate-ordering strategy for `S_R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberOrdering {
    /// Static query-keyword-coverage order (KTG-QKC).
    Qkc,
    /// Dynamic valid-keyword-coverage order (KTG-VKC).
    Vkc,
    /// VKC with ascending-degree tiebreak (KTG-VKC-DEG).
    VkcDeg,
    /// VKC with **descending**-degree tiebreak — not in the paper; exists
    /// to ablate the tiebreak direction (see DESIGN.md §3).
    VkcDegDesc,
}

impl MemberOrdering {
    /// Whether this ordering keeps `S_R` sorted by current VKC, letting
    /// the keyword-pruning bound read the top values off the list head.
    #[inline]
    fn vkc_sorted(self) -> bool {
        !matches!(self, MemberOrdering::Qkc)
    }

    /// Sorts `cands` for the given covered mask. For [`MemberOrdering::Qkc`]
    /// the key ignores `covered` (static QKC order).
    fn sort(self, covered: u64, cands: &mut [Candidate]) {
        match self {
            MemberOrdering::Qkc => {
                cands.sort_by_key(|c| (std::cmp::Reverse(c.mask.count_ones()), c.v));
            }
            MemberOrdering::Vkc => {
                cands.sort_by_key(|c| {
                    (std::cmp::Reverse(coverage::vkc_count(c.mask, covered)), c.v)
                });
            }
            MemberOrdering::VkcDeg => {
                cands.sort_by_key(|c| {
                    (std::cmp::Reverse(coverage::vkc_count(c.mask, covered)), c.degree, c.v)
                });
            }
            MemberOrdering::VkcDegDesc => {
                cands.sort_by_key(|c| {
                    (
                        std::cmp::Reverse(coverage::vkc_count(c.mask, covered)),
                        std::cmp::Reverse(c.degree),
                        c.v,
                    )
                });
            }
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MemberOrdering::Qkc => "qkc",
            MemberOrdering::Vkc => "vkc",
            MemberOrdering::VkcDeg => "vkc-deg",
            MemberOrdering::VkcDegDesc => "vkc-deg-desc",
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BbOptions {
    /// Candidate ordering (the paper's algorithm variants).
    pub ordering: MemberOrdering,
    /// Apply Theorem 2 keyword pruning.
    pub keyword_pruning: bool,
    /// Apply Theorem 3 eager k-line filtering. When `false`, tenuity is
    /// enforced by lazy pairwise checks instead (still exact).
    pub kline_filtering: bool,
    /// Stop the whole search as soon as a group with at least this
    /// coverage count is admitted (DKTG-Greedy's "not less than `C_max`"
    /// early exit). `None` runs to optimality.
    pub stop_at_coverage: Option<u32>,
    /// Safety valve for benchmarks: abandon the search after visiting this
    /// many tree nodes. The result is then possibly sub-optimal and
    /// [`SearchStats::truncated`] is set. `None` (the default everywhere
    /// outside the harness) runs to completion.
    pub node_budget: Option<u64>,
}

impl BbOptions {
    /// KTG-VKC (Algorithm 1).
    pub fn vkc() -> Self {
        BbOptions {
            ordering: MemberOrdering::Vkc,
            keyword_pruning: true,
            kline_filtering: true,
            stop_at_coverage: None,
            node_budget: None,
        }
    }

    /// KTG-VKC-DEG (§IV-B).
    pub fn vkc_deg() -> Self {
        BbOptions { ordering: MemberOrdering::VkcDeg, ..Self::vkc() }
    }

    /// KTG-QKC (the §VII comparison variant).
    pub fn qkc() -> Self {
        BbOptions { ordering: MemberOrdering::Qkc, ..Self::vkc() }
    }

    /// Same options with a different ordering.
    pub fn with_ordering(self, ordering: MemberOrdering) -> Self {
        BbOptions { ordering, ..self }
    }
}

/// The outcome of one KTG query.
#[derive(Clone, Debug)]
pub struct KtgOutcome {
    /// Result groups in descending coverage (then discovery) order; at
    /// most `N`, fewer when the graph does not admit `N` feasible groups.
    pub groups: Vec<Group>,
    /// Search instrumentation.
    pub stats: SearchStats,
}

impl KtgOutcome {
    /// Coverage ratio of the best group (0.0 when no group was found).
    pub fn best_qkc(&self, num_query_keywords: usize) -> f64 {
        self.groups.first().map_or(0.0, |g| g.qkc(num_query_keywords))
    }
}

/// Runs a KTG query end to end: compile masks, collect candidates, search.
pub fn solve(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    opts: &BbOptions,
) -> KtgOutcome {
    let masks = net.compile(query.keywords());
    let cands = candidates::collect(net.graph(), &masks);
    let outcome = solve_with_candidates(query, oracle, cands, opts);
    // Truncated searches may hold a sub-optimal (but still well-formed)
    // result; the audit's ordering/tenuity/coverage contract holds either
    // way, so checked mode gates every driver exit.
    crate::verify::enforce(net, query, &outcome.groups);
    outcome
}

/// Runs the search over a pre-extracted candidate set (used by
/// DKTG-Greedy, the multi-query-vertex extension, and tests that need to
/// manipulate the candidate pool).
pub fn solve_with_candidates(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    mut cands: Vec<Candidate>,
    opts: &BbOptions,
) -> KtgOutcome {
    let mut ctx = Ctx {
        query,
        oracle,
        opts,
        results: TopN::new(query.n()),
        stats: SearchStats::default(),
        seq: 0,
        stop: false,
        members: Vec::with_capacity(query.p()),
    };
    opts.ordering.sort(0, &mut cands);
    ctx.dfs(0, &cands);

    let groups = ctx.results.into_sorted_desc().into_iter().map(|r| r.group).collect();
    KtgOutcome { groups, stats: ctx.stats }
}

struct Ctx<'a, O: DistanceOracle> {
    query: &'a KtgQuery,
    oracle: &'a O,
    opts: &'a BbOptions,
    results: TopN<RankedGroup>,
    stats: SearchStats,
    seq: u64,
    stop: bool,
    /// The intermediate result set `S_I`.
    members: Vec<ktg_common::VertexId>,
}

impl<O: DistanceOracle> Ctx<'_, O> {
    /// The admission threshold: the N-th best coverage count once `N`
    /// groups are held, else `None` (everything feasible is admissible).
    #[inline]
    fn threshold(&self) -> Option<u32> {
        self.results.threshold().map(|r| r.count)
    }

    /// Theorem 2: can `covered` plus the best `need` remaining VKC values
    /// still strictly exceed the threshold?
    fn upper_bound_admissible(&mut self, covered: u64, s_r: &[Candidate], need: usize) -> bool {
        let Some(threshold) = self.threshold() else { return true };
        let base = coverage::covered_count(covered);
        let bound = base + top_vkc_sum(covered, s_r, need, self.opts.ordering.vkc_sorted());
        bound > threshold
    }

    fn offer(&mut self, covered: u64) {
        self.stats.groups_evaluated += 1;
        let group = Group::new(self.members.clone(), covered);
        let count = group.coverage_count();
        let admitted = self.results.offer(RankedGroup::new(group, self.seq));
        self.seq += 1;
        if admitted {
            if let Some(floor) = self.opts.stop_at_coverage {
                if count >= floor && self.results.is_full() {
                    self.stop = true;
                }
            }
        }
    }

    /// One Algorithm 1 node: `members`/`covered` are `S_I`, `s_r` is the
    /// ordered remaining set (already k-line-consistent with `S_I` when
    /// eager filtering is on).
    /// Counts a search-tree node against the budget; returns `false` when
    /// the budget is exhausted (the search then unwinds).
    #[inline]
    fn charge_node(&mut self) -> bool {
        self.stats.nodes += 1;
        if let Some(budget) = self.opts.node_budget {
            if self.stats.nodes > budget {
                self.stats.truncated = true;
                self.stop = true;
                return false;
            }
        }
        true
    }

    fn dfs(&mut self, covered: u64, s_r: &[Candidate]) {
        if !self.charge_node() {
            return;
        }
        if self.members.len() == self.query.p() {
            self.offer(covered);
            return;
        }
        let need = self.query.p() - self.members.len();

        for i in 0..s_r.len() {
            if self.stop {
                return;
            }
            if s_r.len() - i < need {
                self.stats.feasibility_cuts += 1;
                return;
            }
            // The remaining pool only shrinks as `i` advances, so a failed
            // bound here fails for every later branch too: return, don't
            // continue.
            if self.opts.keyword_pruning && !self.upper_bound_admissible(covered, &s_r[i..], need)
            {
                self.stats.keyword_pruned += 1;
                return;
            }

            let cand = s_r[i];
            if !self.opts.kline_filtering {
                // Lazy tenuity: check the new member against S_I directly.
                self.stats.distance_checks += self.members.len() as u64;
                let conflict = self
                    .members
                    .iter()
                    .any(|&u| self.oracle.is_kline(u, cand.v, self.query.k()));
                if conflict {
                    continue;
                }
            }

            let new_covered = covered | cand.mask;
            self.members.push(cand.v);

            if self.members.len() == self.query.p() {
                if self.charge_node() {
                    self.offer(new_covered);
                }
            } else {
                // Build the child S_R from the still-unexplored tail.
                let tail = &s_r[i + 1..];
                let mut child: Vec<Candidate> = Vec::with_capacity(tail.len());
                if self.opts.kline_filtering {
                    self.stats.distance_checks += tail.len() as u64;
                    for &c in tail {
                        if self.oracle.farther_than(cand.v, c.v, self.query.k()) {
                            child.push(c);
                        } else {
                            self.stats.kline_filtered += 1;
                        }
                    }
                } else {
                    child.extend_from_slice(tail);
                }
                self.opts.ordering.sort(new_covered, &mut child);
                self.dfs(new_covered, &child);
            }

            self.members.pop();
        }
    }
}

/// Sum of the `need` largest VKC counts in `s_r` w.r.t. `covered`.
///
/// When the list is VKC-sorted this is the sum of the head; otherwise a
/// selection scan keeps a tiny descending buffer (need ≤ p, and p ≤ 7 in
/// every evaluated configuration).
fn top_vkc_sum(covered: u64, s_r: &[Candidate], need: usize, sorted: bool) -> u32 {
    if sorted {
        return s_r
            .iter()
            .take(need)
            .map(|c| coverage::vkc_count(c.mask, covered))
            .sum();
    }
    let mut top: Vec<u32> = Vec::with_capacity(need);
    for c in s_r {
        let val = coverage::vkc_count(c.mask, covered);
        if top.len() < need {
            top.push(val);
            top.sort_unstable_by(|a, b| b.cmp(a));
        } else if let Some(last) = top.last_mut() {
            // `top` is full here (need > 0 on every caller path), so the
            // buffer minimum sits at the end of the descending slice.
            if val > *last {
                *last = val;
                top.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
    }
    top.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use ktg_index::{BfsOracle, ExactOracle, NlIndex, NlrnlIndex};

    fn paper_query(net: &AttributedGraph) -> KtgQuery {
        KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            1,
            2,
        )
        .unwrap()
    }

    /// The paper's running query: top-2 groups of size 3 with k = 1 cover
    /// 4 of 5 query keywords ({SN, QP, DQ, GD}; nobody has GQ).
    #[test]
    fn figure1_query_all_orderings() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = BfsOracle::new(net.graph());
        for opts in [BbOptions::vkc(), BbOptions::vkc_deg(), BbOptions::qkc()] {
            let out = solve(&net, &query, &oracle, &opts);
            assert_eq!(out.groups.len(), 2, "{:?}", opts.ordering);
            for g in &out.groups {
                assert_eq!(g.coverage_count(), 4, "{:?}", opts.ordering);
                assert_eq!(g.len(), 3);
                fixtures::assert_k_distance(net.graph(), g.members(), 1);
            }
        }
    }

    #[test]
    fn all_oracles_agree_on_figure1() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let bfs = BfsOracle::new(net.graph());
        let nl = NlIndex::build(net.graph());
        let nlrnl = NlrnlIndex::build(net.graph());
        let exact = ExactOracle::build(net.graph());
        let a = solve(&net, &query, &bfs, &BbOptions::vkc_deg());
        let b = solve(&net, &query, &nl, &BbOptions::vkc_deg());
        let c = solve(&net, &query, &nlrnl, &BbOptions::vkc_deg());
        let d = solve(&net, &query, &exact, &BbOptions::vkc_deg());
        assert_eq!(a.groups, b.groups);
        assert_eq!(b.groups, c.groups);
        assert_eq!(c.groups, d.groups);
    }

    #[test]
    fn pruning_toggles_preserve_exactness() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let reference = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        for (kp, kf) in [(false, true), (true, false), (false, false)] {
            let opts = BbOptions { keyword_pruning: kp, kline_filtering: kf, ..BbOptions::vkc_deg() };
            let out = solve(&net, &query, &oracle, &opts);
            assert_eq!(
                out.groups[0].coverage_count(),
                reference.groups[0].coverage_count(),
                "kp={kp} kf={kf}"
            );
            assert_eq!(out.groups.len(), reference.groups.len());
        }
    }

    #[test]
    fn pruning_reduces_work() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let with = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let without = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { keyword_pruning: false, ..BbOptions::vkc_deg() },
        );
        assert!(with.stats.nodes <= without.stats.nodes);
        assert!(with.stats.keyword_pruned > 0);
    }

    #[test]
    fn infeasible_when_k_too_large() {
        let net = fixtures::figure1();
        // k = 10 exceeds the main component's diameter: no 3 candidates
        // are pairwise farther than 10 hops.
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            10,
            2,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert!(out.groups.is_empty());
    }

    #[test]
    fn k_zero_admits_any_distinct_candidates() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            3,
            0,
            1,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].coverage_count(), 4, "still no GQ anywhere");
    }

    #[test]
    fn stop_at_coverage_exits_early() {
        let net = fixtures::figure1();
        let query = paper_query(&net).with_n(1).unwrap();
        let oracle = ExactOracle::build(net.graph());
        let full = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        let early = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { stop_at_coverage: Some(4), ..BbOptions::vkc_deg() },
        );
        assert_eq!(early.groups[0].coverage_count(), 4);
        assert!(early.stats.nodes <= full.stats.nodes);
    }

    #[test]
    fn p_one_returns_best_single_vertices() {
        let net = fixtures::figure1();
        let query = KtgQuery::new(
            net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
            1,
            1,
            3,
        )
        .unwrap();
        let oracle = BfsOracle::new(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert_eq!(out.groups.len(), 3);
        // u0 covers 3 query keywords — the unique best single vertex.
        assert_eq!(out.groups[0].coverage_count(), 3);
    }

    #[test]
    fn ordering_sort_keys() {
        let mk = |v: u32, mask: u64, degree: u32| Candidate {
            v: ktg_common::VertexId(v),
            mask,
            degree,
        };
        // Three candidates: equal VKC for (1, 2), different degrees.
        let cands = vec![mk(0, 0b0001, 9), mk(1, 0b0110, 5), mk(2, 0b0011, 2)];

        let mut qkc = cands.clone();
        MemberOrdering::Qkc.sort(0, &mut qkc);
        // Static popcount order: v1 (2) ties v2 (2) → id asc; v0 (1) last.
        assert_eq!(qkc.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![1, 2, 0]);

        // covered = 0b0010: VKC = [1, 1, 1] → pure id order under Vkc.
        let mut vkc = cands.clone();
        MemberOrdering::Vkc.sort(0b0010, &mut vkc);
        assert_eq!(vkc.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![0, 1, 2]);

        // Same covered, VkcDeg: ties broken by ascending degree.
        let mut deg = cands.clone();
        MemberOrdering::VkcDeg.sort(0b0010, &mut deg);
        assert_eq!(deg.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![2, 1, 0]);

        // Descending-degree ablation ordering is the reverse tiebreak.
        let mut desc = cands.clone();
        MemberOrdering::VkcDegDesc.sort(0b0010, &mut desc);
        assert_eq!(desc.iter().map(|c| c.v.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ordering_names() {
        assert_eq!(MemberOrdering::Qkc.name(), "qkc");
        assert_eq!(MemberOrdering::Vkc.name(), "vkc");
        assert_eq!(MemberOrdering::VkcDeg.name(), "vkc-deg");
        assert_eq!(MemberOrdering::VkcDegDesc.name(), "vkc-deg-desc");
    }

    #[test]
    fn best_qkc_helper() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let out = solve(&net, &query, &oracle, &BbOptions::vkc_deg());
        assert!((out.best_qkc(5) - 0.8).abs() < 1e-12);
        let empty = KtgOutcome { groups: vec![], stats: SearchStats::default() };
        assert_eq!(empty.best_qkc(5), 0.0);
    }

    #[test]
    fn node_budget_sets_truncated_flag() {
        let net = fixtures::figure1();
        let query = paper_query(&net);
        let oracle = ExactOracle::build(net.graph());
        let out = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { node_budget: Some(2), ..BbOptions::vkc_deg() },
        );
        assert!(out.stats.truncated);
        let full = solve(
            &net,
            &query,
            &oracle,
            &BbOptions { node_budget: Some(u64::MAX), ..BbOptions::vkc_deg() },
        );
        assert!(!full.stats.truncated);
    }

    #[test]
    fn top_vkc_sum_selection_scan_matches_sorted() {
        let cands: Vec<Candidate> = [(0u32, 0b0111u64, 1u32), (1, 0b1000, 2), (2, 0b0011, 3)]
            .iter()
            .map(|&(v, mask, degree)| Candidate { v: ktg_common::VertexId(v), mask, degree })
            .collect();
        // covered = 0b0001 → vkc counts = [2, 1, 1]; top-2 = 3.
        assert_eq!(top_vkc_sum(0b0001, &cands, 2, false), 3);
        let mut sorted = cands.clone();
        MemberOrdering::Vkc.sort(0b0001, &mut sorted);
        assert_eq!(top_vkc_sum(0b0001, &sorted, 2, true), 3);
    }
}

//! # `ktg-core`
//!
//! The primary contribution of *"Keyword-based Socially Tenuous Group
//! Queries"* (Zhu et al., ICDE 2023), implemented in full:
//!
//! * [`KtgQuery`] / [`DktgQuery`] — the query forms `⟨W_Q, p, k, N⟩` and
//!   their validation (Definitions 7 and 10).
//! * [`bb`] — the exact branch-and-bound engine behind **KTG-VKC** and
//!   **KTG-VKC-DEG** (and the **KTG-QKC** variant evaluated in §VII),
//!   with *keyword pruning* (Theorem 2) and *k-line filtering*
//!   (Theorem 3), each independently toggleable for ablations.
//! * [`brute`] — the brute-force exact baseline from §III, used as ground
//!   truth by the test suite.
//! * [`dktg`] — the diversified variant: Jaccard diversity `dL`
//!   (Definition 9), the combined score (Eq. 4), **DKTG-Greedy** (§VI-B)
//!   and the `1 − α` approximation bound of §VI-C.
//! * [`tagq`] — a faithful comparator for TAGQ [18] (maximize *average*
//!   coverage under a k-tenuity budget), used by the Figure 8 case study.
//! * [`multi_query`] — the §IV-B *Discussion* extension: exclude
//!   candidates socially close to given query vertices (paper authors).
//! * [`serve`] — the batched query-serving layer: workload executor with
//!   pooled scratch arenas, an epoch-guarded result cache, and
//!   cross-query conflict-row reuse (byte-identical to fresh solves).
//! * [`network`] — [`network::AttributedGraph`], the ergonomic facade
//!   bundling topology + keywords that examples and downstream users
//!   interact with.
//! * [`fixtures`] — the paper's Figure 1 running example, reconstructed
//!   from the worked examples in §§III–VI and shared by tests, examples
//!   and the case study.
//!
//! ## Quick start
//!
//! ```
//! use ktg_core::network::AttributedGraph;
//! use ktg_core::{bb, KtgQuery, MemberOrdering};
//! use ktg_index::BfsOracle;
//!
//! let net = ktg_core::fixtures::figure1();
//! let query = KtgQuery::new(
//!     net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
//!     3,    // group size p
//!     1,    // tenuity constraint k
//!     2,    // top N
//! )
//! .unwrap();
//! let oracle = BfsOracle::new(net.graph());
//! let outcome = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
//! assert_eq!(outcome.groups[0].coverage_count(), 4); // 4 of 5 keywords
//! ```


#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bb;
pub mod brute;
pub mod candidates;
pub mod dktg;
pub mod dktg_exact;
pub mod explain;
pub mod fixtures;
pub mod group;
pub mod multi_query;
pub mod network;
pub mod query;
pub mod serve;
pub mod stats;
pub mod tagq;
pub mod tenuity;
pub mod verify;

pub use bb::{BbOptions, KtgOutcome, MemberOrdering};
pub use candidates::Candidate;
pub use dktg::{DktgOutcome, DktgQuery};
pub use group::Group;
pub use network::AttributedGraph;
pub use query::KtgQuery;
pub use stats::SearchStats;
pub use verify::{audit_results, AuditReport, Violation};

//! The brute-force exact baseline (paper §III).
//!
//! Enumerates every `C(|candidates|, p)` combination, keeps the feasible
//! k-distance groups, and returns the top-N by coverage with the same tie
//! semantics as the branch-and-bound engine. `O(|V|^p)` — the paper's
//! strawman, retained as the ground truth for the property-test suite and
//! as the slow end of the ablation benches.

use crate::candidates::{self, Candidate};
use crate::bb::KtgOutcome;
use crate::group::{Group, RankedGroup};
use crate::network::AttributedGraph;
use crate::query::KtgQuery;
use crate::stats::SearchStats;
use ktg_common::TopN;
use ktg_index::DistanceOracle;

/// Runs the brute-force search end to end.
pub fn solve(
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
) -> KtgOutcome {
    let masks = net.compile(query.keywords());
    let cands = candidates::collect_vec(net.graph(), &masks);
    solve_with_candidates(query, oracle, cands)
}

/// Brute-force search over a pre-extracted candidate pool.
pub fn solve_with_candidates(
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    cands: Vec<Candidate>,
) -> KtgOutcome {
    let mut results: TopN<RankedGroup> = TopN::new(query.n());
    let mut stats = SearchStats::default();
    let mut chosen: Vec<usize> = Vec::with_capacity(query.p());
    enumerate(&cands, query, oracle, 0, 0, &mut chosen, &mut results, &mut stats);
    KtgOutcome {
        groups: results.into_sorted_desc().into_iter().map(|r| r.group).collect(),
        stats,
        status: ktg_common::CompletionStatus::Exact,
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    cands: &[Candidate],
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    start: usize,
    covered: u64,
    chosen: &mut Vec<usize>,
    results: &mut TopN<RankedGroup>,
    stats: &mut SearchStats,
) {
    stats.nodes += 1;
    if chosen.len() == query.p() {
        stats.groups_evaluated += 1;
        let members = chosen.iter().map(|&i| cands[i].v).collect();
        results.offer(RankedGroup::new(Group::new(members, covered)));
        return;
    }
    for i in start..cands.len() {
        // Plain combination enumeration: the only cut is the tenuity
        // check itself (the brute-force method of §III verifies each
        // complete group; checking incrementally is equivalent and keeps
        // the runtime survivable for tests).
        stats.distance_checks += chosen.len() as u64;
        let feasible = chosen
            .iter()
            .all(|&j| oracle.farther_than(cands[j].v, cands[i].v, query.k()));
        if !feasible {
            continue;
        }
        chosen.push(i);
        enumerate(cands, query, oracle, i + 1, covered | cands[i].mask, chosen, results, stats);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::{self, BbOptions, MemberOrdering};
    use crate::fixtures;
    use ktg_index::ExactOracle;

    #[test]
    fn matches_bb_on_figure1() {
        let net = fixtures::figure1();
        let oracle = ExactOracle::build(net.graph());
        for (p, k, n) in [(3usize, 1u32, 2usize), (2, 2, 3), (4, 1, 1), (3, 2, 5)] {
            let query = KtgQuery::new(
                net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).unwrap(),
                p,
                k,
                n,
            )
            .unwrap();
            let brute = solve(&net, &query, &oracle);
            for ordering in
                [MemberOrdering::Qkc, MemberOrdering::Vkc, MemberOrdering::VkcDeg]
            {
                let fast =
                    bb::solve(&net, &query, &oracle, &BbOptions::vkc().with_ordering(ordering));
                let brute_counts: Vec<u32> =
                    brute.groups.iter().map(Group::coverage_count).collect();
                let fast_counts: Vec<u32> =
                    fast.groups.iter().map(Group::coverage_count).collect();
                assert_eq!(
                    brute_counts, fast_counts,
                    "p={p} k={k} n={n} ordering={ordering:?}"
                );
                for g in &fast.groups {
                    fixtures::assert_k_distance(net.graph(), g.members(), k);
                }
            }
        }
    }

    #[test]
    fn empty_candidates_yield_no_groups() {
        let net = fixtures::figure1();
        // ML and IR are carried only by u6, u8, u9 — a feasible group of
        // size 3 needs them pairwise farther than 2, which fails.
        let query =
            KtgQuery::new(net.query_keywords(["ML", "IR"]).unwrap(), 3, 2, 1).unwrap();
        let oracle = ExactOracle::build(net.graph());
        let out = solve(&net, &query, &oracle);
        assert!(out.groups.is_empty());
    }
}

//! Result groups.
//!
//! A [`Group`] is a set of `p` members together with the union mask of the
//! query keywords they cover. Result ranking ([`RankedGroup`]) orders by
//! coverage count and breaks ties by *canonical member order* (the
//! lexicographically smallest member list ranks highest). The ranking is
//! therefore a pure function of the group set itself — independent of
//! discovery order, thread count, or timing — which is what lets the
//! parallel branch-and-bound engine merge per-worker top-N heaps into a
//! result byte-identical to the sequential engine's.

use ktg_common::VertexId;
use ktg_keywords::coverage;
use std::cmp::Ordering;

/// A candidate or result group: sorted members plus covered-keyword mask.
///
/// The derived ordering (lexicographic by members, then mask) exists only
/// so containers can canonicalize; it is *not* the result ranking — that
/// is [`RankedGroup`]'s job.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Group {
    members: Vec<VertexId>,
    mask: u64,
}

impl Group {
    /// Creates a group; members are sorted for canonical comparison.
    pub fn new(mut members: Vec<VertexId>, mask: u64) -> Self {
        members.sort_unstable();
        debug_assert!(members.windows(2).all(|w| w[0] != w[1]), "duplicate member");
        Group { members, mask }
    }

    /// The members, in ascending id order.
    #[inline]
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Group size.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The union coverage mask over `W_Q`.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of query keywords covered (the integer numerator of
    /// Definition 6).
    #[inline]
    pub fn coverage_count(&self) -> u32 {
        coverage::covered_count(self.mask)
    }

    /// `QKC(g)` as a ratio (Definition 6).
    #[inline]
    pub fn qkc(&self, num_query_keywords: usize) -> f64 {
        coverage::qkc(self.mask, num_query_keywords)
    }

    /// Whether `v` is a member (binary search).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

/// A group ranked for top-N selection: compares by coverage count first,
/// then by canonical member order (lexicographically *smaller* member
/// lists rank higher).
///
/// The ordering deliberately ignores how or when the group was found, so
/// the top-N result is a pure function of the set of feasible groups.
/// Sequential and parallel searches that enumerate the same feasible
/// groups — in any order, across any number of threads — therefore
/// produce identical results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankedGroup {
    /// Covered-keyword count — the primary objective.
    pub count: u32,
    /// The group itself; its member list is the tiebreak.
    pub group: Group,
}

impl RankedGroup {
    /// Ranks a group by its coverage count.
    pub fn new(group: Group) -> Self {
        RankedGroup { count: group.coverage_count(), group }
    }
}

impl Ord for RankedGroup {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher coverage ranks higher; ties go to the lexicographically
        // smaller member list (reversed comparison: smaller is "greater").
        // The mask leg keeps Ord consistent with the derived Eq; for
        // groups of one query it never decides (mask is a function of the
        // members).
        self.count
            .cmp(&other.count)
            .then_with(|| other.group.members().cmp(self.group.members()))
            .then_with(|| other.group.mask().cmp(&self.group.mask()))
    }
}

impl PartialOrd for RankedGroup {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(ids: &[u32], mask: u64) -> Group {
        Group::new(ids.iter().map(|&i| VertexId(i)).collect(), mask)
    }

    #[test]
    fn members_sorted() {
        let group = g(&[5, 1, 3], 0b1);
        assert_eq!(group.members(), &[VertexId(1), VertexId(3), VertexId(5)]);
        assert!(group.contains(VertexId(3)));
        assert!(!group.contains(VertexId(2)));
    }

    #[test]
    fn coverage_math() {
        let group = g(&[0, 1], 0b1011);
        assert_eq!(group.coverage_count(), 3);
        assert!((group.qkc(4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ranked_ordering_prefers_higher_count() {
        let a = RankedGroup::new(g(&[0], 0b111));
        let b = RankedGroup::new(g(&[1], 0b1));
        assert!(a > b);
    }

    #[test]
    fn ranked_ordering_breaks_ties_canonically() {
        let small = RankedGroup::new(g(&[0, 5], 0b11));
        let large = RankedGroup::new(g(&[0, 7], 0b11));
        assert!(small > large, "smaller member list wins ties");
        // Prefix rule: [0] < [0, 5] lexicographically, so [0] ranks higher.
        let prefix = RankedGroup::new(g(&[0], 0b11));
        assert!(prefix > small);
    }

    #[test]
    fn ranked_ordering_is_discovery_independent() {
        let mut groups =
            vec![g(&[2, 3], 0b11), g(&[0, 9], 0b11), g(&[0, 1], 0b1), g(&[4, 5], 0b111)];
        let mut ranked: Vec<RankedGroup> = groups.drain(..).map(RankedGroup::new).collect();
        let mut reversed = ranked.clone();
        reversed.reverse();
        ranked.sort();
        reversed.sort();
        assert_eq!(ranked, reversed, "ranking is a pure function of the set");
    }

    #[test]
    fn topn_integration_canonical_ties() {
        let mut top = ktg_common::TopN::new(2);
        top.offer(RankedGroup::new(g(&[0, 2], 0b11)));
        top.offer(RankedGroup::new(g(&[0, 3], 0b11)));
        // Same coverage, canonically larger than the incumbent minimum
        // ([0, 3]): must be rejected.
        assert!(!top.offer(RankedGroup::new(g(&[0, 4], 0b11))));
        // Same coverage, canonically smaller: displaces [0, 3].
        assert!(top.offer(RankedGroup::new(g(&[0, 1], 0b11))));
        // Strictly better count: admitted regardless of members.
        assert!(top.offer(RankedGroup::new(g(&[9, 10], 0b111))));
        let result = top.into_sorted_desc();
        assert_eq!(result[0].group.members(), &[VertexId(9), VertexId(10)]);
        assert_eq!(result[1].group.members(), &[VertexId(0), VertexId(1)]);
    }
}

//! Result groups.
//!
//! A [`Group`] is a set of `p` members together with the union mask of the
//! query keywords they cover. Groups order by coverage count and then by
//! discovery order (earlier wins), which — combined with
//! `ktg_common::TopN`'s strict-improvement admission — reproduces the
//! paper's behaviour where later groups that merely tie the N-th best do
//! not enter the result.

use ktg_common::VertexId;
use ktg_keywords::coverage;
use std::cmp::Reverse;

/// A candidate or result group: sorted members plus covered-keyword mask.
///
/// The derived ordering (lexicographic by members, then mask) exists only
/// so containers can canonicalize; it is *not* the result ranking — that
/// is [`RankedGroup`]'s job.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Group {
    members: Vec<VertexId>,
    mask: u64,
}

impl Group {
    /// Creates a group; members are sorted for canonical comparison.
    pub fn new(mut members: Vec<VertexId>, mask: u64) -> Self {
        members.sort_unstable();
        debug_assert!(members.windows(2).all(|w| w[0] != w[1]), "duplicate member");
        Group { members, mask }
    }

    /// The members, in ascending id order.
    #[inline]
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Group size.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The union coverage mask over `W_Q`.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of query keywords covered (the integer numerator of
    /// Definition 6).
    #[inline]
    pub fn coverage_count(&self) -> u32 {
        coverage::covered_count(self.mask)
    }

    /// `QKC(g)` as a ratio (Definition 6).
    #[inline]
    pub fn qkc(&self, num_query_keywords: usize) -> f64 {
        coverage::qkc(self.mask, num_query_keywords)
    }

    /// Whether `v` is a member (binary search).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

/// A group ranked for top-N selection: compares by coverage count first,
/// then by discovery sequence (earlier discovery ranks higher), making
/// result sets deterministic for a fixed exploration order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RankedGroup {
    /// Covered-keyword count — the primary objective.
    pub count: u32,
    /// Discovery tiebreak: earlier (smaller seq) ranks higher.
    pub seq: Reverse<u64>,
    /// The group itself (never reached by comparisons: `seq` is unique).
    pub group: Group,
}

impl RankedGroup {
    /// Wraps a group found as the `seq`-th feasible group.
    pub fn new(group: Group, seq: u64) -> Self {
        RankedGroup { count: group.coverage_count(), seq: Reverse(seq), group }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(ids: &[u32], mask: u64) -> Group {
        Group::new(ids.iter().map(|&i| VertexId(i)).collect(), mask)
    }

    #[test]
    fn members_sorted() {
        let group = g(&[5, 1, 3], 0b1);
        assert_eq!(group.members(), &[VertexId(1), VertexId(3), VertexId(5)]);
        assert!(group.contains(VertexId(3)));
        assert!(!group.contains(VertexId(2)));
    }

    #[test]
    fn coverage_math() {
        let group = g(&[0, 1], 0b1011);
        assert_eq!(group.coverage_count(), 3);
        assert!((group.qkc(4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ranked_ordering_prefers_higher_count() {
        let a = RankedGroup::new(g(&[0], 0b111), 5);
        let b = RankedGroup::new(g(&[1], 0b1), 1);
        assert!(a > b);
    }

    #[test]
    fn ranked_ordering_prefers_earlier_on_tie() {
        let early = RankedGroup::new(g(&[0], 0b11), 1);
        let late = RankedGroup::new(g(&[1], 0b11), 9);
        assert!(early > late, "earlier discovery wins ties");
    }

    #[test]
    fn topn_integration_ties_do_not_displace() {
        let mut top = ktg_common::TopN::new(2);
        top.offer(RankedGroup::new(g(&[0, 1], 0b11), 0));
        top.offer(RankedGroup::new(g(&[0, 2], 0b11), 1));
        // Same coverage, later discovery: must be rejected.
        assert!(!top.offer(RankedGroup::new(g(&[0, 3], 0b11), 2)));
        // Strictly better: admitted.
        assert!(top.offer(RankedGroup::new(g(&[0, 4], 0b111), 3)));
        let result = top.into_sorted_desc();
        assert_eq!(result[0].group.members()[1], VertexId(4));
    }
}

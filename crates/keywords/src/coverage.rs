//! Coverage arithmetic (paper Definitions 5, 6 and 8).
//!
//! With per-vertex masks over `W_Q`, the three coverage notions reduce to
//! bit operations:
//!
//! * `QKC(v)` (Def. 5)  = `popcount(mask_v) / |W_Q|`
//! * `QKC(F)` (Def. 6)  = `popcount(⋃ mask_v) / |W_Q|`
//! * `VKC(v)` (Def. 8)  = `popcount(mask_v \ covered(S_I)) / |W_Q|`
//!
//! The branch-and-bound search compares coverages with common denominator
//! `|W_Q|`, so the *integer* variants (`*_count`) are what the hot paths
//! use; the `f64` ratios exist for reports and the DKTG score.

/// Number of query keywords covered by a mask.
#[inline]
pub fn covered_count(mask: u64) -> u32 {
    mask.count_ones()
}

/// `QKC` of a single mask as a ratio in `[0, 1]`.
#[inline]
pub fn qkc(mask: u64, num_query_keywords: usize) -> f64 {
    debug_assert!(num_query_keywords > 0);
    covered_count(mask) as f64 / num_query_keywords as f64
}

/// The union mask of a group given its member masks.
#[inline]
pub fn group_mask<I: IntoIterator<Item = u64>>(masks: I) -> u64 {
    masks.into_iter().fold(0, |acc, m| acc | m)
}

/// `QKC` of a group (Def. 6).
#[inline]
pub fn group_qkc<I: IntoIterator<Item = u64>>(masks: I, num_query_keywords: usize) -> f64 {
    qkc(group_mask(masks), num_query_keywords)
}

/// Valid-keyword count of `mask` w.r.t. an already-covered mask (Def. 8
/// numerator): query keywords `v` would newly contribute to `S_I`.
#[inline]
pub fn vkc_count(mask: u64, covered: u64) -> u32 {
    (mask & !covered).count_ones()
}

/// `VKC` as a ratio (Def. 8).
#[inline]
pub fn vkc(mask: u64, covered: u64, num_query_keywords: usize) -> f64 {
    vkc_count(mask, covered) as f64 / num_query_keywords as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ratios() {
        assert_eq!(covered_count(0b1011), 3);
        assert!((qkc(0b1011, 5) - 0.6).abs() < 1e-12);
        assert_eq!(qkc(0, 5), 0.0);
    }

    #[test]
    fn group_union() {
        let masks = [0b001u64, 0b010, 0b010];
        assert_eq!(group_mask(masks), 0b011);
        assert!((group_qkc(masks, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn vkc_excludes_covered() {
        // v covers {0,1,3}; S_I already covers {1,2}.
        assert_eq!(vkc_count(0b1011, 0b0110), 2); // bits 0 and 3 are new
        assert!((vkc(0b1011, 0b0110, 4) - 0.5).abs() < 1e-12);
        assert_eq!(vkc_count(0b1011, 0b1011), 0);
        assert_eq!(vkc_count(0b1011, 0), 3);
    }

    #[test]
    fn paper_running_example() {
        // Figure 1 walk-through from §IV-A: W_Q = {SN, QP, DQ, GQ, GD},
        // bits in that order. S_I = {u0} covers {SN, GD, DQ}; u10 covers
        // {QP, GD} of which only QP is valid → VKC(u10) = 1/5.
        let w_q = 5;
        let u0 = 0b10101u64; // SN, DQ, GD
        let u10 = 0b10010u64; // QP, GD
        assert_eq!(vkc_count(u10, u0), 1);
        assert!((vkc(u10, u0, w_q) - 0.2).abs() < 1e-12);
        // Group coverage of {u0, u10}: SN, QP, DQ, GD → 4/5.
        assert!((group_qkc([u0, u10], w_q) - 0.8).abs() < 1e-12);
    }
}

//! Interned keyword vocabulary.
//!
//! The paper's keyword universe `κ = {k_1, …, k_m}` is a set of strings
//! (research terms in the running example: "SN", "QP", "DQ", …). All
//! algorithm-facing code works with dense [`KeywordId`]s; strings appear
//! only at the API boundary and in reports.

use ktg_common::FxHashMap;
use std::fmt;

/// A dense keyword handle into a [`Vocabulary`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// Returns the id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for KeywordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// An append-only string interner for keywords.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    by_term: FxHashMap<String, KeywordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing id if already present).
    pub fn intern(&mut self, term: &str) -> KeywordId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = KeywordId(self.terms.len() as u32);
        self.terms.push(term.to_owned());
        self.by_term.insert(term.to_owned(), id);
        id
    }

    /// Looks up a term without interning.
    pub fn get(&self, term: &str) -> Option<KeywordId> {
        self.by_term.get(term).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn term(&self, id: KeywordId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct keywords (`m` in the paper).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a batch, returning ids in order (convenience for fixtures).
    pub fn intern_all<'a, I: IntoIterator<Item = &'a str>>(&mut self, terms: I) -> Vec<KeywordId> {
        terms.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Builds a synthetic vocabulary `t0, t1, …` of the given size
    /// (used by the dataset generators).
    pub fn synthetic(size: usize) -> Self {
        let mut v = Self::new();
        for i in 0..size {
            v.intern(&format!("t{i}"));
        }
        v
    }

    /// The interned terms in id order (persistence).
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Reassembles a vocabulary from its term list, validating that the
    /// terms are distinct (ids are their positions).
    ///
    /// # Errors
    /// [`ktg_common::KtgError::InvalidInput`] on duplicate terms or a term
    /// count exceeding the `u32` id space.
    pub fn from_terms(terms: Vec<String>) -> ktg_common::Result<Self> {
        if terms.len() > u32::MAX as usize {
            return Err(ktg_common::KtgError::input("vocabulary exceeds the u32 id space"));
        }
        let mut by_term = FxHashMap::default();
        for (i, term) in terms.iter().enumerate() {
            if by_term.insert(term.clone(), KeywordId(i as u32)).is_some() {
                return Err(ktg_common::KtgError::input(format!(
                    "duplicate vocabulary term '{term}'"
                )));
            }
        }
        Ok(Vocabulary { terms, by_term })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("graph");
        let b = v.intern("graph");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_order() {
        let mut v = Vocabulary::new();
        let ids = v.intern_all(["a", "b", "c"]);
        assert_eq!(ids, vec![KeywordId(0), KeywordId(1), KeywordId(2)]);
    }

    #[test]
    fn term_roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("social network");
        assert_eq!(v.term(id), "social network");
        assert_eq!(v.get("social network"), Some(id));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn synthetic_sizes() {
        let v = Vocabulary::synthetic(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.get("t99"), Some(KeywordId(99)));
        assert_eq!(v.get("t100"), None);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}

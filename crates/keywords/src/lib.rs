//! # `ktg-keywords`
//!
//! Keyword substrate for the KTG (ICDE 2023) reproduction: the `κ` part of
//! the paper's attributed social network `G = (V, E, κ)`.
//!
//! * [`Vocabulary`] — interned keyword strings with dense [`KeywordId`]s.
//! * [`VertexKeywords`] — per-vertex keyword sets in CSR layout.
//! * [`InvertedIndex`] — keyword → sorted posting list of vertices.
//! * [`QueryKeywords`] / [`QueryMasks`] — a query keyword set `W_Q`
//!   (`|W_Q| ≤ 64`) compiled into per-vertex `u64` bitmasks, so the hot
//!   coverage computations of the branch-and-bound search reduce to
//!   bitwise OR + popcount.
//! * [`coverage`] — the paper's Definitions 5, 6 and 8: query keyword
//!   coverage of a vertex/group and valid keyword coverage w.r.t. an
//!   intermediate result.


#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod inverted;
pub mod io;
pub mod query;
pub mod vertex_keywords;
pub mod vocab;

pub use inverted::InvertedIndex;
pub use query::{QueryKeywords, QueryMasks};
pub use vertex_keywords::{VertexKeywords, VertexKeywordsBuilder};
pub use vocab::{KeywordId, Vocabulary};

//! Keyword-profile text I/O.
//!
//! The on-disk companion to an edge list: one line per vertex,
//! `vertex_id<TAB>term1,term2,...`, `#` comments allowed. Vertices may be
//! listed in any order and omitted entirely (empty profile). The format is
//! how the CLI persists generated datasets and how real keyword profiles
//! are supplied alongside SNAP edge lists.

use crate::vertex_keywords::{VertexKeywords, VertexKeywordsBuilder};
use crate::vocab::Vocabulary;
use ktg_common::{KtgError, Result, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Writes `keywords` (resolved through `vocab`) as profile lines.
pub fn write_keywords<W: Write>(
    vocab: &Vocabulary,
    keywords: &VertexKeywords,
    writer: W,
) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# ktg keyword profiles: {} vertices", keywords.num_vertices())?;
    for v in 0..keywords.num_vertices() {
        let list = keywords.keywords(VertexId::new(v));
        if list.is_empty() {
            continue;
        }
        let terms: Vec<&str> = list
            .iter()
            .map(|&k| {
                if k.index() >= vocab.len() {
                    return Err(KtgError::IndexMismatch(format!(
                        "vertex {v} carries keyword id {} but the vocabulary has {} terms",
                        k.index(),
                        vocab.len()
                    )));
                }
                Ok(vocab.term(k))
            })
            .collect::<Result<_>>()?;
        writeln!(w, "{v}\t{}", terms.join(","))?;
    }
    w.flush()?;
    Ok(())
}

/// Reads profile lines for a graph of `num_vertices` vertices, interning
/// terms into a fresh vocabulary.
///
/// # Errors
/// [`KtgError::InvalidInput`] on malformed lines or out-of-range ids.
pub fn read_keywords<R: Read>(
    num_vertices: usize,
    reader: R,
) -> Result<(Vocabulary, VertexKeywords)> {
    let reader = BufReader::new(reader);
    let mut vocab = Vocabulary::new();
    let mut builder = VertexKeywordsBuilder::new(num_vertices);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (id_part, terms_part) = trimmed.split_once(['\t', ' ']).ok_or_else(|| {
            KtgError::input(format!("line {}: expected '<id>\\t<terms>'", lineno + 1))
        })?;
        let id: usize = id_part
            .parse()
            .map_err(|e| KtgError::input(format!("line {}: {e}", lineno + 1)))?;
        if id >= num_vertices {
            return Err(KtgError::input(format!(
                "line {}: vertex {id} out of range for {num_vertices} vertices",
                lineno + 1
            )));
        }
        for term in terms_part.split(',') {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            let k = vocab.intern(term);
            builder.add(VertexId::new(id), k);
        }
    }
    Ok((vocab, builder.build()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::KeywordId;

    #[test]
    fn roundtrip() {
        let mut vocab = Vocabulary::new();
        let ids = vocab.intern_all(["graph", "query", "db"]);
        let vk = VertexKeywords::from_lists(&[
            vec![ids[0], ids[2]],
            vec![],
            vec![ids[1]],
        ]);
        let mut buf = Vec::new();
        write_keywords(&vocab, &vk, &mut buf).unwrap();
        let (vocab2, vk2) = read_keywords(3, buf.as_slice()).unwrap();
        // Term sets must match per vertex (ids may be re-interned).
        for v in 0..3 {
            let a: Vec<&str> =
                vk.keywords(VertexId::new(v)).iter().map(|&k| vocab.term(k)).collect();
            let mut b: Vec<&str> =
                vk2.keywords(VertexId::new(v)).iter().map(|&k| vocab2.term(k)).collect();
            b.sort();
            let mut a_sorted = a.clone();
            a_sorted.sort();
            assert_eq!(a_sorted, b, "vertex {v}");
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0\ta,b\n";
        let (vocab, vk) = read_keywords(2, text.as_bytes()).unwrap();
        assert_eq!(vocab.len(), 2);
        assert_eq!(vk.keywords(VertexId(0)).len(), 2);
        assert!(vk.keywords(VertexId(1)).is_empty());
    }

    #[test]
    fn space_separator_accepted() {
        let (_, vk) = read_keywords(1, "0 x,y,z".as_bytes()).unwrap();
        assert_eq!(vk.keywords(VertexId(0)).len(), 3);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(read_keywords(2, "5\ta".as_bytes()).is_err());
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(read_keywords(2, "not-a-number\ta".as_bytes()).is_err());
        assert!(read_keywords(2, "0".as_bytes()).is_err());
    }

    #[test]
    fn duplicate_terms_collapse() {
        let (_, vk) = read_keywords(1, "0\ta,a,a".as_bytes()).unwrap();
        assert_eq!(vk.keywords(VertexId(0)), &[KeywordId(0)]);
    }

    #[test]
    fn foreign_keyword_id_is_index_mismatch() {
        // Profiles built against a different vocabulary must surface as an
        // error from the write path, not an out-of-bounds panic.
        let vocab = Vocabulary::new();
        let vk = VertexKeywords::from_lists(&[vec![KeywordId(3)]]);
        let err = write_keywords(&vocab, &vk, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, KtgError::IndexMismatch(_)), "got: {err}");
    }

    #[test]
    fn empty_terms_ignored() {
        let (_, vk) = read_keywords(1, "0\ta,,b,".as_bytes()).unwrap();
        assert_eq!(vk.keywords(VertexId(0)).len(), 2);
    }
}

//! Query keyword sets and their compiled per-vertex masks.
//!
//! A KTG query carries a keyword set `W_Q`. The paper caps practical sizes
//! at `|W_Q| ≤ 8` (Table I); we allow up to 64 so that a vertex's covered
//! subset of `W_Q` fits in one `u64` bit mask. Compiling a query assigns
//! bit `i` to the `i`-th query keyword and walks the posting lists to give
//! every vertex its mask; all coverage math downstream is OR + popcount.

use crate::inverted::InvertedIndex;
use crate::vocab::{KeywordId, Vocabulary};
use ktg_common::{KtgError, Result, VertexId};

/// Maximum supported query keyword set size (mask width).
pub const MAX_QUERY_KEYWORDS: usize = 64;

/// A validated query keyword set `W_Q`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryKeywords {
    ids: Vec<KeywordId>,
}

impl QueryKeywords {
    /// Creates a query keyword set from ids. Duplicates are removed
    /// (preserving first occurrence order).
    ///
    /// # Errors
    /// [`KtgError::InvalidQuery`] if empty or more than
    /// [`MAX_QUERY_KEYWORDS`] distinct keywords.
    pub fn new(ids: impl IntoIterator<Item = KeywordId>) -> Result<Self> {
        let mut seen = Vec::new();
        for id in ids {
            if !seen.contains(&id) {
                seen.push(id);
            }
        }
        if seen.is_empty() {
            return Err(KtgError::query("query keyword set is empty"));
        }
        if seen.len() > MAX_QUERY_KEYWORDS {
            return Err(KtgError::query(format!(
                "|W_Q| = {} exceeds the supported maximum of {MAX_QUERY_KEYWORDS}",
                seen.len()
            )));
        }
        Ok(QueryKeywords { ids: seen })
    }

    /// Creates a query keyword set from strings resolved against a
    /// vocabulary.
    ///
    /// # Errors
    /// [`KtgError::InvalidQuery`] if any term is unknown, plus the size
    /// constraints of [`QueryKeywords::new`].
    pub fn from_terms<'a>(
        vocab: &Vocabulary,
        terms: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self> {
        let ids: Result<Vec<KeywordId>> = terms
            .into_iter()
            .map(|t| {
                vocab
                    .get(t)
                    .ok_or_else(|| KtgError::query(format!("unknown query keyword '{t}'")))
            })
            .collect();
        Self::new(ids?)
    }

    /// Number of query keywords `|W_Q|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty (never true for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The keyword ids, in mask-bit order: `ids()[i]` owns bit `i`.
    #[inline]
    pub fn ids(&self) -> &[KeywordId] {
        &self.ids
    }

    /// The full-coverage mask: low `|W_Q|` bits set.
    #[inline]
    pub fn full_mask(&self) -> u64 {
        if self.ids.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.ids.len()) - 1
        }
    }

    /// Compiles the query against an inverted index: per-vertex masks plus
    /// the candidate list (vertices covering ≥ 1 query keyword — the
    /// paper's per-member constraint `0 < QKC(v)`).
    ///
    /// ```
    /// use ktg_keywords::{InvertedIndex, KeywordId, QueryKeywords, VertexKeywords};
    ///
    /// let vk = VertexKeywords::from_lists(&[
    ///     vec![KeywordId(0), KeywordId(1)],
    ///     vec![],
    ///     vec![KeywordId(1)],
    /// ]);
    /// let idx = InvertedIndex::build(&vk, 2);
    /// let q = QueryKeywords::new([KeywordId(0), KeywordId(1)]).unwrap();
    /// let masks = q.compile(&idx, 3);
    /// assert_eq!(masks.mask(ktg_common::VertexId(0)), 0b11);
    /// assert_eq!(masks.candidates().len(), 2); // vertex 1 is unqualified
    /// ```
    pub fn compile(&self, index: &InvertedIndex, num_vertices: usize) -> QueryMasks {
        let mut masks = vec![0u64; num_vertices];
        for (bit, &k) in self.ids.iter().enumerate() {
            let bit_mask = 1u64 << bit;
            for &v in index.posting(k) {
                debug_assert!(v.index() < num_vertices);
                masks[v.index()] |= bit_mask;
            }
        }
        let candidates: Vec<VertexId> = (0..num_vertices)
            .filter(|&i| masks[i] != 0)
            .map(VertexId::new)
            .collect();
        QueryMasks { masks, candidates, num_keywords: self.ids.len() }
    }
}

/// The compiled form of a query: per-vertex coverage masks.
#[derive(Clone, Debug)]
pub struct QueryMasks {
    masks: Vec<u64>,
    candidates: Vec<VertexId>,
    num_keywords: usize,
}

impl QueryMasks {
    /// The coverage mask of `v` over `W_Q` (bit `i` ⇔ covers `ids()[i]`).
    #[inline]
    pub fn mask(&self, v: VertexId) -> u64 {
        self.masks[v.index()]
    }

    /// Vertices with at least one query keyword, in id order.
    #[inline]
    pub fn candidates(&self) -> &[VertexId] {
        &self.candidates
    }

    /// `|W_Q|`.
    #[inline]
    pub fn num_keywords(&self) -> usize {
        self.num_keywords
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_keywords::VertexKeywords;

    fn setup() -> (Vocabulary, InvertedIndex, usize) {
        let mut vocab = Vocabulary::new();
        let ids = vocab.intern_all(["sn", "qp", "dq", "gq"]);
        let vk = VertexKeywords::from_lists(&[
            vec![ids[0], ids[1]], // v0: sn, qp
            vec![ids[2]],         // v1: dq
            vec![],               // v2: nothing
            vec![ids[3]],         // v3: gq (not queried below)
        ]);
        (vocab, InvertedIndex::build(&vk, 4), 4)
    }

    #[test]
    fn compile_masks_and_candidates() {
        let (vocab, idx, n) = setup();
        let q = QueryKeywords::from_terms(&vocab, ["sn", "qp", "dq"]).unwrap();
        let m = q.compile(&idx, n);
        assert_eq!(m.mask(VertexId(0)), 0b011);
        assert_eq!(m.mask(VertexId(1)), 0b100);
        assert_eq!(m.mask(VertexId(2)), 0);
        assert_eq!(m.mask(VertexId(3)), 0, "gq not in W_Q");
        assert_eq!(m.candidates(), &[VertexId(0), VertexId(1)]);
        assert_eq!(m.num_keywords(), 3);
    }

    #[test]
    fn duplicates_removed() {
        let q = QueryKeywords::new([KeywordId(1), KeywordId(1), KeywordId(2)]).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.full_mask(), 0b11);
    }

    #[test]
    fn empty_rejected() {
        assert!(QueryKeywords::new([]).is_err());
    }

    #[test]
    fn oversized_rejected() {
        let ids = (0..65).map(KeywordId);
        assert!(QueryKeywords::new(ids).is_err());
    }

    #[test]
    fn exactly_64_allowed() {
        let q = QueryKeywords::new((0..64).map(KeywordId)).unwrap();
        assert_eq!(q.full_mask(), u64::MAX);
    }

    #[test]
    fn unknown_term_rejected() {
        let (vocab, _, _) = setup();
        assert!(QueryKeywords::from_terms(&vocab, ["sn", "nope"]).is_err());
    }

    #[test]
    fn bit_order_matches_ids() {
        let (vocab, idx, n) = setup();
        let q = QueryKeywords::from_terms(&vocab, ["dq", "sn"]).unwrap();
        // dq owns bit 0, sn owns bit 1.
        let m = q.compile(&idx, n);
        assert_eq!(m.mask(VertexId(1)), 0b01);
        assert_eq!(m.mask(VertexId(0)), 0b10);
    }
}

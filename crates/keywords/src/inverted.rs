//! Inverted keyword index.
//!
//! Maps each keyword to the sorted list of vertices carrying it. Query
//! compilation (building per-vertex `W_Q` masks) walks only the posting
//! lists of the `|W_Q| ≤ 64` query keywords instead of scanning every
//! vertex's keyword set — the difference between O(Σ postings) and
//! O(total pairs) per query.

use crate::vertex_keywords::VertexKeywords;
use crate::vocab::KeywordId;
use ktg_common::VertexId;

/// keyword → sorted posting list of vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvertedIndex {
    /// Indexed by keyword id; keywords beyond the largest seen have empty
    /// postings.
    postings: Vec<Vec<VertexId>>,
}

impl InvertedIndex {
    /// Builds the index from per-vertex keyword sets. `num_keywords` is the
    /// vocabulary size (posting slots are allocated even for unused ids).
    pub fn build(vertex_keywords: &VertexKeywords, num_keywords: usize) -> Self {
        let mut postings: Vec<Vec<VertexId>> = vec![Vec::new(); num_keywords];
        for v in 0..vertex_keywords.num_vertices() {
            let v = VertexId::new(v);
            for &k in vertex_keywords.keywords(v) {
                debug_assert!(k.index() < num_keywords, "{k:?} beyond vocabulary");
                postings[k.index()].push(v);
            }
        }
        // Vertices were visited in increasing order, so postings are sorted.
        InvertedIndex { postings }
    }

    /// The sorted posting list for keyword `k` (empty if unused).
    #[inline]
    pub fn posting(&self, k: KeywordId) -> &[VertexId] {
        &self.postings[k.index()]
    }

    /// Document frequency of `k`: how many vertices carry it.
    #[inline]
    pub fn frequency(&self, k: KeywordId) -> usize {
        self.postings[k.index()].len()
    }

    /// Number of keyword slots.
    pub fn num_keywords(&self) -> usize {
        self.postings.len()
    }

    /// Approximate heap usage in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Vec<VertexId>>()
            + self
                .postings
                .iter()
                .map(|p| p.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_keywords::VertexKeywords;

    fn fixture() -> InvertedIndex {
        let vk = VertexKeywords::from_lists(&[
            vec![KeywordId(0), KeywordId(2)],
            vec![KeywordId(2)],
            vec![],
            vec![KeywordId(0)],
        ]);
        InvertedIndex::build(&vk, 4)
    }

    #[test]
    fn postings_sorted_and_complete() {
        let idx = fixture();
        assert_eq!(idx.posting(KeywordId(0)), &[VertexId(0), VertexId(3)]);
        assert_eq!(idx.posting(KeywordId(2)), &[VertexId(0), VertexId(1)]);
        assert_eq!(idx.posting(KeywordId(1)), &[]);
        assert_eq!(idx.posting(KeywordId(3)), &[]);
    }

    #[test]
    fn frequencies() {
        let idx = fixture();
        assert_eq!(idx.frequency(KeywordId(0)), 2);
        assert_eq!(idx.frequency(KeywordId(1)), 0);
        assert_eq!(idx.num_keywords(), 4);
    }
}

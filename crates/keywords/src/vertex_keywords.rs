//! Per-vertex keyword sets.
//!
//! The paper associates each vertex `v` with a keyword set `k_v ⊆ κ`.
//! [`VertexKeywords`] stores all of them in one CSR-style arena: a shared
//! keyword-id array plus a per-vertex offset table. Lists are sorted and
//! deduplicated, enabling merge-style intersections.

use crate::vocab::KeywordId;
use ktg_common::VertexId;

/// Immutable per-vertex keyword sets in CSR layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexKeywords {
    offsets: Vec<u64>,
    keywords: Vec<KeywordId>,
}

impl VertexKeywords {
    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (vertex, keyword) pairs.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.keywords.len()
    }

    /// The sorted keyword list of `v`.
    #[inline]
    pub fn keywords(&self, v: VertexId) -> &[KeywordId] {
        let i = v.index();
        &self.keywords[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether `v` carries keyword `k` (binary search).
    #[inline]
    pub fn has_keyword(&self, v: VertexId, k: KeywordId) -> bool {
        self.keywords(v).binary_search(&k).is_ok()
    }

    /// Approximate heap usage in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.keywords.capacity() * std::mem::size_of::<KeywordId>()
    }

    /// The per-vertex offset table (persistence).
    #[inline]
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The shared keyword arena (persistence).
    #[inline]
    pub fn raw_keywords(&self) -> &[KeywordId] {
        &self.keywords
    }

    /// Reassembles the arena from its raw parts, validating that the
    /// offsets are monotonic, cover `keywords` exactly, and that every
    /// per-vertex list is strictly sorted (no duplicates).
    ///
    /// # Errors
    /// [`ktg_common::KtgError::InvalidInput`] on any structural violation.
    pub fn from_raw_parts(
        offsets: Vec<u64>,
        keywords: Vec<KeywordId>,
    ) -> ktg_common::Result<Self> {
        if offsets.is_empty() {
            return Err(ktg_common::KtgError::input("keyword offsets must be non-empty"));
        }
        if offsets[0] != 0 || *offsets.last().unwrap_or(&0) != keywords.len() as u64 {
            return Err(ktg_common::KtgError::input("keyword offsets do not cover the arena"));
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] || w[1] as usize > keywords.len() {
                return Err(ktg_common::KtgError::input("keyword offsets not monotonic"));
            }
            let list = &keywords[w[0] as usize..w[1] as usize];
            if !list.windows(2).all(|p| p[0] < p[1]) {
                return Err(ktg_common::KtgError::input("keyword list not sorted"));
            }
        }
        Ok(VertexKeywords { offsets, keywords })
    }

    /// Builds from one explicit list per vertex (convenience for fixtures).
    pub fn from_lists(lists: &[Vec<KeywordId>]) -> Self {
        let mut b = VertexKeywordsBuilder::new(lists.len());
        for (v, list) in lists.iter().enumerate() {
            for &k in list {
                b.add(VertexId::new(v), k);
            }
        }
        b.build()
    }
}

/// Builder for [`VertexKeywords`]; accepts pairs in any order, dedups.
#[derive(Clone, Debug)]
pub struct VertexKeywordsBuilder {
    num_vertices: usize,
    pairs: Vec<(VertexId, KeywordId)>,
}

impl VertexKeywordsBuilder {
    /// Creates a builder for `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        VertexKeywordsBuilder { num_vertices, pairs: Vec::new() }
    }

    /// Records that vertex `v` carries keyword `k`.
    ///
    /// # Panics
    /// Debug-panics if `v` is out of range.
    pub fn add(&mut self, v: VertexId, k: KeywordId) {
        debug_assert!(v.index() < self.num_vertices, "{v:?} out of range");
        self.pairs.push((v, k));
    }

    /// Finalizes into [`VertexKeywords`].
    pub fn build(mut self) -> VertexKeywords {
        self.pairs.sort_unstable();
        self.pairs.dedup();

        let mut offsets = Vec::with_capacity(self.num_vertices + 1);
        let mut keywords = Vec::with_capacity(self.pairs.len());
        offsets.push(0u64);
        let mut cursor = 0usize;
        for v in 0..self.num_vertices {
            while cursor < self.pairs.len() && self.pairs[cursor].0.index() == v {
                keywords.push(self.pairs[cursor].1);
                cursor += 1;
            }
            offsets.push(keywords.len() as u64);
        }
        VertexKeywords { offsets, keywords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut b = VertexKeywordsBuilder::new(3);
        b.add(VertexId(1), KeywordId(5));
        b.add(VertexId(1), KeywordId(2));
        b.add(VertexId(2), KeywordId(0));
        let vk = b.build();
        assert_eq!(vk.keywords(VertexId(0)), &[]);
        assert_eq!(vk.keywords(VertexId(1)), &[KeywordId(2), KeywordId(5)]);
        assert!(vk.has_keyword(VertexId(2), KeywordId(0)));
        assert!(!vk.has_keyword(VertexId(2), KeywordId(1)));
        assert_eq!(vk.num_pairs(), 3);
    }

    #[test]
    fn duplicates_collapse() {
        let mut b = VertexKeywordsBuilder::new(1);
        b.add(VertexId(0), KeywordId(7));
        b.add(VertexId(0), KeywordId(7));
        let vk = b.build();
        assert_eq!(vk.keywords(VertexId(0)).len(), 1);
    }

    #[test]
    fn from_lists_matches_builder() {
        let vk = VertexKeywords::from_lists(&[
            vec![KeywordId(1), KeywordId(0)],
            vec![],
            vec![KeywordId(3)],
        ]);
        assert_eq!(vk.num_vertices(), 3);
        assert_eq!(vk.keywords(VertexId(0)), &[KeywordId(0), KeywordId(1)]);
        assert_eq!(vk.keywords(VertexId(1)), &[]);
    }

    #[test]
    fn empty_builder() {
        let vk = VertexKeywordsBuilder::new(2).build();
        assert_eq!(vk.num_vertices(), 2);
        assert_eq!(vk.num_pairs(), 0);
    }
}

//! Cooperative cancellation and per-query deadlines.
//!
//! Long-running searches (KTG is NP-hard) need a bounded-latency story:
//! a caller sets a wall-clock budget, the solver checks it at a coarse
//! stride inside its hot loop, and on expiry the search stops and
//! returns its best-so-far **anytime** answer tagged as degraded. The
//! pieces:
//!
//! * [`CancelToken`] — a cheaply-cloneable shared flag with an optional
//!   deadline. Workers call [`CancelToken::poll`] every few hundred
//!   nodes (reading the clock) and [`CancelToken::is_cancelled`] in
//!   between (a single relaxed atomic load).
//! * [`CompletionStatus`] / [`DegradeReason`] — the structured tag that
//!   travels with every outcome: `Exact` answers are the full optimum,
//!   `Degraded` answers are valid (they pass the checked-mode result
//!   audit) but possibly suboptimal.
//!
//! This module is the **only** place outside the bench harness where
//! lib code may read the wall clock: the ktg-lint L4 nondeterminism
//! pass allowlists exactly this file. That is sound because every
//! clock read here is *openly* nondeterministic — whenever a deadline
//! actually changes an answer, the answer is flagged `Degraded` (an
//! `Exact` answer is byte-identical to a run with no deadline at all),
//! and a [`Stopwatch`] only feeds *measurement* (server latency
//! stats), never result-bearing control flow.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a search stopped short of proving optimality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The per-query wall-clock deadline expired.
    Deadline,
    /// The node budget (`BbOptions::node_budget`) was exhausted.
    NodeBudget,
    /// The token was cancelled explicitly (e.g. session shutdown).
    Cancelled,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::Deadline => write!(f, "deadline"),
            DegradeReason::NodeBudget => write!(f, "node-budget"),
            DegradeReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Whether an outcome is the proven optimum or an anytime best-so-far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompletionStatus {
    /// The search ran to completion; the answer is the exact optimum
    /// under the paper's ordering and is deterministic.
    Exact,
    /// The search stopped early; the answer holds the best groups found
    /// so far. Every group is still *valid* (size, tenuity, coverage,
    /// ordering all hold), it just may not be optimal.
    Degraded(DegradeReason),
}

impl CompletionStatus {
    /// `true` for [`CompletionStatus::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, CompletionStatus::Exact)
    }

    /// The degrade reason, if any.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        match self {
            CompletionStatus::Exact => None,
            CompletionStatus::Degraded(reason) => Some(*reason),
        }
    }
}

impl fmt::Display for CompletionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionStatus::Exact => write!(f, "exact"),
            CompletionStatus::Degraded(reason) => write!(f, "degraded({reason})"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Reason recorded by whichever path fired first; readers only look
    /// at it after observing `cancelled == true`.
    deadline_fired: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation flag with an optional wall-clock deadline.
///
/// Clones share the same underlying flag, so one token can be handed to
/// every worker of a parallel search and fired once for all of them.
/// The token is purely cooperative: nothing is interrupted, workers
/// observe the flag at their next check and unwind normally, leaving
/// best-so-far results intact.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

/// How many search nodes a worker expands between wall-clock reads.
/// In between it only performs a relaxed atomic load, so the deadline
/// machinery costs nothing measurable on the hot path.
pub const POLL_STRIDE: u64 = 512;

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::build(None)
    }

    /// A token that fires once `budget` has elapsed from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken::build(Some(Instant::now() + budget))
    }

    /// A token that fires once `ms` milliseconds have elapsed from now.
    /// `ms == 0` yields an already-expired deadline, which is useful for
    /// deterministic degradation tests: the first poll fires it.
    pub fn with_deadline_ms(ms: u64) -> Self {
        CancelToken::with_deadline(Duration::from_millis(ms))
    }

    /// `Some(token)` when `deadline_ms` is set, `None` otherwise —
    /// the shape option structs carry deadlines in.
    pub fn for_deadline_ms(deadline_ms: Option<u64>) -> Option<Self> {
        deadline_ms.map(CancelToken::with_deadline_ms)
    }

    fn build(deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_fired: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Fires the token explicitly ([`DegradeReason::Cancelled`] unless
    /// the deadline already fired).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Cheap check (one relaxed load): has the token fired?
    ///
    /// Does **not** read the clock — a deadline is only noticed by
    /// [`CancelToken::poll`]. Use this between polls.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Full check: reads the wall clock, fires the token if the
    /// deadline has passed, and returns whether the token has fired.
    /// Call this once every [`POLL_STRIDE`] units of work.
    pub fn poll(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.deadline_fired.store(true, Ordering::Relaxed);
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Why the token fired, or `None` if it has not fired.
    pub fn reason(&self) -> Option<DegradeReason> {
        if !self.is_cancelled() {
            return None;
        }
        if self.inner.deadline_fired.load(Ordering::Relaxed) {
            Some(DegradeReason::Deadline)
        } else {
            Some(DegradeReason::Cancelled)
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// A monotonic elapsed-time measurer for *instrumentation* (the network
/// server's latency histogram, cache-stat reporting).
///
/// It lives in this module because the L4 nondeterminism lint allowlists
/// exactly this file for clock reads. The soundness argument is the same
/// as for deadlines: a `Stopwatch` reading is reported, never branched
/// on, so answers stay byte-deterministic no matter what the clock says.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (584 years — in practice never).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Wall time elapsed since [`Stopwatch::start`], for build-stats
    /// reporting (the `Duration`-typed sibling of
    /// [`Stopwatch::elapsed_nanos`]).
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.poll());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn explicit_cancel_fires_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn expired_deadline_fires_on_poll_not_on_load() {
        let t = CancelToken::with_deadline_ms(0);
        // `is_cancelled` never reads the clock, so the token looks live
        // until someone polls it.
        assert!(!t.is_cancelled());
        assert!(t.poll());
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(DegradeReason::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.poll());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn for_deadline_ms_maps_option() {
        assert!(CancelToken::for_deadline_ms(None).is_none());
        let t = CancelToken::for_deadline_ms(Some(0)).expect("some");
        assert!(t.poll());
    }

    #[test]
    fn stopwatch_is_monotone_nondecreasing() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a, "elapsed must not go backwards ({a} then {b})");
    }

    #[test]
    fn status_display_and_accessors() {
        assert_eq!(CompletionStatus::Exact.to_string(), "exact");
        assert!(CompletionStatus::Exact.is_exact());
        assert_eq!(CompletionStatus::Exact.degrade_reason(), None);
        let d = CompletionStatus::Degraded(DegradeReason::Deadline);
        assert_eq!(d.to_string(), "degraded(deadline)");
        assert!(!d.is_exact());
        assert_eq!(d.degrade_reason(), Some(DegradeReason::Deadline));
        assert_eq!(
            CompletionStatus::Degraded(DegradeReason::NodeBudget).to_string(),
            "degraded(node-budget)"
        );
        assert_eq!(
            CompletionStatus::Degraded(DegradeReason::Cancelled).to_string(),
            "degraded(cancelled)"
        );
    }
}

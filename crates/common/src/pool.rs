//! Reusable-object pools for steady-state serving.
//!
//! The batched query executor (`ktg_core::serve`) wants every per-query
//! allocation — BFS scratch, candidate vectors, conflict-bitmap rows —
//! made once per worker and then recycled, so a long-running serving
//! process settles into zero large allocations per query. A [`Pool`] is
//! the minimal primitive for that: a mutex-guarded free list handing out
//! [`PoolGuard`]s that return their item on drop.
//!
//! The pool is deliberately unbounded: it never holds more items than the
//! peak number of concurrent borrowers (each worker borrows one arena for
//! the duration of a workload segment), so a capacity limit would only
//! add a failure mode. A poisoned mutex is recovered, not propagated —
//! the free list holds plain reusable buffers whose state a panicking
//! borrower cannot corrupt (the item the panicking thread held is simply
//! dropped, never returned).

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard};

/// A thread-safe free list of reusable items.
#[derive(Debug, Default)]
pub struct Pool<T> {
    items: Mutex<Vec<T>>,
}

impl<T> Pool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool { items: Mutex::new(Vec::new()) }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<T>> {
        // A panic while the lock was held cannot leave a half-updated
        // free list (push/pop are the only operations), so recover.
        match self.items.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Borrows an item, creating a fresh one with `make` when the free
    /// list is empty. The item returns to the pool when the guard drops.
    pub fn acquire_with(&self, make: impl FnOnce() -> T) -> PoolGuard<'_, T> {
        // Fault-injection site (no-op unless a KTG_FAULTS schedule is
        // armed); fires before the lock so it can never poison it.
        crate::fault::inject(crate::fault::FaultSite::PoolAcquire);
        let item = self.lock().pop().unwrap_or_else(make);
        PoolGuard { pool: self, item: Some(item) }
    }

    /// Number of items currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.lock().len()
    }
}

/// An exclusive borrow from a [`Pool`]; dereferences to the item and
/// returns it to the pool on drop.
#[derive(Debug)]
pub struct PoolGuard<'p, T> {
    pool: &'p Pool<T>,
    item: Option<T>,
}

impl<T> PoolGuard<'_, T> {
    /// Consumes the guard *without* returning the item to the pool: the
    /// item is dropped. Recovery paths use this after a panic unwound
    /// through a borrower — the item's state is suspect, so it must not
    /// be recycled into another query.
    pub fn discard(mut self) {
        self.item.take();
    }
}

impl<T> Deref for PoolGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.item {
            Some(item) => item,
            // Invariant: `item` is only taken in `drop`.
            None => unreachable!("pool guard emptied before drop"),
        }
    }
}

impl<T> DerefMut for PoolGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.item {
            Some(item) => item,
            None => unreachable!("pool guard emptied before drop"),
        }
    }
}

impl<T> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.lock().push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_creates_then_recycles() {
        let pool: Pool<Vec<u32>> = Pool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut a = pool.acquire_with(|| Vec::with_capacity(8));
            a.push(7);
            assert_eq!(a[0], 7);
        }
        assert_eq!(pool.idle(), 1, "guard drop parks the item");
        {
            let b = pool.acquire_with(Vec::new);
            // The recycled vector still holds its previous contents —
            // callers clear what they need, preserving capacity.
            assert_eq!(b.as_slice(), &[7]);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn discard_drops_instead_of_parking() {
        let pool: Pool<Vec<u32>> = Pool::new();
        let mut a = pool.acquire_with(Vec::new);
        a.push(1);
        a.discard();
        assert_eq!(pool.idle(), 0, "discarded item must not re-enter the free list");
        let b = pool.acquire_with(Vec::new);
        assert!(b.is_empty(), "next acquire builds fresh, not the discarded item");
    }

    #[test]
    fn concurrent_borrowers_get_distinct_items() {
        let pool: Pool<Vec<u8>> = Pool::new();
        let a = pool.acquire_with(Vec::new);
        let b = pool.acquire_with(Vec::new);
        assert_eq!(pool.idle(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn shared_across_scoped_threads() {
        let pool: Pool<Vec<usize>> = Pool::new();
        std::thread::scope(|s| {
            for worker in 0..4 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..16 {
                        let mut item = pool.acquire_with(Vec::new);
                        item.clear();
                        item.push(worker * 100 + i);
                        assert_eq!(item.len(), 1);
                    }
                });
            }
        });
        // At most one item per concurrently-live borrow.
        assert!(pool.idle() <= 4, "free list holds {} items", pool.idle());
        assert!(pool.idle() >= 1);
    }
}

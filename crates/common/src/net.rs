//! Blocking line-framing over byte streams (the network server's I/O
//! substrate).
//!
//! The serving protocol is line-delimited text: every request is one
//! `\n`-terminated line, every response is a block of lines. This module
//! provides the two pieces a hand-rolled `std::net` server needs and the
//! standard library does not give in quite the right shape:
//!
//! * [`LineReader`] — an incremental line framer over any [`Read`]. It
//!   differs from [`std::io::BufRead::read_line`] in three load-bearing
//!   ways: a *partial* line survives a timeout error (so a read-timeout
//!   poll loop can resume mid-line instead of corrupting the stream), an
//!   overlong line is reported as a structured [`Frame::Overlong`] and
//!   skipped (rather than growing without bound on hostile input), and a
//!   final unterminated line is still delivered (so `printf`-style
//!   clients that forget the last newline behave like `ktg batch` on the
//!   same file).
//! * [`write_line`] — the matching send side: one line, one `\n`, no
//!   partial writes visible to the peer (callers flush per response
//!   block, not per line).
//!
//! Everything here is deterministic and clock-free: timeouts come from
//! the socket (via [`std::net::TcpStream::set_read_timeout`]), not from
//! this module, and trailing-`\r` handling belongs to the workload
//! parser (which strips a single framing `\r` itself).

use std::io::{self, Read, Write};

/// One framing event from a [`LineReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, without its terminating `\n` (a trailing `\r`,
    /// if the peer frames with CRLF, is preserved — the workload parser
    /// owns that distinction).
    Line(String),
    /// A line exceeded the reader's byte cap before its `\n` arrived.
    /// The overage is consumed and discarded through the next newline;
    /// `bytes` counts how many bytes were seen before discarding began
    /// (a lower bound on the line's true length).
    Overlong {
        /// Bytes observed before the reader started discarding.
        bytes: usize,
    },
    /// The stream ended cleanly (EOF with no buffered partial line).
    Eof,
}

/// An incremental, timeout-tolerant line framer over a byte stream.
///
/// Call [`LineReader::read_frame`] in a loop. An [`io::Error`] of kind
/// [`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`] (from a
/// socket read timeout) leaves the reader's state intact — the caller
/// can poll a shutdown flag and call again, and a line split across the
/// timeout reassembles seamlessly.
pub struct LineReader<R> {
    source: R,
    /// Bytes received but not yet framed (at most one partial line plus
    /// whatever arrived after the last returned line's newline).
    buf: Vec<u8>,
    /// Scan position: `buf[..scanned]` is known newline-free.
    scanned: usize,
    /// Byte cap per line; beyond it the line is discarded as overlong.
    max_line: usize,
    /// When `Some(seen)`, we are discarding an overlong line until its
    /// newline; `seen` is the byte count to report.
    discarding: Option<usize>,
    /// Set once the source reports EOF.
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps `source`, capping lines at `max_line` bytes (exclusive of
    /// the `\n` terminator).
    pub fn new(source: R, max_line: usize) -> Self {
        LineReader {
            source,
            buf: Vec::new(),
            scanned: 0,
            max_line,
            discarding: None,
            eof: false,
        }
    }

    /// The wrapped stream (for the write half of a duplex socket, via
    /// [`std::net::TcpStream::try_clone`] at the call site instead).
    pub fn get_ref(&self) -> &R {
        &self.source
    }

    /// Returns the next framing event, blocking on the underlying
    /// stream as needed.
    ///
    /// # Errors
    /// Propagates I/O errors from the source. Timeout-kind errors
    /// (`WouldBlock`, `TimedOut`) are safe to retry: buffered bytes are
    /// kept and framing resumes exactly where it stopped.
    pub fn read_frame(&mut self) -> io::Result<Frame> {
        loop {
            // Frame from the buffer first: bytes already received must
            // be served even after EOF.
            if let Some(frame) = self.frame_buffered() {
                return Ok(frame);
            }
            if self.eof {
                return Ok(self.drain_final());
            }
            let mut chunk = [0u8; 1024];
            match self.source.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Frames the next event out of `buf` if one is complete.
    fn frame_buffered(&mut self) -> Option<Frame> {
        if let Some(seen) = self.discarding {
            // Swallow the rest of an overlong line through its newline.
            match self.buf.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    self.buf.drain(..=nl);
                    self.scanned = 0;
                    self.discarding = None;
                    return Some(Frame::Overlong { bytes: seen });
                }
                None => {
                    self.buf.clear();
                    self.scanned = 0;
                    self.discarding = Some(seen);
                    return None;
                }
            }
        }
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let nl = self.scanned + rel;
                self.scanned = 0;
                if nl > self.max_line {
                    // Complete but over the cap: same structured report
                    // as the incremental case, so the arrival pattern
                    // (one chunk vs. trickle) cannot change framing.
                    self.buf.drain(..=nl);
                    return Some(Frame::Overlong { bytes: nl });
                }
                let line: Vec<u8> = self.buf.drain(..=nl).take(nl).collect();
                Some(Frame::Line(lossy_line(line)))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max_line {
                    // Too long with no newline in sight: switch to
                    // discard mode so a hostile peer cannot grow the
                    // buffer without bound.
                    let seen = self.buf.len();
                    self.buf.clear();
                    self.scanned = 0;
                    self.discarding = Some(seen);
                }
                None
            }
        }
    }

    /// EOF with leftovers: deliver the final unterminated line (or the
    /// overlong report for a discard that never saw its newline).
    fn drain_final(&mut self) -> Frame {
        if let Some(seen) = self.discarding.take() {
            return Frame::Overlong { bytes: seen };
        }
        if self.buf.is_empty() {
            return Frame::Eof;
        }
        let line = std::mem::take(&mut self.buf);
        self.scanned = 0;
        Frame::Line(lossy_line(line))
    }
}

/// Decodes a framed line, replacing invalid UTF-8 with U+FFFD — the
/// parser then rejects it with a normal grammar error instead of the
/// connection dying on a decode failure.
fn lossy_line(bytes: Vec<u8>) -> String {
    match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    }
}

/// Writes `line` plus a terminating `\n` without flushing (callers
/// flush once per response block).
///
/// # Errors
/// Propagates I/O errors from the sink.
pub fn write_line(sink: &mut impl Write, line: &str) -> io::Result<()> {
    sink.write_all(line.as_bytes())?;
    sink.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields scripted results, for timeout/short-read
    /// behavior no in-memory slice can produce.
    struct Scripted {
        steps: std::collections::VecDeque<io::Result<Vec<u8>>>,
    }

    impl Read for Scripted {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                Some(Ok(bytes)) => {
                    assert!(bytes.len() <= out.len(), "script chunk too large");
                    out[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(e)) => Err(e),
                None => Ok(0),
            }
        }
    }

    fn scripted(steps: Vec<io::Result<Vec<u8>>>) -> LineReader<Scripted> {
        LineReader::new(Scripted { steps: steps.into() }, 64)
    }

    #[test]
    fn frames_lines_and_final_unterminated() {
        let mut r = LineReader::new(&b"one\ntwo\r\nthree"[..], 64);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("one".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Line("two\r".into()), "CR is preserved");
        assert_eq!(r.read_frame().unwrap(), Frame::Line("three".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
        assert_eq!(r.read_frame().unwrap(), Frame::Eof, "EOF is sticky");
    }

    #[test]
    fn empty_lines_and_empty_stream() {
        let mut r = LineReader::new(&b"\n\n"[..], 64);
        assert_eq!(r.read_frame().unwrap(), Frame::Line(String::new()));
        assert_eq!(r.read_frame().unwrap(), Frame::Line(String::new()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
        let mut r = LineReader::new(&b""[..], 64);
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn timeout_preserves_partial_line() {
        let wouldblock = || io::Error::new(io::ErrorKind::WouldBlock, "timeout");
        let mut r = scripted(vec![
            Ok(b"hel".to_vec()),
            Err(wouldblock()),
            Ok(b"lo\nwo".to_vec()),
            Err(wouldblock()),
            Ok(b"rld\n".to_vec()),
        ]);
        assert_eq!(r.read_frame().unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("hello".into()));
        assert_eq!(r.read_frame().unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("world".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn overlong_line_is_skipped_not_fatal() {
        let long = vec![b'x'; 100];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut r = LineReader::new(&input[..], 64);
        let Frame::Overlong { bytes } = r.read_frame().unwrap() else {
            panic!("expected overlong frame")
        };
        assert!(bytes > 64, "reported {bytes} bytes");
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ok".into()), "stream resyncs");
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn overlong_line_at_eof_is_reported() {
        let input = [b'y'; 100];
        let mut r = LineReader::new(&input[..], 64);
        assert!(matches!(r.read_frame().unwrap(), Frame::Overlong { .. }));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let mut r = LineReader::new(&b"ok\n\xff\xfe\nok2\n"[..], 64);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ok".into()));
        let Frame::Line(garbled) = r.read_frame().unwrap() else { panic!("expected line") };
        assert!(garbled.contains('\u{FFFD}'));
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ok2".into()));
    }

    #[test]
    fn write_line_appends_newline() {
        let mut out = Vec::new();
        write_line(&mut out, "stats: ok").unwrap();
        write_line(&mut out, "").unwrap();
        assert_eq!(out, b"stats: ok\n\n");
    }

    // -- adversarial framing ------------------------------------------------

    /// A peer trickling one byte per syscall still frames correctly —
    /// the worst-case exercise of the scan-resume bookkeeping.
    #[test]
    fn single_byte_reads_frame_correctly() {
        let steps: Vec<io::Result<Vec<u8>>> =
            b"ab\ncd\n".iter().map(|&b| Ok(vec![b])).collect();
        let mut r = scripted(steps);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ab".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Line("cd".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    /// A CRLF terminator split across two reads: the CR must stay
    /// attached to its line (the workload parser strips it), not leak
    /// into the next frame or spawn a phantom empty line.
    #[test]
    fn crlf_split_across_reads() {
        let mut r = scripted(vec![
            Ok(b"one\r".to_vec()),
            Ok(b"\ntwo".to_vec()),
            Ok(b"\r\n".to_vec()),
        ]);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("one\r".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Line("two\r".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    /// An overlong line delivered in drips, with its terminating
    /// newline and a valid successor split across further reads: the
    /// discard state must swallow exactly through the newline and
    /// resync on the very next byte.
    #[test]
    fn overlong_resync_across_split_reads() {
        let mut r = scripted(vec![
            Ok(vec![b'x'; 50]),
            Ok(vec![b'x'; 50]),
            Ok(b"x\nok".to_vec()),
            Ok(b"\n".to_vec()),
        ]);
        let Frame::Overlong { bytes } = r.read_frame().unwrap() else {
            panic!("expected overlong frame")
        };
        assert!(bytes > 64, "reported {bytes} bytes");
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ok".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    /// EOF with a partial frame buffered (the peer died mid-line): the
    /// fragment is surfaced once as a final line, then EOF sticks —
    /// no spin, no duplicate delivery.
    #[test]
    fn eof_mid_frame_yields_fragment_once() {
        let mut r = scripted(vec![Ok(b"half".to_vec())]);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("half".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    /// Interrupted reads are retried transparently, even mid-line.
    #[test]
    fn interrupted_reads_are_retried() {
        let interrupted = || io::Error::new(io::ErrorKind::Interrupted, "signal");
        let mut r = scripted(vec![
            Err(interrupted()),
            Ok(b"o".to_vec()),
            Err(interrupted()),
            Ok(b"k\n".to_vec()),
        ]);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ok".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }
}

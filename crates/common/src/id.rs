//! Compact vertex identifiers.
//!
//! Every crate in the workspace addresses vertices by [`VertexId`], a
//! transparent `u32` newtype. Graphs in the evaluated datasets stay below
//! 2^32 vertices (the largest profile is the one-million-node DBLP variant),
//! so 32 bits halves the footprint of neighbor lists relative to `usize`
//! while keeping index arithmetic free.

use std::fmt;

/// A vertex handle: an index into the contiguous vertex space of a graph.
///
/// `VertexId` is ordered, hashable, and convertible to/from `usize` for
/// array indexing. The id-ordered storage trick of the NLRNL index (store a
/// pair only under its smaller endpoint) relies on this ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Largest representable id, used as a sentinel for "no vertex".
    pub const INVALID: VertexId = VertexId(u32::MAX);

    /// Creates an id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize, "vertex index overflows u32");
        VertexId(index as u32)
    }

    /// Returns the id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this id is the invalid sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Iterator over the vertex ids `0..n`, convenient for whole-graph sweeps.
pub fn vertex_range(n: usize) -> impl ExactSizeIterator<Item = VertexId> {
    (0..n as u32).map(VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn ordering_matches_raw_ids() {
        assert!(VertexId(3) < VertexId(10));
        assert!(VertexId(10) <= VertexId(10));
    }

    #[test]
    fn invalid_sentinel() {
        assert!(!VertexId::INVALID.is_valid());
        assert!(VertexId(0).is_valid());
    }

    #[test]
    fn vertex_range_covers_all() {
        let ids: Vec<_> = vertex_range(4).collect();
        assert_eq!(ids, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", VertexId(7)), "7");
        assert_eq!(format!("{:?}", VertexId(7)), "v7");
    }
}

//! Bounded top-N selection.
//!
//! KTG queries return the N best groups by keyword coverage. [`TopN`] keeps
//! the running N best in a min-heap so that:
//!
//! * the current N-th best (the pruning threshold `C_max` of the paper's
//!   Theorem 2) is an O(1) peek, and
//! * an item whose score merely **equals** the current N-th best does *not*
//!   displace an incumbent — matching the paper's worked examples, where
//!   groups tied at coverage 0.8 "can not update the result groups".

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bounded collection of the `n` largest items seen so far.
#[derive(Clone, Debug)]
pub struct TopN<T: Ord> {
    heap: BinaryHeap<Reverse<T>>,
    capacity: usize,
}

impl<T: Ord> TopN<T> {
    /// Creates an empty collection that will retain the `capacity` largest
    /// items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a top-0 query is meaningless).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TopN capacity must be positive");
        TopN {
            heap: BinaryHeap::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Number of items currently held (≤ capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are held yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the collection holds `capacity` items.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.capacity
    }

    /// The configured capacity `n`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The smallest retained item — the "N-th best", i.e. the admission
    /// threshold. `None` while the collection is not yet full (anything is
    /// admissible then).
    #[inline]
    pub fn threshold(&self) -> Option<&T> {
        if self.is_full() {
            let min = self.heap.peek().map(|r| &r.0);
            #[cfg(debug_assertions)]
            if let Some(m) = min {
                debug_assert!(
                    self.heap.iter().all(|r| &r.0 >= m),
                    "heap order violated: peek is not the minimum retained item"
                );
            }
            min
        } else {
            None
        }
    }

    /// Offers an item. Returns `true` if it was retained.
    ///
    /// While under capacity every item is retained. At capacity an item is
    /// retained only if **strictly greater** than the current minimum (ties
    /// keep the incumbent).
    pub fn offer(&mut self, item: T) -> bool {
        debug_assert!(
            self.heap.len() <= self.capacity,
            "TopN invariant violated: holding {} items with capacity {}",
            self.heap.len(),
            self.capacity
        );
        if self.heap.len() < self.capacity {
            self.heap.push(Reverse(item));
            return true;
        }
        // Capacity > 0 and the heap is full, so a minimum always exists.
        let retained = match self.heap.peek() {
            Some(Reverse(current_min)) if item > *current_min => {
                self.heap.pop();
                self.heap.push(Reverse(item));
                true
            }
            _ => false,
        };
        debug_assert!(self.heap.len() == self.capacity, "offer at capacity must preserve size");
        retained
    }

    /// Whether an item with the given value *would* be retained, without
    /// inserting it. This is the keyword-pruning test: a branch whose upper
    /// bound would not be admitted cannot improve the result.
    #[inline]
    pub fn would_admit(&self, item: &T) -> bool {
        match self.threshold() {
            None => true,
            Some(min) => item > min,
        }
    }

    /// Consumes the collection, returning items in descending order.
    pub fn into_sorted_desc(self) -> Vec<T> {
        let mut items: Vec<T> = self.heap.into_iter().map(|r| r.0).collect();
        items.sort_by(|a, b| b.cmp(a));
        items
    }

    /// Iterates the retained items in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.heap.iter().map(|r| &r.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TopN::<i32>::new(0);
    }

    #[test]
    fn keeps_largest() {
        let mut t = TopN::new(3);
        for x in [5, 1, 9, 3, 7, 2] {
            t.offer(x);
        }
        assert_eq!(t.into_sorted_desc(), vec![9, 7, 5]);
    }

    #[test]
    fn threshold_only_when_full() {
        let mut t = TopN::new(2);
        assert_eq!(t.threshold(), None);
        t.offer(4);
        assert_eq!(t.threshold(), None);
        t.offer(10);
        assert_eq!(t.threshold(), Some(&4));
    }

    #[test]
    fn ties_do_not_displace() {
        let mut t = TopN::new(2);
        t.offer((8, "first"));
        t.offer((8, "second"));
        // Third item ties the minimum (8, "second") only on score; as a
        // tuple it is smaller, so it is rejected.
        assert!(!t.offer((8, "aaa")));
        let items = t.into_sorted_desc();
        assert_eq!(items, vec![(8, "second"), (8, "first")]);
    }

    #[test]
    fn equal_scalar_rejected_at_capacity() {
        let mut t = TopN::new(1);
        assert!(t.offer(5));
        assert!(!t.offer(5), "equal item must not displace incumbent");
        assert!(t.offer(6));
        assert_eq!(t.into_sorted_desc(), vec![6]);
    }

    #[test]
    fn would_admit_matches_offer() {
        let mut t = TopN::new(2);
        assert!(t.would_admit(&0));
        t.offer(3);
        t.offer(4);
        assert!(!t.would_admit(&3));
        assert!(t.would_admit(&5));
    }

    #[test]
    fn under_capacity_admits_everything() {
        let mut t = TopN::new(10);
        for x in 0..5 {
            assert!(t.offer(x));
        }
        assert_eq!(t.len(), 5);
        assert!(!t.is_full());
    }

    #[test]
    fn iter_visits_all() {
        let mut t = TopN::new(3);
        for x in [1, 2, 3] {
            t.offer(x);
        }
        let mut seen: Vec<_> = t.iter().copied().collect();
        seen.sort();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}

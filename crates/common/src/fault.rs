//! Deterministic, seeded fault injection.
//!
//! Robustness claims ("a panicking worker never takes down the batch",
//! "transient faults plus retry recover byte-identical answers") are
//! only testable if faults can be *produced on demand, reproducibly*.
//! This registry provides that: named injection [`FaultSite`]s are
//! compiled into the hot paths, and a seeded configuration — from the
//! `KTG_FAULTS` environment variable or installed programmatically with
//! [`set_config`] — decides, as a pure function of `(seed, site,
//! per-site arrival counter)`, which arrivals fault.
//!
//! When no configuration is armed, every site folds to one relaxed
//! atomic load of a never-written flag — a perfectly-predicted branch,
//! no lock, no clock, no allocation — so production traffic pays
//! nothing for the machinery.
//!
//! `KTG_FAULTS=<sites>:<rate>:<seed>` where `<sites>` is a
//! comma-separated subset of `parse`, `pool`, `cache`, `solve`, `wal`,
//! `io` (or `all`), `<rate>` is a probability in `[0, 1]`, and `<seed>`
//! is a `u64`. Example: `KTG_FAULTS=pool,solve:0.2:42`.
//!
//! Injected faults panic with a typed [`InjectedFault`] payload (via
//! `std::panic::panic_any`), so recovery layers can tell an injected
//! transient apart from a genuine defect. Retry paths run under
//! [`suppressed`], which masks injection on the current thread — this
//! is what makes recovery deterministic: a retried attempt can never be
//! re-faulted, so retry-once is always enough for injected faults.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};

use crate::error::{KtgError, Result};
use crate::rng::SplitMix64;

/// A named place in the serving stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Per-line workload parsing (`serve::workload`).
    WorkloadParse,
    /// Scratch-arena acquisition from the [`crate::Pool`] free list.
    PoolAcquire,
    /// Result-cache shard lookup.
    CacheLookup,
    /// A worker beginning to solve a query item.
    WorkerSolve,
    /// A write-ahead-log record append (`ktg_index::wal`), fired before
    /// the appender mutates any of its own state.
    WalAppend,
    /// A server response write (`ktg serve`'s respond path), fired
    /// before bytes reach the connection, so half-written-block
    /// accounting (`write_failures`) is testable on demand.
    ServeIo,
}

/// All sites, in mask-bit order.
pub const ALL_SITES: [FaultSite; 6] = [
    FaultSite::WorkloadParse,
    FaultSite::PoolAcquire,
    FaultSite::CacheLookup,
    FaultSite::WorkerSolve,
    FaultSite::WalAppend,
    FaultSite::ServeIo,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::WorkloadParse => 0,
            FaultSite::PoolAcquire => 1,
            FaultSite::CacheLookup => 2,
            FaultSite::WorkerSolve => 3,
            FaultSite::WalAppend => 4,
            FaultSite::ServeIo => 5,
        }
    }

    fn mask(self) -> u8 {
        1 << self.index()
    }

    /// Stable per-site tag mixed into the fault-decision hash.
    fn tag(self) -> u64 {
        // Distinct odd constants; any fixed values work, they only need
        // to decorrelate sites under the same seed.
        [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0x2545_F491_4F6C_DD1D,
            0x85EB_CA77_C2B2_AE63,
            0x27D4_EB2F_1656_67C5,
        ][self.index()]
    }

    /// Short spec name used in `KTG_FAULTS`.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkloadParse => "parse",
            FaultSite::PoolAcquire => "pool",
            FaultSite::CacheLookup => "cache",
            FaultSite::WorkerSolve => "solve",
            FaultSite::WalAppend => "wal",
            FaultSite::ServeIo => "io",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The panic payload carried by an injected fault. Recovery layers
/// downcast to this type to distinguish injected transients from real
/// defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: FaultSite,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at site `{}`", self.site)
    }
}

/// A seeded fault schedule: which sites fire, how often, keyed how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    sites: u8,
    /// Fault probability as a threshold on the top 53 hash bits.
    threshold: u64,
    seed: u64,
}

impl FaultConfig {
    /// A schedule firing `rate` of arrivals at `sites` (clamped to
    /// `[0, 1]`; NaN is treated as 0), decided by `seed`.
    pub fn new(sites: &[FaultSite], rate: f64, seed: u64) -> Self {
        let rate = if rate.is_nan() { 0.0 } else { rate.clamp(0.0, 1.0) };
        let mut mask = 0u8;
        for site in sites {
            mask |= site.mask();
        }
        FaultConfig {
            sites: mask,
            threshold: (rate * (1u64 << 53) as f64) as u64,
            seed,
        }
    }

    /// Parses a `KTG_FAULTS` spec: `<sites>:<rate>:<seed>`.
    pub fn from_spec(spec: &str) -> Result<Self> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [sites_part, rate_part, seed_part] = parts[..] else {
            return Err(KtgError::input(format!(
                "KTG_FAULTS spec `{spec}` is not <sites>:<rate>:<seed>"
            )));
        };
        let mut sites = Vec::new();
        for name in sites_part.split(',') {
            match name.trim() {
                "all" => sites.extend_from_slice(&ALL_SITES),
                other => {
                    let site = ALL_SITES
                        .iter()
                        .copied()
                        .find(|s| s.name() == other)
                        .ok_or_else(|| {
                            KtgError::input(format!("unknown fault site `{other}` in `{spec}`"))
                        })?;
                    sites.push(site);
                }
            }
        }
        let rate: f64 = rate_part.trim().parse().map_err(|_| {
            KtgError::input(format!("bad fault rate `{rate_part}` in `{spec}`"))
        })?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(KtgError::input(format!(
                "fault rate `{rate_part}` outside [0, 1] in `{spec}`"
            )));
        }
        let seed: u64 = seed_part.trim().parse().map_err(|_| {
            KtgError::input(format!("bad fault seed `{seed_part}` in `{spec}`"))
        })?;
        Ok(FaultConfig::new(&sites, rate, seed))
    }

    fn applies(&self, site: FaultSite) -> bool {
        self.sites & site.mask() != 0
    }

    /// Pure fault decision for the `n`-th arrival at `site`.
    fn decide(&self, site: FaultSite, n: u64) -> bool {
        if !self.applies(site) || self.threshold == 0 {
            return false;
        }
        let mut mix =
            SplitMix64::new(self.seed ^ site.tag() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (mix.next_u64() >> 11) < self.threshold
    }
}

/// Fast-path flag: false ⇔ no schedule installed ⇔ every site is a
/// single predicted-not-taken branch.
static ARMED: AtomicBool = AtomicBool::new(false);
static CONFIG: Mutex<Option<FaultConfig>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();
static COUNTERS: [AtomicU64; 6] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

fn env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("KTG_FAULTS") {
            let spec = spec.trim();
            if !spec.is_empty() {
                // An unparseable spec is ignored here (lib code must not
                // abort the host); the CLI validates it loudly up front.
                if let Ok(cfg) = FaultConfig::from_spec(spec) {
                    install(Some(cfg));
                }
            }
        }
    });
}

fn install(config: Option<FaultConfig>) {
    let mut guard = match CONFIG.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    for counter in &COUNTERS {
        counter.store(0, Ordering::SeqCst);
    }
    ARMED.store(config.is_some(), Ordering::SeqCst);
    *guard = config;
}

/// Installs (or with `None`, clears) a fault schedule programmatically,
/// resetting all per-site arrival counters. Overrides `KTG_FAULTS`.
/// Process-global: tests sharing a binary must serialize around it.
pub fn set_config(config: Option<FaultConfig>) {
    env_init();
    install(config);
}

/// Whether a fault schedule is currently armed (env or programmatic).
pub fn armed() -> bool {
    env_init();
    ARMED.load(Ordering::Relaxed)
}

/// Decides whether the current arrival at `site` should fault.
/// Unarmed: a single relaxed load. Armed: consumes one tick of the
/// site's deterministic arrival counter (unless [`suppressed`]).
pub fn should_fail(site: FaultSite) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        env_init();
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
    }
    if SUPPRESS.with(Cell::get) {
        return false;
    }
    let cfg = {
        let guard = match CONFIG.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match *guard {
            Some(cfg) => cfg,
            None => return false,
        }
    };
    if !cfg.applies(site) {
        return false;
    }
    let n = COUNTERS[site.index()].fetch_add(1, Ordering::SeqCst);
    cfg.decide(site, n)
}

/// Injects a fault at `site` if the armed schedule says so: panics with
/// an [`InjectedFault`] payload via `std::panic::panic_any`. No-op when
/// unarmed or suppressed.
pub fn inject(site: FaultSite) {
    if should_fail(site) {
        std::panic::panic_any(InjectedFault { site });
    }
}

/// Runs `f` with fault injection masked on this thread (restored even
/// if `f` panics). Retry paths use this so a retried attempt cannot be
/// re-faulted — the determinism-under-retry guarantee.
pub fn suppressed<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SUPPRESS.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SUPPRESS.with(|s| s.replace(true)));
    f()
}

/// Does this panic payload come from [`inject`]?
pub fn is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<InjectedFault>().is_some()
}

/// Runs `f`, retrying it once under [`suppressed`] if it hits an
/// *injected* fault. Genuine panics are re-raised untouched, so this
/// never masks a real defect. The cheap (`Fn`, re-callable) sites —
/// workload parsing — use this directly; the executor's solve path has
/// its own retry that also discards the worker's scratch arena.
pub fn recoverable<R>(site: FaultSite, f: impl Fn() -> R) -> R {
    if !armed() {
        return f();
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        inject(site);
        f()
    })) {
        Ok(value) => value,
        Err(payload) if is_injected(payload.as_ref()) => suppressed(&f),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// The registry is process-global; every test that arms it holds
    /// this lock (and re-disarms before releasing).
    fn registry_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    fn with_armed<R>(cfg: FaultConfig, f: impl FnOnce() -> R) -> R {
        let _guard = registry_lock().lock().unwrap_or_else(|p| p.into_inner());
        set_config(Some(cfg));
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                set_config(None);
            }
        }
        let _disarm = Disarm;
        f()
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _guard = registry_lock().lock().unwrap_or_else(|p| p.into_inner());
        set_config(None);
        for _ in 0..1000 {
            assert!(!should_fail(FaultSite::WorkerSolve));
        }
    }

    #[test]
    fn rate_one_always_fires_at_selected_sites_only() {
        let cfg = FaultConfig::new(&[FaultSite::PoolAcquire], 1.0, 7);
        with_armed(cfg, || {
            assert!(should_fail(FaultSite::PoolAcquire));
            assert!(!should_fail(FaultSite::CacheLookup));
            assert!(!should_fail(FaultSite::WorkloadParse));
        });
    }

    #[test]
    fn schedules_are_deterministic_in_arrival_order() {
        let cfg = FaultConfig::new(&ALL_SITES, 0.3, 42);
        let run = || -> Vec<bool> {
            set_config(Some(cfg));
            (0..64).map(|_| should_fail(FaultSite::WorkerSolve)).collect()
        };
        let _guard = registry_lock().lock().unwrap_or_else(|p| p.into_inner());
        let a = run();
        let b = run();
        set_config(None);
        assert_eq!(a, b, "same seed + arrival order must fault identically");
        assert!(a.iter().any(|&x| x), "rate 0.3 over 64 arrivals should fire");
        assert!(!a.iter().all(|&x| x), "rate 0.3 should not fire every time");
    }

    #[test]
    fn suppression_masks_and_restores() {
        let cfg = FaultConfig::new(&ALL_SITES, 1.0, 1);
        with_armed(cfg, || {
            suppressed(|| {
                assert!(!should_fail(FaultSite::WorkerSolve));
                // Nested suppression stays suppressed after inner exit.
                suppressed(|| assert!(!should_fail(FaultSite::WorkerSolve)));
                assert!(!should_fail(FaultSite::WorkerSolve));
            });
            assert!(should_fail(FaultSite::WorkerSolve), "suppression must lift");
        });
    }

    #[test]
    fn inject_panics_with_typed_payload() {
        let cfg = FaultConfig::new(&[FaultSite::CacheLookup], 1.0, 3);
        with_armed(cfg, || {
            let payload = std::panic::catch_unwind(|| inject(FaultSite::CacheLookup))
                .expect_err("rate 1.0 must fire");
            assert!(is_injected(payload.as_ref()));
            let fault = payload.downcast_ref::<InjectedFault>().expect("typed payload");
            assert_eq!(fault.site, FaultSite::CacheLookup);
            assert_eq!(fault.to_string(), "injected fault at site `cache`");
        });
    }

    #[test]
    fn recoverable_retries_injected_faults_once() {
        let cfg = FaultConfig::new(&[FaultSite::WorkloadParse], 1.0, 9);
        with_armed(cfg, || {
            // Every arrival faults, yet the value always comes through
            // via the suppressed retry.
            for i in 0..8 {
                assert_eq!(recoverable(FaultSite::WorkloadParse, || i * 2), i * 2);
            }
        });
    }

    #[test]
    fn recoverable_reraises_genuine_panics() {
        let cfg = FaultConfig::new(&[FaultSite::WorkloadParse], 0.0, 9);
        with_armed(cfg, || {
            let payload = std::panic::catch_unwind(|| {
                recoverable(FaultSite::WorkloadParse, || -> u32 {
                    std::panic::panic_any("genuine defect")
                })
            })
            .expect_err("must re-raise");
            assert!(!is_injected(payload.as_ref()));
        });
    }

    #[test]
    fn spec_parsing_accepts_valid_and_rejects_malformed() {
        let cfg = FaultConfig::from_spec("pool,solve:0.25:42").expect("valid spec");
        assert!(cfg.applies(FaultSite::PoolAcquire));
        assert!(cfg.applies(FaultSite::WorkerSolve));
        assert!(!cfg.applies(FaultSite::CacheLookup));
        assert_eq!(
            FaultConfig::from_spec("all:1:7").expect("`all` spec"),
            FaultConfig::new(&ALL_SITES, 1.0, 7)
        );
        for bad in ["", "pool", "pool:0.5", "warp:0.5:1", "pool:two:1", "pool:0.5:x", "pool:1.5:1", "pool:NaN:1"] {
            assert!(
                FaultConfig::from_spec(bad).is_err(),
                "spec `{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn rate_zero_never_fires() {
        let cfg = FaultConfig::new(&ALL_SITES, 0.0, 5);
        with_armed(cfg, || {
            for _ in 0..256 {
                assert!(!should_fail(FaultSite::PoolAcquire));
            }
        });
    }
}

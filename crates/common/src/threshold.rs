//! A monotone shared pruning threshold for parallel branch-and-bound.
//!
//! The parallel KTG search partitions root branches across workers, each
//! holding a private top-N. Theorem-2 pruning gets sharper the earlier a
//! good N-th-best coverage is known, so workers publish their local
//! N-th-best *coverage count* into one [`SharedThreshold`]: a
//! max-accumulating `AtomicU32`. Any published value is the coverage of
//! `N` real, distinct feasible groups found by a single worker, so it is
//! a valid lower bound on the final N-th-best coverage — pruning a
//! subtree whose upper bound falls *strictly below* it can never discard
//! a result group, regardless of which worker published when.
//!
//! All operations use relaxed ordering: the cell is a monotone hint, not
//! a synchronization point. A stale read only means a worker prunes with
//! a slightly older (still valid) floor; it can never over-prune.

use std::sync::atomic::{AtomicU32, Ordering};

/// A max-accumulating atomic coverage floor shared between search workers.
#[derive(Debug, Default)]
pub struct SharedThreshold {
    floor: AtomicU32,
}

impl SharedThreshold {
    /// Creates a cell with no published floor yet (reads as 0, which
    /// constrains nothing: every real coverage count is ≥ 1).
    pub fn new() -> Self {
        SharedThreshold { floor: AtomicU32::new(0) }
    }

    /// Publishes a proven coverage floor; the cell keeps the maximum of
    /// everything published so far.
    #[inline]
    pub fn publish(&self, count: u32) {
        self.floor.fetch_max(count, Ordering::Relaxed);
    }

    /// The tightest floor published so far (0 when none).
    #[inline]
    pub fn get(&self) -> u32 {
        self.floor.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unconstrained() {
        assert_eq!(SharedThreshold::new().get(), 0);
        assert_eq!(SharedThreshold::default().get(), 0);
    }

    #[test]
    fn keeps_the_maximum() {
        let t = SharedThreshold::new();
        t.publish(3);
        t.publish(1); // lower publishes never loosen the floor
        assert_eq!(t.get(), 3);
        t.publish(7);
        assert_eq!(t.get(), 7);
    }

    #[test]
    fn concurrent_publishes_converge_to_the_max() {
        let t = SharedThreshold::new();
        let values: Vec<u32> = (1..=64).collect();
        crate::parallel::scope_join(values.chunks(8).map(|chunk| {
            let t = &t;
            move || {
                for &v in chunk {
                    t.publish(v);
                }
            }
        }));
        assert_eq!(t.get(), 64);
    }
}

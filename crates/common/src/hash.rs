//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The hot paths of the KTG algorithms key hash maps almost exclusively by
//! `u32`/`u64` vertex and keyword ids. The standard library's SipHash is
//! collision-resistant but slow for such keys; the classic "Fx" construction
//! (rotate, xor, multiply by a large odd constant — as used inside rustc)
//! is 3-5x faster and its distribution is more than adequate for ids that
//! are already near-uniform. HashDoS is not a concern: all inputs are
//! machine-generated ids, never attacker-controlled strings.
//!
//! Implemented from scratch because the workspace's dependency budget does
//! not include `rustc-hash`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: `floor(2^64 / golden_ratio)`, the same constant
/// used by Fibonacci hashing. Odd, so multiplication is a bijection on u64.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const ROTATE: u32 = 26;

/// A 64-bit Fx-style hasher: `state = (rotl(state, 26) ^ word) * SEED`.
#[derive(Clone, Copy, Default)]
pub struct FxHasher64 {
    state: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche improves the low bits, which hashbrown uses for
        // bucket selection and the high bits for its control bytes.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^= h >> 29;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold in the length so "ab" and "ab\0" hash differently.
            self.add_word(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` using the fast Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("tenuous"), hash_one("tenuous"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not a collision guarantee, but these must not trivially collide.
        assert_ne!(hash_one(0u64), hash_one(1u64));
        assert_ne!(hash_one(7u32), hash_one(8u32));
        assert_ne!(hash_one("ab"), hash_one("ab\0"));
        assert_ne!(hash_one(b"ab".as_slice()), hash_one(b"ab\0".as_slice()));
    }

    #[test]
    fn sequential_ids_spread_across_buckets() {
        // Low bits decide the hashbrown bucket; sequential ids must not all
        // land in the same few buckets.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u32 {
            low_bits.insert(hash_one(i) & 0x3F);
        }
        assert!(low_bits.len() > 32, "only {} distinct buckets", low_bits.len());
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let set: FxHashSet<u32> = (0..100).collect();
        assert_eq!(set.len(), 100);
        assert!(set.contains(&99));
    }

    #[test]
    fn u128_write_covers_both_halves() {
        let a = hash_one(1u128);
        let b = hash_one(1u128 << 64);
        assert_ne!(a, b);
    }
}

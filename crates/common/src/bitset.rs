//! Dense membership structures.
//!
//! Two variants serve the workspace's hot loops:
//!
//! * [`FixedBitSet`] — a plain word-array bitset for long-lived membership
//!   (e.g. "vertex is a query candidate").
//! * [`EpochMarker`] — a "timestamped" visited set: clearing is O(1)
//!   (bump the epoch) instead of O(n), which matters when a branch-and-bound
//!   search runs thousands of bounded BFS traversals per query.

use crate::id::VertexId;

const WORD_BITS: usize = 64;

/// A fixed-capacity bitset over `0..len`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty bitset with capacity for `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits the set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics when `i ≥ len`, in release builds too: a `debug_assert!`
    /// here would let release code silently set a ghost bit in the tail
    /// word (`len` not a multiple of 64), corrupting `count_ones` and
    /// `iter_ones`. Mutation is not the hot path — `contains` is — so the
    /// hard check is free in practice.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics when `i ≥ len` (hard assert, same rationale as
    /// [`FixedBitSet::insert`]).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1 << (i % WORD_BITS));
    }

    /// Tests bit `i`.
    ///
    /// This *is* the hot path, so the bounds check stays a
    /// `debug_assert!`: reads cannot corrupt state, tail-word ghost bits
    /// cannot exist (mutation hard-asserts), and an index past the word
    /// array still panics on the slice access.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Clears every bit (O(words)).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-initializes the set to an all-zero bitset over `0..len`,
    /// reusing the existing word allocation whenever it is large enough.
    /// This is how pooled conflict-bitmap rows are recycled across
    /// queries with different candidate counts without reallocating.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(WORD_BITS);
        self.words.truncate(words);
        self.words.fill(0);
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Overwrites `self` with `a & !b`, word-parallel: the set difference
    /// `a \ b` computed 64 bits at a time. This is the conflict-bitmap
    /// kernel's child-pool derivation — one pass over the word arrays
    /// replaces one distance-oracle probe per remaining candidate.
    ///
    /// # Panics
    /// Panics when the three bitsets do not share the same capacity.
    pub fn assign_and_not(&mut self, a: &FixedBitSet, b: &FixedBitSet) {
        assert!(
            self.len == a.len && self.len == b.len,
            "capacity mismatch: {} vs {} vs {}",
            self.len,
            a.len,
            b.len
        );
        for (out, (&wa, &wb)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *out = wa & !wb;
        }
    }

    /// Overwrites `self` with a copy of `other` without reallocating.
    ///
    /// # Panics
    /// Panics when the capacities differ.
    pub fn copy_from(&mut self, other: &FixedBitSet) {
        assert!(self.len == other.len, "capacity mismatch: {} vs {}", self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// Number of set bits in `self & !other` without materializing the
    /// difference (word-parallel popcount).
    ///
    /// # Panics
    /// Panics when the capacities differ.
    pub fn and_not_count(&self, other: &FixedBitSet) -> usize {
        assert!(self.len == other.len, "capacity mismatch: {} vs {}", self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            BitIter { word, base: wi * WORD_BITS }
        })
    }

    /// Approximate heap usage in bytes (for index space accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

/// A visited-set with O(1) reset.
///
/// Each slot stores the epoch at which it was last marked; a slot is
/// "marked" iff its stamp equals the current epoch. [`EpochMarker::reset`]
/// just increments the epoch, so repeated BFS traversals over the same
/// arena cost nothing to clear. The 32-bit epoch wraps after ~4 billion
/// resets; on wrap the stamp array is zeroed to stay sound.
#[derive(Clone, Debug)]
pub struct EpochMarker {
    stamps: Vec<u32>,
    epoch: u32,
}

impl Default for EpochMarker {
    /// An empty arena; grow it with [`EpochMarker::grow`] before marking.
    fn default() -> Self {
        EpochMarker::new(0)
    }
}

impl EpochMarker {
    /// Creates a marker arena for `len` slots, all unmarked.
    pub fn new(len: usize) -> Self {
        EpochMarker {
            stamps: vec![0; len],
            epoch: 1,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the arena has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Unmarks everything in O(1) (amortized; O(n) once every 2^32 resets).
    #[inline]
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks slot `i`. Returns `true` if it was previously unmarked.
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let fresh = self.stamps[i] != self.epoch;
        self.stamps[i] = self.epoch;
        fresh
    }

    /// Tests slot `i`.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    /// Marks a vertex id (convenience for graph code).
    #[inline]
    pub fn mark_vertex(&mut self, v: VertexId) -> bool {
        self.mark(v.index())
    }

    /// Tests a vertex id.
    #[inline]
    pub fn is_vertex_marked(&self, v: VertexId) -> bool {
        self.is_marked(v.index())
    }

    /// Grows the arena to at least `len` slots (new slots unmarked).
    pub fn grow(&mut self, len: usize) {
        if len > self.stamps.len() {
            self.stamps.resize(len, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_and_zeroes() {
        let mut bs = FixedBitSet::new(130);
        bs.insert(0);
        bs.insert(129);
        // Shrink: stale high bits must not survive into the tail word.
        bs.reset(70);
        assert_eq!(bs.len(), 70);
        assert_eq!(bs.count_ones(), 0);
        bs.insert(69);
        // Grow: fresh words are zero, old bits are gone.
        bs.reset(200);
        assert_eq!(bs.len(), 200);
        assert_eq!(bs.count_ones(), 0);
        bs.insert(199);
        assert!(bs.contains(199));
        assert_eq!(bs.iter_ones().collect::<Vec<_>>(), vec![199]);
    }

    #[test]
    fn set_get_remove() {
        let mut bs = FixedBitSet::new(130);
        assert!(!bs.contains(0));
        bs.insert(0);
        bs.insert(64);
        bs.insert(129);
        assert!(bs.contains(0) && bs.contains(64) && bs.contains(129));
        assert!(!bs.contains(1) && !bs.contains(128));
        bs.remove(64);
        assert!(!bs.contains(64));
        assert_eq!(bs.count_ones(), 2);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut bs = FixedBitSet::new(200);
        for i in [3usize, 64, 65, 199] {
            bs.insert(i);
        }
        let ones: Vec<_> = bs.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn clear_resets_all() {
        let mut bs = FixedBitSet::new(100);
        for i in 0..100 {
            bs.insert(i);
        }
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn empty_bitset() {
        let bs = FixedBitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.iter_ones().count(), 0);
    }

    #[test]
    fn epoch_mark_and_reset() {
        let mut em = EpochMarker::new(10);
        assert!(em.mark(3));
        assert!(!em.mark(3), "second mark reports already-marked");
        assert!(em.is_marked(3));
        assert!(!em.is_marked(4));
        em.reset();
        assert!(!em.is_marked(3), "reset unmarks");
        assert!(em.mark(3));
    }

    #[test]
    fn epoch_wraparound_is_sound() {
        let mut em = EpochMarker::new(4);
        em.mark(0);
        // Force the wrap path.
        em.epoch = u32::MAX;
        em.mark(1);
        em.reset(); // wraps to 0 then snaps to 1 with zeroed stamps
        assert!(!em.is_marked(0));
        assert!(!em.is_marked(1));
        assert!(em.mark(1));
    }

    #[test]
    fn epoch_wrap_zeroes_every_stamp() {
        // A stale stamp surviving the wrap would alias epoch 1 and read as
        // marked; the wrap must leave the whole arena zeroed.
        let mut em = EpochMarker::new(16);
        for i in 0..16 {
            em.mark(i);
        }
        em.epoch = u32::MAX;
        for i in 0..8 {
            em.mark(i); // stamps 0..8 now hold u32::MAX
        }
        em.reset();
        assert_eq!(em.epoch, 1, "wrap snaps the epoch back to 1");
        assert!(em.stamps.iter().all(|&s| s == 0), "stamp array zeroed on wrap");
        for i in 0..16 {
            assert!(!em.is_marked(i));
            assert!(em.mark(i), "slot {i} must be fresh after the wrap");
        }
    }

    #[test]
    fn out_of_range_insert_panics_even_in_release() {
        // 70 bits leave 58 ghost positions in the tail word; setting any
        // of them must be rejected by a hard assert, not a debug_assert.
        let mut bs = FixedBitSet::new(70);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bs.insert(71)));
        assert!(panic.is_err(), "tail-word ghost insert must panic");
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bs.remove(70)));
        assert!(panic.is_err(), "tail-word ghost remove must panic");
        assert_eq!(bs.count_ones(), 0, "failed mutations must not leak bits");
    }

    #[test]
    fn assign_and_not_is_set_difference() {
        let mut a = FixedBitSet::new(130);
        let mut b = FixedBitSet::new(130);
        for i in [0usize, 5, 64, 100, 129] {
            a.insert(i);
        }
        for i in [5usize, 64, 128] {
            b.insert(i);
        }
        let mut out = FixedBitSet::new(130);
        out.insert(77); // stale content must be overwritten
        out.assign_and_not(&a, &b);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 100, 129]);
        assert_eq!(a.and_not_count(&b), 3);
        assert_eq!(b.and_not_count(&a), 1, "only bit 128 is b-exclusive");
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = FixedBitSet::new(70);
        a.insert(3);
        let mut b = FixedBitSet::new(70);
        b.insert(69);
        b.copy_from(&a);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn word_ops_reject_capacity_mismatch() {
        let a = FixedBitSet::new(64);
        let b = FixedBitSet::new(65);
        let mut out = FixedBitSet::new(64);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            out.assign_and_not(&a, &b)
        }));
        assert!(panic.is_err());
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.and_not_count(&b)));
        assert!(panic.is_err());
    }

    #[test]
    fn epoch_vertex_helpers() {
        let mut em = EpochMarker::new(8);
        assert!(em.mark_vertex(VertexId(5)));
        assert!(em.is_vertex_marked(VertexId(5)));
        em.grow(16);
        assert_eq!(em.len(), 16);
        assert!(!em.is_marked(15));
    }
}

//! # `ktg-common`
//!
//! Shared utilities for the KTG (Keyword-based Socially Tenuous Group
//! Queries, ICDE 2023) reproduction workspace.
//!
//! This crate deliberately has **zero dependencies**: everything the rest of
//! the workspace needs that is not domain-specific lives here, built from
//! scratch:
//!
//! * [`VertexId`] — a compact `u32` vertex handle used across all crates.
//! * [`FxHashMap`] / [`FxHashSet`] — hash containers with a fast
//!   multiply-based hasher ([`hash::FxHasher64`]), suitable for the integer
//!   keys that dominate this workload.
//! * [`FixedBitSet`] and [`EpochMarker`] — dense membership structures used
//!   for BFS visited sets and candidate filtering without per-query O(n)
//!   clears.
//! * [`TopN`] — a bounded min-heap maintaining the N best items with the
//!   paper's tie semantics (an item that merely equals the current N-th best
//!   does not displace an incumbent).
//! * [`rng`] — seeded from-scratch PRNGs ([`SeededRng`] is xoshiro256++
//!   expanded from a `u64` seed via SplitMix64) with `gen_range`,
//!   `gen_bool`, `shuffle`, and distinct-`sample`, replacing the `rand`
//!   crate for dataset generation and randomized tests.
//! * [`parallel`] — chunked scoped-thread helpers on `std::thread::scope`
//!   with panic propagation and `KTG_THREADS` worker-count control,
//!   replacing `crossbeam::thread::scope`.
//! * [`SharedThreshold`] — a max-accumulating atomic coverage floor that
//!   lets parallel branch-and-bound workers share Theorem-2 pruning power.
//! * [`pool`] — mutex-guarded free lists ([`Pool`]) recycling per-worker
//!   arenas (BFS scratch, candidate vectors, bitmap rows) so the batched
//!   query executor serves steady-state traffic without reallocating.
//! * [`cancel`] — cooperative [`CancelToken`]s with per-query wall-clock
//!   deadlines, the [`CompletionStatus`] tag distinguishing exact
//!   answers from anytime best-so-far ones, and the [`Stopwatch`]
//!   latency measurer (the only lib module allowed to read the wall
//!   clock; see the module docs for why that is sound).
//! * [`net`] — blocking line-framing over byte streams ([`LineReader`] /
//!   [`write_line`]): timeout-tolerant, overlong-line-safe, the I/O
//!   substrate under the `ktg serve` TCP front-end.
//! * [`fault`] — a deterministic, seeded fault-injection registry
//!   (`KTG_FAULTS`) that the robustness test suites use to prove the
//!   serving stack recovers from transient worker faults byte-identically.
//! * [`KtgError`] — the workspace error type.


#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cancel;
pub mod error;
pub mod fault;
pub mod hash;
pub mod id;
pub mod net;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod threshold;
pub mod topn;

pub use bitset::{EpochMarker, FixedBitSet};
pub use cancel::{CancelToken, CompletionStatus, DegradeReason, Stopwatch};
pub use error::{KtgError, Result};
pub use fault::{FaultConfig, FaultSite, InjectedFault};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
pub use id::VertexId;
pub use net::{write_line, Frame, LineReader};
pub use pool::{Pool, PoolGuard};
pub use rng::{SeededRng, SplitMix64};
pub use threshold::SharedThreshold;
pub use topn::TopN;

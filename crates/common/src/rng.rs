//! Seeded pseudo-random number generation, from scratch.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! the `rand` crate is replaced by two small, well-studied generators:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One multiply
//!   chain per output, equidistributed, and the canonical way to expand a
//!   single `u64` seed into a larger state without correlated streams.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0, the
//!   general-purpose generator behind `rand::rngs::SmallRng` on 64-bit
//!   targets. 256 bits of state, period 2²⁵⁶ − 1, seeded via SplitMix64.
//!
//! Everything is deterministic in the seed: the same seed always yields
//! the same stream on every platform, which the dataset generators and the
//! randomized differential tests rely on (byte-identical synthetic
//! datasets per seed).
//!
//! Integer ranges are sampled with Lemire's multiply-shift rejection
//! method (exactly uniform, no modulo bias); floats use the conventional
//! 53-high-bit mapping into `[0, 1)`.

use std::ops::{Range, RangeInclusive};

/// The workspace's default seeded generator (xoshiro256++).
pub type SeededRng = Xoshiro256pp;

/// SplitMix64: a tiny splittable generator used to expand seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: the workspace's general-purpose PRNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro authors recommend. All-zero states are impossible this way.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32 uniform bits (the high half, whose bits mix best).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `0..n` via Lemire multiply-shift with rejection.
    ///
    /// # Panics
    /// Panics when `n` is zero.
    #[inline]
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        // Rejection threshold: the lowest 2^64 mod n values of the low
        // half are biased; reroll on them.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(n);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1..=6)` or `rng.gen_range(0.0..total)`.
    ///
    /// # Panics
    /// Panics on empty ranges.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// `k` distinct indices sampled uniformly from `0..n`, in random order.
    ///
    /// # Panics
    /// Panics when `k > n`.
    pub fn sample(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        if k * 4 >= n {
            // Dense: partial Fisher–Yates over the full index vector.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.bounded_u64((n - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Sparse: rejection into a small accumulator.
            let mut out: Vec<usize> = Vec::with_capacity(k);
            while out.len() < k {
                let x = self.bounded_u64(n as u64) as usize;
                if !out.contains(&x) {
                    out.push(x);
                }
            }
            out
        }
    }
}

/// Ranges [`Xoshiro256pp::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform element.
    fn sample_from(self, rng: &mut Xoshiro256pp) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut Xoshiro256pp) -> f64 {
        assert!(self.start < self.end, "empty range");
        // Strictly below `end`: rounding at the top of a wide span can
        // land exactly on it, so reroll (vanishingly rare).
        loop {
            let x = self.start + rng.gen_f64() * (self.end - self.start);
            if x < self.end {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the public-domain C source.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        let mut c = SeededRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SeededRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(rng.gen_range(0..10u32) < 10);
            assert!((3..=8usize).contains(&rng.gen_range(3..=8usize)));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bounded_hits_every_value() {
        let mut rng = SeededRng::seed_from_u64(3);
        let mut counts = [0usize; 7];
        for _ in 0..7000 {
            counts[rng.bounded_u64(7) as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!(c > 700, "value {v} drawn only {c} times");
        }
    }

    #[test]
    fn gen_bool_edges_and_bias() {
        let mut rng = SeededRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn sample_distinct_both_regimes() {
        let mut rng = SeededRng::seed_from_u64(9);
        for (n, k) in [(10, 8), (1000, 5), (4, 4), (3, 0)] {
            let s = rng.sample(n, k);
            assert_eq!(s.len(), k);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), k, "duplicates in sample({n}, {k})");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SeededRng::seed_from_u64(13);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [10u8, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = rng.choose(&items).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SeededRng::seed_from_u64(0).gen_range(5..5u32);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SeededRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

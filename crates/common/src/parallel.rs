//! Scoped parallelism helpers built on [`std::thread::scope`].
//!
//! The index builders and the batched benchmark runner split their work
//! into per-worker chunks and join the results. `crossbeam::thread::scope`
//! used to provide the borrow-friendly scope; since Rust 1.63 the standard
//! library does, so this module replaces the dependency with three small
//! pieces:
//!
//! * [`worker_count`] — the worker count to fan out to, honoring the
//!   `KTG_THREADS` environment variable as an override.
//! * [`chunk_size`] — the per-worker chunk length for a given item count.
//! * [`scope_join`] — spawn one scoped thread per task and join them all,
//!   re-raising the first worker panic on the calling thread.

/// Number of parallel workers: `KTG_THREADS` when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if even
/// that is unavailable).
pub fn worker_count() -> usize {
    if let Ok(val) = std::env::var("KTG_THREADS") {
        if let Ok(n) = val.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Chunk length that spreads `items` over at most `workers` chunks.
/// Always ≥ 1, so it is safe to feed straight into `chunks`/`chunks_mut`.
pub fn chunk_size(items: usize, workers: usize) -> usize {
    items.div_ceil(workers.max(1)).max(1)
}

/// Runs every task on its own scoped thread and returns their results in
/// task order. Borrows in the closures may reference the caller's stack,
/// exactly as with `crossbeam::thread::scope`.
///
/// If a task panics, the panic payload is re-raised here on the calling
/// thread (after all other tasks have been joined), so a worker failure
/// is never silently swallowed.
pub fn scope_join<T, F, I>(tasks: I) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    I: IntoIterator<Item = F>,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|task| scope.spawn(task)).collect();
        // Join *every* handle before re-raising anything: resuming the
        // first panic mid-iteration would drop the remaining handles
        // inside the scope closure, turning a one-worker failure into an
        // unwind race while other workers still run (and losing their
        // panic messages to the default hook).
        let joined: Vec<std::thread::Result<T>> =
            handles.into_iter().map(|h| h.join()).collect();
        let mut results = Vec::with_capacity(joined.len());
        let mut first_panic = None;
        for outcome in joined {
            match outcome {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_in_task_order() {
        let results = scope_join((0..8).map(|i| move || i * i));
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn tasks_can_borrow_caller_data() {
        let mut data = vec![0u64; 100];
        let chunk = chunk_size(data.len(), 4);
        let sums = scope_join(data.chunks_mut(chunk).enumerate().map(|(ci, chunk)| {
            move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (ci * 1000 + i) as u64;
                }
                chunk.iter().sum::<u64>()
            }
        }));
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates() {
        let outcome = std::panic::catch_unwind(|| {
            scope_join((0..4).map(|i| move || {
                if i == 2 {
                    panic!("worker exploded");
                }
                i
            }))
        });
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker exploded");
    }

    #[test]
    fn two_panics_joins_all_workers_and_reraises_the_first() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Regression: the old implementation re-raised on the first
        // failed join, so handles after it were never joined explicitly
        // and late workers could still be mid-flight when the panic left
        // the collection loop. Every worker must run to completion and
        // the *first* payload (task order) must be the one re-raised.
        let completed = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(|| {
            scope_join((0..6).map(|i| {
                let completed = &completed;
                move || {
                    if i == 1 {
                        panic!("first failure");
                    }
                    if i == 4 {
                        panic!("second failure");
                    }
                    // Give the early panicker a head start so surviving
                    // workers are genuinely still running when it fails.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                }
            }))
        });
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "first failure", "task-order-first payload wins");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            4,
            "all non-panicking workers were joined to completion"
        );
    }

    #[test]
    fn chunk_size_covers_all_items() {
        assert_eq!(chunk_size(10, 4), 3);
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(10, 0), 10);
        assert_eq!(chunk_size(3, 8), 1);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}

//! Workspace error type.
//!
//! A small hand-rolled error enum (the dependency budget excludes
//! `thiserror`). Variants cover the failure modes that cross crate
//! boundaries: malformed input graphs/keyword files, invalid query
//! parameters, and I/O.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, KtgError>;

/// Errors surfaced by the KTG workspace crates.
#[derive(Debug)]
pub enum KtgError {
    /// A query parameter is out of its valid domain (e.g. `p == 0`,
    /// `|W_Q| > 64`, keyword unknown to the vocabulary).
    InvalidQuery(String),
    /// Input data is malformed (edge list syntax, vertex out of range, ...).
    InvalidInput(String),
    /// An index was asked about a graph it was not built for.
    IndexMismatch(String),
    /// The serving layer refused work beyond its admission bound
    /// (`max_inflight`) instead of queueing it unboundedly.
    Overloaded(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for KtgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KtgError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            KtgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            KtgError::IndexMismatch(msg) => write!(f, "index mismatch: {msg}"),
            KtgError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            KtgError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for KtgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KtgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KtgError {
    fn from(e: std::io::Error) -> Self {
        KtgError::Io(e)
    }
}

impl KtgError {
    /// Shorthand constructor for [`KtgError::InvalidQuery`].
    pub fn query(msg: impl Into<String>) -> Self {
        KtgError::InvalidQuery(msg.into())
    }

    /// Shorthand constructor for [`KtgError::InvalidInput`].
    pub fn input(msg: impl Into<String>) -> Self {
        KtgError::InvalidInput(msg.into())
    }

    /// Shorthand constructor for [`KtgError::Overloaded`].
    pub fn overloaded(msg: impl Into<String>) -> Self {
        KtgError::Overloaded(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_messages() {
        assert_eq!(
            KtgError::query("p must be >= 2").to_string(),
            "invalid query: p must be >= 2"
        );
        assert_eq!(
            KtgError::input("bad edge").to_string(),
            "invalid input: bad edge"
        );
    }

    #[test]
    fn io_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err = KtgError::from(io);
        assert!(err.source().is_some());
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn non_io_has_no_source() {
        assert!(KtgError::query("x").source().is_none());
    }

    #[test]
    fn overloaded_display() {
        let err = KtgError::overloaded("admission bound of 4 reached");
        assert_eq!(err.to_string(), "overloaded: admission bound of 4 reached");
        assert!(err.source().is_none());
    }
}

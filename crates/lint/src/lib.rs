//! # `ktg-lint`
//!
//! The KTG workspace's in-tree static analysis pass. A zero-dependency
//! binary (and library, for self-tests) that enforces the project
//! invariants the compiler cannot:
//!
//! * **L1 registry-dep** — the workspace builds fully offline; no
//!   manifest may reference a registry dependency (absorbs the old
//!   inline-python gate from `tools/ci.sh`).
//! * **L2 panic-in-lib** — library code must surface failures as
//!   [`KtgError`](https://docs.rs/) results, not `unwrap`/`expect`/`panic!`.
//! * **L3 default-hasher** — hash containers must use the `ktg-common`
//!   Fx aliases, not SipHash defaults.
//! * **L4 nondeterminism** — wall-clock reads are confined to
//!   `ktg-bench` and `ktg_common::parallel`; everything else must be a
//!   deterministic function of its inputs.
//! * **L5 lib-header** — every crate root carries a `//!` doc header and
//!   `#![forbid(unsafe_code)]`.
//! * **L6 untagged-todo** — to-do/fix-me comments carry issue tags,
//!   e.g. `TODO(#42)`.
//!
//! Rust sources are analyzed through a hand-rolled lexer ([`lexer`]) so
//! string literals, comments and `#[cfg(test)]` modules are classified
//! correctly — the failure mode that makes `grep`-based gates flaky.
//!
//! Pre-existing violations live in a committed ratchet baseline
//! ([`baseline`], `tools/lint-baseline.txt`): the pass fails only on
//! *regressions*, and `ktg-lint --update-baseline` tightens the recorded
//! counts after cleanups. See `DESIGN.md` for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod walk;

pub use baseline::{compare, Comparison, Counts};
pub use lints::{check_manifest, check_rust_source, Finding, Lint};

use std::io;
use std::path::Path;

/// Lints every Rust source and manifest under `root`, returning all
/// findings sorted by path and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = walk::discover(root)?;
    let mut findings = Vec::new();
    for rel in &files.rust_sources {
        let text = std::fs::read_to_string(root.join(rel))?;
        findings.extend(lints::check_rust_source(rel, &text));
    }
    for rel in &files.manifests {
        let text = std::fs::read_to_string(root.join(rel))?;
        findings.extend(lints::check_manifest(rel, &text));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(findings)
}

/// The committed baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "tools/lint-baseline.txt";

#[cfg(test)]
mod tests {
    use super::*;

    /// The ratchet, enforced from `cargo test` as well as from CI: a
    /// regression against the committed baseline fails the test suite of
    /// the lint crate itself.
    #[test]
    fn workspace_is_clean_against_committed_baseline() {
        let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let findings = scan_workspace(&root).expect("workspace scan");
        let current = baseline::count(&findings);
        let text = std::fs::read_to_string(root.join(BASELINE_PATH))
            .expect("committed baseline exists");
        let base = baseline::parse(&text).expect("baseline parses");
        let cmp = compare(&current, &base);
        assert!(
            cmp.is_pass(),
            "lint regressions against {BASELINE_PATH}:\n{cmp}\nfindings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

//! # `ktg-lint`
//!
//! The KTG workspace's in-tree static analysis pass. A zero-dependency
//! binary (and library, for self-tests) that enforces the project
//! invariants the compiler cannot:
//!
//! * **L1 registry-dep** — the workspace builds fully offline; no
//!   manifest may reference a registry dependency (absorbs the old
//!   inline-python gate from `tools/ci.sh`).
//! * **L2 panic-in-lib** — library code must surface failures as
//!   [`KtgError`](https://docs.rs/) results, not `unwrap`/`expect`/`panic!`.
//! * **L3 default-hasher** — hash containers must use the `ktg-common`
//!   Fx aliases, not SipHash defaults.
//! * **L4 nondeterminism** — wall-clock reads are confined to
//!   `ktg-bench`, `ktg_common::parallel` and `ktg_common::cancel`;
//!   everything else must be a deterministic function of its inputs —
//!   and the call graph makes the check transitive.
//! * **L5 lib-header** — every crate root carries a `//!` doc header and
//!   `#![forbid(unsafe_code)]`.
//! * **L6 untagged-todo** — to-do/fix-me comments carry issue tags,
//!   e.g. `TODO(#42)`.
//! * **L7 lock-discipline** — locks are acquired in the fixed tier
//!   order (session → cache-shard → stats-stripe), never inside
//!   `catch_unwind`.
//! * **L8 atomic-ordering** — every atomic `Ordering::` use matches the
//!   committed per-site allowlist (`tools/atomics-allowlist.txt`).
//! * **L9 fault-placement** — fault-injection sites precede the
//!   shared-state writes they make recoverable.
//! * **L10 cancel-threading** — every public solve entry point accepts
//!   or forwards a `CancelToken`.
//!
//! Rust sources are analyzed through a hand-rolled lexer ([`lexer`]) so
//! string literals, comments and `#[cfg(test)]` modules are classified
//! correctly — the failure mode that makes `grep`-based gates flaky.
//! The concurrency lints sit on a lightweight syntactic layer: an
//! item/block parser ([`parser`]), a per-block scope model for lock
//! guards ([`scopes`]), and a workspace call graph ([`callgraph`]).
//!
//! Pre-existing violations live in a committed ratchet baseline
//! ([`baseline`], `tools/lint-baseline.txt`), keyed by per-violation
//! fingerprints: the pass fails only on *regressions*, and `ktg-lint
//! --update-baseline` drops stale entries after cleanups. See
//! `DESIGN.md` §16 for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod scopes;
pub mod walk;

pub use baseline::{compare, Comparison, Counts};
pub use lints::manifest::check as check_manifest;
pub use lints::{analyze, check_rust_source, Finding, Lint, SourceFile};

use std::io;
use std::path::Path;

/// The committed baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "tools/lint-baseline.txt";

/// The committed atomic-ordering allowlist (L8), relative to the
/// workspace root.
pub const ATOMICS_PATH: &str = "tools/atomics-allowlist.txt";

/// Reads every Rust source and manifest under `root` into the in-memory
/// view [`lints::analyze`] operates on.
pub fn load_workspace(root: &Path) -> io::Result<(Vec<SourceFile>, Vec<SourceFile>)> {
    let files = walk::discover(root)?;
    let read = |rels: &[String]| -> io::Result<Vec<SourceFile>> {
        rels.iter()
            .map(|rel| {
                Ok(SourceFile { path: rel.clone(), text: std::fs::read_to_string(root.join(rel))? })
            })
            .collect()
    };
    Ok((read(&files.rust_sources)?, read(&files.manifests)?))
}

/// Loads the committed atomics allowlist; a missing file is an empty
/// allowlist (every ordering then fails L8 until one is generated).
pub fn load_atomics_allowlist(root: &Path) -> Result<lints::atomics::Allowlist, String> {
    match std::fs::read_to_string(root.join(ATOMICS_PATH)) {
        Ok(text) => lints::atomics::Allowlist::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(lints::atomics::Allowlist::default()),
        Err(e) => Err(format!("{ATOMICS_PATH}: {e}")),
    }
}

/// Lints every Rust source and manifest under `root`, returning all
/// findings sorted by path and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let (sources, manifests) = load_workspace(root)?;
    let atomics = load_atomics_allowlist(root).map_err(io::Error::other)?;
    Ok(lints::analyze(&sources, &manifests, &atomics))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ratchet, enforced from `cargo test` as well as from CI: a
    /// regression against the committed baseline fails the test suite of
    /// the lint crate itself.
    #[test]
    fn workspace_is_clean_against_committed_baseline() {
        let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let findings = scan_workspace(&root).expect("workspace scan");
        let current = baseline::count(&findings);
        let text = std::fs::read_to_string(root.join(BASELINE_PATH))
            .expect("committed baseline exists");
        let base = baseline::parse(&text).expect("baseline parses");
        let cmp = compare(&current, &base);
        assert!(
            cmp.is_pass(),
            "lint regressions against {BASELINE_PATH}:\n{cmp}\nfindings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The committed atomics allowlist must parse and stay in sync:
    /// stale entries (sites that no longer exist) are tolerated by L8
    /// but flagged here so the file cannot rot.
    #[test]
    fn atomics_allowlist_parses() {
        let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        load_atomics_allowlist(&root).expect("allowlist parses");
    }
}

//! `ktg-lint` — run the workspace lints against the ratchet baseline.
//!
//! ```text
//! ktg-lint [--root DIR] [--update-baseline] [--list]
//! ```
//!
//! * default: scan, compare with `tools/lint-baseline.txt`, print every
//!   finding in regressed `(lint, file)` pairs, exit 1 on regression.
//! * `--update-baseline`: rewrite the baseline to the current counts
//!   (use after *reducing* violations; CI diffs will show any loosening).
//! * `--list`: print every finding (including baselined ones) and the
//!   per-lint totals; always exits 0. For exploration, not gating.

use ktg_lint::{baseline, walk, BASELINE_PATH};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    update_baseline: bool,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: None, update_baseline: false, list: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--list" => opts.list = true,
            "--help" | "-h" => {
                return Err("usage: ktg-lint [--root DIR] [--update-baseline] [--list]".into())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ktg-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let root = match &opts.root {
        Some(dir) => dir.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            walk::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?
        }
    };

    let findings = ktg_lint::scan_workspace(&root).map_err(|e| e.to_string())?;
    let current = baseline::count(&findings);

    if opts.list {
        for f in &findings {
            println!("{f}");
        }
        let mut per_lint: Vec<(ktg_lint::Lint, usize)> = Vec::new();
        for ((lint, _), n) in &current {
            match per_lint.iter_mut().find(|(l, _)| l == lint) {
                Some((_, total)) => *total += n,
                None => per_lint.push((*lint, *n)),
            }
        }
        for (lint, total) in per_lint {
            println!("total [{} {}]: {total}", lint.id(), lint.name());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_file = root.join(BASELINE_PATH);
    if opts.update_baseline {
        std::fs::write(&baseline_file, baseline::render(&current))
            .map_err(|e| format!("writing {}: {e}", baseline_file.display()))?;
        println!(
            "ktg-lint: baseline rewritten with {} findings across {} (lint, file) pairs",
            findings.len(),
            current.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let base = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(format!(
                "no baseline at {} — run with --update-baseline to create it",
                baseline_file.display()
            ))
        }
        Err(e) => return Err(format!("reading {}: {e}", baseline_file.display())),
    };

    let cmp = ktg_lint::compare(&current, &base);
    if !cmp.is_pass() {
        // Show every finding in each regressed pair, so the offending
        // lines are directly clickable.
        for (lint, path, _, _) in &cmp.regressions {
            for f in findings.iter().filter(|f| f.lint == *lint && &f.path == path) {
                eprintln!("{f}");
            }
        }
        eprint!("{cmp}");
        eprintln!("ktg-lint: FAIL — {} regression(s)", cmp.regressions.len());
        return Ok(ExitCode::FAILURE);
    }
    if !cmp.improvements.is_empty() {
        print!("{cmp}");
        println!("ktg-lint: baseline is stale — run `ktg-lint --update-baseline` to ratchet down");
    }
    println!(
        "ktg-lint: PASS — {} findings, all within the committed baseline ({} pairs)",
        findings.len(),
        current.len()
    );
    Ok(ExitCode::SUCCESS)
}

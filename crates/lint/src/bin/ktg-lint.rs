//! `ktg-lint` — run the workspace lints against the ratchet baseline.
//!
//! ```text
//! ktg-lint [--root DIR] [--update-baseline] [--update-atomics]
//!          [--list] [--json] [--explain L<N>]
//! ```
//!
//! * default: scan, compare with `tools/lint-baseline.txt`, print every
//!   finding in regressed `(lint, file)` pairs, exit 1 on regression.
//! * `--update-baseline`: rewrite the baseline to the current findings
//!   (use after *fixing* violations; CI diffs will show any loosening).
//! * `--update-atomics`: rewrite `tools/atomics-allowlist.txt` from the
//!   workspace's current `Ordering::` sites (L8). Review the diff — an
//!   ordering change is a memory-model decision.
//! * `--list`: print every finding (including baselined ones) and the
//!   per-lint totals; always exits 0. For exploration, not gating.
//! * `--json`: emit the run as one JSON object on stdout (findings,
//!   per-lint totals, regression count, timing) — the CI artifact form.
//!   Exit code still reflects the ratchet.
//! * `--explain L7`: print a lint's rule and rationale.

use ktg_lint::lints::{atomics, ALL_LINTS};
use ktg_lint::{baseline, walk, ATOMICS_PATH, BASELINE_PATH};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    root: Option<PathBuf>,
    update_baseline: bool,
    update_atomics: bool,
    list: bool,
    json: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        update_baseline: false,
        update_atomics: false,
        list: false,
        json: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--update-atomics" => opts.update_atomics = true,
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--explain" => {
                let id = args.next().ok_or("--explain requires a lint id (e.g. L7)")?;
                opts.explain = Some(id);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ktg-lint [--root DIR] [--update-baseline] [--update-atomics] \
                     [--list] [--json] [--explain L<N>]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ktg-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    if let Some(id) = &opts.explain {
        let Some(lint) = ktg_lint::Lint::from_id(id) else {
            let known: Vec<&str> = ALL_LINTS.iter().map(|l| l.id()).collect();
            return Err(format!("unknown lint `{id}` — known: {}", known.join(" ")));
        };
        println!("[{} {}]", lint.id(), lint.name());
        println!();
        println!("{}", lint.explain());
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &opts.root {
        Some(dir) => dir.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            walk::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?
        }
    };

    if opts.update_atomics {
        let (sources, _) = ktg_lint::load_workspace(&root).map_err(|e| e.to_string())?;
        let paths: Vec<String> = sources.iter().map(|s| s.path.clone()).collect();
        let asts: Vec<_> = sources.iter().map(|s| ktg_lint::parser::parse(&s.text)).collect();
        let allow = atomics::Allowlist::collect(&paths, &asts);
        let file = root.join(ATOMICS_PATH);
        std::fs::write(&file, allow.render())
            .map_err(|e| format!("writing {}: {e}", file.display()))?;
        println!("ktg-lint: atomics allowlist rewritten at {ATOMICS_PATH}");
        return Ok(ExitCode::SUCCESS);
    }

    let started = Instant::now();
    let findings = ktg_lint::scan_workspace(&root).map_err(|e| e.to_string())?;
    let current = baseline::count(&findings);

    if opts.list {
        for f in &findings {
            println!("{f}");
        }
        for (lint, total) in per_lint_totals(&current) {
            println!("total [{} {}]: {total}", lint.id(), lint.name());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_file = root.join(BASELINE_PATH);
    if opts.update_baseline {
        std::fs::write(&baseline_file, baseline::render(&current))
            .map_err(|e| format!("writing {}: {e}", baseline_file.display()))?;
        println!(
            "ktg-lint: baseline rewritten with {} findings across {} fingerprints",
            findings.len(),
            current.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let base = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(format!(
                "no baseline at {} — run with --update-baseline to create it",
                baseline_file.display()
            ))
        }
        Err(e) => return Err(format!("reading {}: {e}", baseline_file.display())),
    };

    let cmp = ktg_lint::compare(&current, &base);

    if opts.json {
        let elapsed_ms = started.elapsed().as_millis();
        println!("{}", render_json(&findings, &current, &cmp, elapsed_ms));
        return Ok(if cmp.is_pass() { ExitCode::SUCCESS } else { ExitCode::FAILURE });
    }

    if !cmp.is_pass() {
        // Show every finding in each regressed fingerprint, so the
        // offending lines are directly clickable.
        for (lint, path, fp, _, _) in &cmp.regressions {
            for f in findings
                .iter()
                .filter(|f| f.lint == *lint && &f.path == path && &f.fingerprint == fp)
            {
                eprintln!("{f}");
            }
        }
        eprint!("{cmp}");
        eprintln!("ktg-lint: FAIL — {} regression(s)", cmp.regressions.len());
        return Ok(ExitCode::FAILURE);
    }
    if !cmp.improvements.is_empty() {
        print!("{cmp}");
        println!("ktg-lint: baseline is stale — run `ktg-lint --update-baseline` to ratchet down");
    }
    println!(
        "ktg-lint: PASS — {} findings, all within the committed baseline ({} fingerprints)",
        findings.len(),
        current.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn per_lint_totals(current: &baseline::Counts) -> Vec<(ktg_lint::Lint, usize)> {
    let mut per_lint: Vec<(ktg_lint::Lint, usize)> = Vec::new();
    for ((lint, _, _), n) in current {
        match per_lint.iter_mut().find(|(l, _)| l == lint) {
            Some((_, total)) => *total += n,
            None => per_lint.push((*lint, *n)),
        }
    }
    per_lint
}

/// Hand-rolled JSON (the dependency budget excludes serde): one object
/// with the pass verdict, every finding, per-lint totals, and timing.
fn render_json(
    findings: &[ktg_lint::Finding],
    current: &baseline::Counts,
    cmp: &ktg_lint::Comparison,
    elapsed_ms: u128,
) -> String {
    let mut out = String::with_capacity(findings.len() * 160 + 256);
    out.push_str("{\n");
    out.push_str(&format!("  \"pass\": {},\n", cmp.is_pass()));
    out.push_str(&format!("  \"regressions\": {},\n", cmp.regressions.len()));
    out.push_str(&format!("  \"improvements\": {},\n", cmp.improvements.len()));
    out.push_str(&format!("  \"elapsed_ms\": {elapsed_ms},\n"));
    out.push_str("  \"totals\": {");
    let totals = per_lint_totals(current);
    for (i, (lint, total)) in totals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {total}", lint.id()));
    }
    out.push_str("},\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"name\": \"{}\", \"path\": {}, \"line\": {}, \
             \"fingerprint\": \"{}\", \"message\": {}, \"snippet\": {}}}{}\n",
            f.lint.id(),
            f.lint.name(),
            json_str(&f.path),
            f.line,
            f.fingerprint,
            json_str(&f.message),
            json_str(&f.snippet),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}");
    out
}

/// Escapes a string into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

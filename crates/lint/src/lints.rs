//! The six workspace lints.
//!
//! Each lint reports [`Finding`]s against a *relative* path (workspace
//! root = `""`), so results are stable across machines and usable as
//! ratchet-baseline keys. All Rust-source lints run on the token stream
//! of [`crate::lexer`] — never on raw text — so string literals, doc
//! comments and `#[cfg(test)]` modules are classified correctly.
//!
//! | id | name            | scope                         | rule |
//! |----|-----------------|-------------------------------|------|
//! | L1 | registry-dep    | every `Cargo.toml`            | dependencies must be `path`/`workspace` entries |
//! | L2 | panic-in-lib    | `crates/*/src` minus bins     | no `.unwrap()` / `.expect(` / `panic!` |
//! | L3 | default-hasher  | `crates/*/src` minus bins     | no `std::collections::{HashMap,HashSet}` without explicit hasher |
//! | L4 | nondeterminism  | lib code minus bench/parallel | no `Instant::now` / `SystemTime::now` |
//! | L5 | lib-header      | every `src/lib.rs`            | starts with `//!` docs and declares `#![forbid(unsafe_code)]` |
//! | L6 | untagged-todo   | every `.rs` file              | to-do comments carry an issue tag, e.g. `TODO(#42)` |
//!
//! `#[cfg(test)]` modules (and any other `#[cfg(test)]` item) are exempt
//! from L2–L4: test code may unwrap, time things, and use whatever
//! containers it likes.

use crate::lexer::{self, Token, TokenKind};
use std::fmt;

/// Identifies one of the six lints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// L1: registry (non-path) dependency in a manifest.
    RegistryDep,
    /// L2: `unwrap`/`expect`/`panic!` in library code.
    PanicInLib,
    /// L3: default-hasher std `HashMap`/`HashSet` in library code.
    DefaultHasher,
    /// L4: wall-clock nondeterminism outside the sanctioned modules.
    Nondeterminism,
    /// L5: `lib.rs` missing its doc header or `#![forbid(unsafe_code)]`.
    LibHeader,
    /// L6: to-do/fix-me comment without an issue tag.
    UntaggedTodo,
}

impl Lint {
    /// Stable short id used in output and the ratchet baseline.
    pub fn id(self) -> &'static str {
        match self {
            Lint::RegistryDep => "L1",
            Lint::PanicInLib => "L2",
            Lint::DefaultHasher => "L3",
            Lint::Nondeterminism => "L4",
            Lint::LibHeader => "L5",
            Lint::UntaggedTodo => "L6",
        }
    }

    /// Parses a baseline id back into a lint.
    pub fn from_id(id: &str) -> Option<Lint> {
        Some(match id {
            "L1" => Lint::RegistryDep,
            "L2" => Lint::PanicInLib,
            "L3" => Lint::DefaultHasher,
            "L4" => Lint::Nondeterminism,
            "L5" => Lint::LibHeader,
            "L6" => Lint::UntaggedTodo,
            _ => return None,
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::RegistryDep => "registry-dep",
            Lint::PanicInLib => "panic-in-lib",
            Lint::DefaultHasher => "default-hasher",
            Lint::Nondeterminism => "nondeterminism",
            Lint::LibHeader => "lib-header",
            Lint::UntaggedTodo => "untagged-todo",
        }
    }
}

/// One lint violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path,
            self.line,
            self.lint.id(),
            self.lint.name(),
            self.message
        )
    }
}

/// How the path-based scoping classifies a Rust file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileScope {
    /// Library code: under `crates/*/src`, not a `src/bin` target.
    /// L2 and L3 apply here.
    pub lib_code: bool,
    /// L4 applies: lib code outside `crates/bench`,
    /// `crates/common/src/parallel.rs`, and
    /// `crates/common/src/cancel.rs` (the one module allowed to read
    /// the wall clock — every deadline in the workspace flows through
    /// its token, so confining clock reads there keeps the rest of the
    /// tree deterministic by construction).
    pub deterministic: bool,
    /// L5 applies: the file is a crate root `src/lib.rs`.
    pub lib_root: bool,
}

/// Classifies a workspace-relative path (always `/`-separated).
pub fn scope_of(relpath: &str) -> FileScope {
    let lib_code = relpath.starts_with("crates/")
        && relpath.contains("/src/")
        && !relpath.contains("/src/bin/")
        && !relpath.contains("/benches/")
        && !relpath.contains("/tests/");
    let deterministic = lib_code
        && !relpath.starts_with("crates/bench/")
        && relpath != "crates/common/src/parallel.rs"
        && relpath != "crates/common/src/cancel.rs";
    let lib_root = relpath.ends_with("src/lib.rs");
    FileScope { lib_code, deterministic, lib_root }
}

/// Runs every applicable source lint over one Rust file.
pub fn check_rust_source(relpath: &str, source: &str) -> Vec<Finding> {
    let scope = scope_of(relpath);
    let all_tokens = lexer::tokenize(source);
    let code: Vec<Token<'_>> = all_tokens.iter().copied().filter(|t| !t.is_comment()).collect();
    let in_test = cfg_test_mask(&code);

    let mut findings = Vec::new();
    if scope.lib_code {
        lint_panics(relpath, &code, &in_test, &mut findings);
        lint_default_hasher(relpath, &code, &in_test, &mut findings);
    }
    if scope.deterministic {
        lint_nondeterminism(relpath, &code, &in_test, &mut findings);
    }
    if scope.lib_root {
        lint_lib_header(relpath, &all_tokens, &code, &mut findings);
    }
    lint_todo_tags(relpath, &all_tokens, &mut findings);
    findings.sort_by_key(|a| (a.line, a.lint));
    findings
}

/// Marks the code tokens covered by a `#[cfg(test)]`-gated item (module,
/// function, impl, ...). The item is the first `;` at top depth or the
/// block of the first `{` after the attribute.
fn cfg_test_mask(code: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].text == "#" && matches!(code.get(i + 1), Some(t) if t.text == "[") {
            let (content_start, after_bracket) = match matching_bracket(code, i + 1) {
                Some(end) => (i + 2, end + 1),
                None => break,
            };
            let is_cfg_test = code[content_start].text == "cfg"
                && code[content_start..after_bracket - 1].iter().any(|t| t.text == "test");
            if is_cfg_test {
                let end = item_end(code, after_bracket);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = after_bracket;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index one past the `]` matching the `[` at `open`.
fn matching_bracket(code: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open) {
        match t.text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// One past the end of the item starting at `start`: the first `;` at
/// delimiter depth 0, or the close of the first `{ … }` block entered.
fn item_end(code: &[Token<'_>], start: usize) -> usize {
    let mut depth = 0usize;
    let mut entered_block = false;
    for (j, t) in code.iter().enumerate().skip(start) {
        match t.text {
            "{" | "(" | "[" => {
                entered_block |= t.text == "{";
                depth += 1;
            }
            "}" | ")" | "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 && entered_block && t.text == "}" {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
    }
    code.len()
}

/// L2: `.unwrap()`, `.expect(`, `panic!` in non-test library code.
fn lint_panics(relpath: &str, code: &[Token<'_>], in_test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if in_test[i] || code[i].kind != TokenKind::Ident {
            continue;
        }
        let t = code[i];
        let firing = match t.text {
            "unwrap" | "expect" => {
                i > 0
                    && code[i - 1].text == "."
                    && matches!(code.get(i + 1), Some(n) if n.text == "(")
            }
            "panic" => matches!(code.get(i + 1), Some(n) if n.text == "!"),
            _ => false,
        };
        if firing {
            let what = if t.text == "panic" { "panic!" } else { t.text };
            out.push(Finding {
                lint: Lint::PanicInLib,
                path: relpath.to_string(),
                line: t.line,
                message: format!(
                    "`{what}` in library code — return a `KtgError` (or restructure so the \
                     failure is impossible)"
                ),
            });
        }
    }
}

/// L3: `std::collections::HashMap`/`HashSet` with the default hasher.
///
/// The path form is allowed only when its generics name an explicit
/// hasher (three type parameters for maps, two for sets) — that is how
/// `ktg-common` defines the Fx aliases. Imports via a
/// `collections::{...}` use-group are always flagged.
fn lint_default_hasher(
    relpath: &str,
    code: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    let flag = |t: &Token<'_>, out: &mut Vec<Finding>| {
        out.push(Finding {
            lint: Lint::DefaultHasher,
            path: relpath.to_string(),
            line: t.line,
            message: format!(
                "std `{}` with the default (SipHash) hasher — use `ktg_common::Fx{}`",
                t.text, t.text
            ),
        });
    };
    let mut i = 0;
    while i < code.len() {
        if in_test[i] {
            i += 1;
            continue;
        }
        // `collections :: {` use-group: flag HashMap/HashSet inside.
        if code[i].text == "collections" && path_sep(code, i + 1) {
            if matches!(code.get(i + 3), Some(t) if t.text == "{") {
                let mut depth = 0usize;
                let mut j = i + 3;
                while j < code.len() {
                    match code[j].text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "HashMap" | "HashSet" => flag(&code[j], out),
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            // `collections :: HashMap …` path form.
            if let Some(t) = code.get(i + 3) {
                if t.text == "HashMap" || t.text == "HashSet" {
                    let want_commas = if t.text == "HashMap" { 2 } else { 1 };
                    if !has_explicit_hasher(code, i + 4, want_commas) {
                        flag(t, out);
                    }
                    i += 4;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Whether tokens at `i` start generics (`<…>`, optionally preceded by a
/// turbofish `::`) containing at least `want_commas` top-level commas —
/// i.e. the type names an explicit hasher parameter.
fn has_explicit_hasher(code: &[Token<'_>], mut i: usize, want_commas: usize) -> bool {
    if path_sep(code, i) {
        i += 2; // turbofish `::<`
    }
    if !matches!(code.get(i), Some(t) if t.text == "<") {
        return false; // bare type or `HashMap::new()` — default hasher
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    for t in &code[i..] {
        match t.text {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => commas += 1,
            _ => {}
        }
    }
    commas >= want_commas
}

/// Whether `code[i..i+2]` is the `::` path separator.
fn path_sep(code: &[Token<'_>], i: usize) -> bool {
    matches!((code.get(i), code.get(i + 1)), (Some(a), Some(b)) if a.text == ":" && b.text == ":")
}

/// L4: `Instant::now` / `SystemTime::now` outside bench/parallel.
fn lint_nondeterminism(
    relpath: &str,
    code: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i];
        if (t.text == "Instant" || t.text == "SystemTime")
            && path_sep(code, i + 1)
            && matches!(code.get(i + 3), Some(n) if n.text == "now")
        {
            out.push(Finding {
                lint: Lint::Nondeterminism,
                path: relpath.to_string(),
                line: t.line,
                message: format!(
                    "`{}::now` makes library output nondeterministic — time only in \
                     `ktg-bench` or `ktg_common::parallel`",
                    t.text
                ),
            });
        }
    }
}

/// L5: `lib.rs` must open with `//!` docs and forbid `unsafe_code`.
fn lint_lib_header(
    relpath: &str,
    all_tokens: &[Token<'_>],
    code: &[Token<'_>],
    out: &mut Vec<Finding>,
) {
    let starts_with_docs = all_tokens.first().is_some_and(|t| t.is_inner_doc());
    if !starts_with_docs {
        out.push(Finding {
            lint: Lint::LibHeader,
            path: relpath.to_string(),
            line: 1,
            message: "crate root must start with a `//!` doc header".to_string(),
        });
    }
    let has_forbid = code.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    });
    if !has_forbid {
        out.push(Finding {
            lint: Lint::LibHeader,
            path: relpath.to_string(),
            line: 1,
            message: "crate root must declare `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// L6: to-do markers in comments must carry an issue tag: `TODO(#42)`.
fn lint_todo_tags(relpath: &str, all_tokens: &[Token<'_>], out: &mut Vec<Finding>) {
    for t in all_tokens.iter().filter(|t| t.is_comment()) {
        let bytes = t.text.as_bytes();
        for (off, marker) in find_markers(t.text) {
            let rest = &bytes[off + marker.len()..];
            // Accept `TODO(#123)` / `FIXME(#issue-slug)`: an immediate
            // paren group whose content starts with `#`.
            let tagged = rest.first() == Some(&b'(')
                && rest.get(1) == Some(&b'#')
                && rest.iter().skip(2).take_while(|&&b| b != b')').next().is_some()
                && rest.contains(&b')');
            if !tagged {
                let line = t.line + t.text[..off].matches('\n').count() as u32;
                out.push(Finding {
                    lint: Lint::UntaggedTodo,
                    path: relpath.to_string(),
                    line,
                    message: format!("`{marker}` without an issue tag — write `{marker}(#NN): …`"),
                });
            }
        }
    }
}

/// Word-boundary occurrences of the to-do markers in a comment's text.
fn find_markers(text: &str) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    for marker in ["TODO", "FIXME"] {
        let mut from = 0;
        while let Some(pos) = text[from..].find(marker) {
            let at = from + pos;
            let before_ok = at == 0
                || !text.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && text.as_bytes()[at - 1] != b'_';
            let after = at + marker.len();
            let after_ok = after >= text.len()
                || !text.as_bytes()[after].is_ascii_alphanumeric()
                    && text.as_bytes()[after] != b'_';
            if before_ok && after_ok {
                hits.push((at, marker));
            }
            from = after;
        }
    }
    hits.sort_unstable_by_key(|&(at, _)| at);
    hits
}

/// L1: every dependency in every manifest must be a path/workspace
/// dependency on a sibling crate; the historical registry dependencies
/// must not reappear under any spelling.
pub fn check_manifest(relpath: &str, source: &str) -> Vec<Finding> {
    const BANNED: [&str; 5] = ["crossbeam", "parking_lot", "rand", "proptest", "criterion"];
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    let mut dep_table_name: Option<String> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let section = section.trim_matches('[').trim_matches(']');
            in_dep_section = section.contains("dependencies");
            // `[dependencies.foo]` long-form tables.
            dep_table_name = section
                .rsplit_once("dependencies.")
                .map(|(_, name)| name.trim().to_string())
                .filter(|_| in_dep_section);
            if let Some(name) = &dep_table_name {
                if is_banned(name, &BANNED) {
                    findings.push(banned_finding(relpath, lineno, name));
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        if let Some(table) = &dep_table_name {
            // Inside `[dependencies.foo]`: only path/workspace keys allowed.
            if matches!(key, "version" | "git" | "registry" | "branch" | "tag" | "rev") {
                findings.push(registry_finding(relpath, lineno, table, line));
            }
            continue;
        }
        // Inline entry: `name = …` or `name.workspace = true`.
        let dep_name = key.split('.').next().unwrap_or(key).trim_matches('"');
        if is_banned(dep_name, &BANNED) {
            findings.push(banned_finding(relpath, lineno, dep_name));
            continue;
        }
        let allowed = key.ends_with(".workspace")
            || key.ends_with(".path")
            || value.contains("path")
            || value.contains("workspace");
        let registry_like = value.starts_with('"')
            || value.contains("version")
            || value.contains("git")
            || value.contains("registry");
        if !allowed && registry_like {
            findings.push(registry_finding(relpath, lineno, dep_name, line));
        }
    }
    findings
}

fn is_banned(name: &str, banned: &[&str]) -> bool {
    banned.iter().any(|b| name == *b || name.starts_with(&format!("{b}-")) || name.starts_with(&format!("{b}_")))
}

fn banned_finding(relpath: &str, line: u32, name: &str) -> Finding {
    Finding {
        lint: Lint::RegistryDep,
        path: relpath.to_string(),
        line,
        message: format!(
            "`{name}` was removed in the offline migration and must not return — \
             extend the in-tree substrate instead"
        ),
    }
}

fn registry_finding(relpath: &str, line: u32, name: &str, entry: &str) -> Finding {
    Finding {
        lint: Lint::RegistryDep,
        path: relpath.to_string(),
        line,
        message: format!(
            "`{name}` is not a path dependency (`{entry}`) — every dependency must be \
             a `path`/`workspace` reference to a sibling crate"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path classified as library code for the scoped lints.
    const LIB: &str = "crates/demo/src/algo.rs";

    fn lints_in(path: &str, src: &str) -> Vec<Lint> {
        check_rust_source(path, src).into_iter().map(|f| f.lint).collect()
    }

    // ---- scoping -------------------------------------------------------

    #[test]
    fn scope_classification() {
        assert!(scope_of(LIB).lib_code);
        assert!(scope_of(LIB).deterministic);
        assert!(!scope_of(LIB).lib_root);
        assert!(!scope_of("crates/demo/src/bin/main.rs").lib_code);
        assert!(!scope_of("crates/demo/benches/b.rs").lib_code);
        assert!(!scope_of("crates/demo/tests/it.rs").lib_code);
        assert!(!scope_of("examples/src/basic.rs").lib_code);
        assert!(scope_of("crates/bench/src/runner.rs").lib_code);
        assert!(!scope_of("crates/bench/src/runner.rs").deterministic);
        assert!(!scope_of("crates/common/src/parallel.rs").deterministic);
        assert!(!scope_of("crates/common/src/cancel.rs").deterministic);
        assert!(scope_of("crates/common/src/fault.rs").deterministic);
        assert!(scope_of("crates/demo/src/lib.rs").lib_root);
        assert!(scope_of("tests/src/lib.rs").lib_root);
    }

    // ---- L2 panic-in-lib ----------------------------------------------

    #[test]
    fn unwrap_expect_panic_flagged_in_lib() {
        let src = r##"
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a + b > 9 { panic!("overflow"); }
                a
            }
        "##;
        assert_eq!(
            lints_in(LIB, src),
            vec![Lint::PanicInLib, Lint::PanicInLib, Lint::PanicInLib]
        );
    }

    #[test]
    fn unwrap_inside_string_literal_not_flagged() {
        // The case a grep-based gate gets wrong.
        let src = r##"
            pub fn f() -> &'static str {
                let msg = "never call .unwrap() in library code";
                let other = "x.expect( is also banned, as is panic!(…)";
                msg
            }
        "##;
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn unwrap_inside_comments_not_flagged() {
        let src = r##"
            /// Calls `x.unwrap()` — see the panic! docs.
            // x.expect("no")
            /* block: y.unwrap() */
            pub fn f() {}
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn unwrap_or_family_not_flagged() {
        let src = r##"
            pub fn f(x: Option<u32>) -> u32 {
                x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
            }
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn cfg_test_module_exempt_from_panics() {
        let src = r##"
            pub fn lib_code() {}

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    Some(1).unwrap();
                    panic!("fine in tests");
                }
            }
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn cfg_test_mask_ends_with_the_item() {
        // The unwrap AFTER the #[cfg(test)] fn must still fire.
        let src = r##"
            #[cfg(test)]
            fn helper() { Some(1).unwrap(); }

            pub fn real() { Some(2).unwrap(); }
        "##;
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn bins_and_benches_exempt_from_panics() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(lints_in("crates/demo/src/bin/main.rs", src).is_empty());
        assert!(lints_in("crates/demo/benches/b.rs", src).is_empty());
        assert!(lints_in("tools/gen.rs", src).is_empty());
    }

    // ---- L3 default-hasher --------------------------------------------

    #[test]
    fn default_hasher_path_form_flagged() {
        let src = r##"
            pub type M = std::collections::HashMap<String, u32>;
            pub type S = std::collections::HashSet<u32>;
        "##;
        assert_eq!(lints_in(LIB, src), vec![Lint::DefaultHasher, Lint::DefaultHasher]);
    }

    #[test]
    fn default_hasher_use_group_flagged() {
        let src = "use std::collections::{BTreeMap, HashMap};";
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 1, "BTreeMap is fine: {findings:?}");
        assert_eq!(findings[0].lint, Lint::DefaultHasher);
    }

    #[test]
    fn explicit_hasher_param_allowed() {
        // Exactly how ktg-common defines its Fx aliases.
        let src = r##"
            pub type M = std::collections::HashMap<u32, u32, crate::FxBuildHasher>;
            pub type S = std::collections::HashSet<u32, crate::FxBuildHasher>;
        "##;
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn turbofish_without_hasher_flagged() {
        let src = "pub fn f() { let m = std::collections::HashMap::<u32, u32>::new(); let _ = m; }";
        assert_eq!(lints_in(LIB, src), vec![Lint::DefaultHasher]);
    }

    #[test]
    fn fx_aliases_not_flagged() {
        let src = r##"
            use ktg_common::{FxHashMap, FxHashSet};
            pub fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); let _ = m; }
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    // ---- L4 nondeterminism --------------------------------------------

    #[test]
    fn wall_clock_reads_flagged() {
        let src = r##"
            pub fn f() {
                let t = std::time::Instant::now();
                let s = std::time::SystemTime::now();
                let _ = (t, s);
            }
        "##;
        assert_eq!(lints_in(LIB, src), vec![Lint::Nondeterminism, Lint::Nondeterminism]);
    }

    #[test]
    fn bench_parallel_and_cancel_may_read_the_clock() {
        let src = "pub fn f() { let _ = std::time::Instant::now(); }";
        assert!(lints_in("crates/bench/src/runner.rs", src).is_empty());
        assert!(lints_in("crates/common/src/parallel.rs", src).is_empty());
        assert!(lints_in("crates/common/src/cancel.rs", src).is_empty());
    }

    #[test]
    fn instant_without_now_not_flagged() {
        let src = "pub fn f(t: std::time::Instant) -> std::time::Instant { t }";
        assert!(lints_in(LIB, src).is_empty());
    }

    // ---- L5 lib-header -------------------------------------------------

    #[test]
    fn bare_lib_root_flagged_twice() {
        let findings = check_rust_source("crates/demo/src/lib.rs", "pub fn x() {}");
        assert_eq!(findings.len(), 2, "missing docs AND missing forbid: {findings:?}");
        assert!(findings.iter().all(|f| f.lint == Lint::LibHeader));
    }

    #[test]
    fn proper_lib_root_clean() {
        let src = "//! Demo crate.\n\n#![forbid(unsafe_code)]\n\npub fn x() {}\n";
        assert!(lints_in("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn forbid_without_docs_flagged_once() {
        let src = "#![forbid(unsafe_code)]\npub fn x() {}\n";
        assert_eq!(lints_in("crates/demo/src/lib.rs", src), vec![Lint::LibHeader]);
    }

    #[test]
    fn non_root_files_skip_header_check() {
        assert!(lints_in(LIB, "pub fn x() {}").is_empty());
    }

    // ---- L6 untagged-todo ---------------------------------------------

    #[test]
    fn untagged_markers_flagged() {
        let src = "// TODO: finish this\npub fn f() {}\n/* FIXME later */\n";
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn tagged_markers_accepted() {
        let src = "// TODO(#42): finish this\n/* FIXME(#issue-7): soon */\npub fn f() {}\n";
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn markers_in_strings_and_idents_ignored() {
        let src = r##"
            pub fn f() -> &'static str { "TODO: not a comment" }
            pub fn metodos_todo() {}
            // TODOS is a different word, as is FIXMES
        "##;
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn multiline_block_comment_reports_marker_line() {
        let src = "/* line one\n   TODO here\n*/\npub fn f() {}\n";
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    // ---- L1 registry-dep ----------------------------------------------

    fn manifest(src: &str) -> Vec<Finding> {
        check_manifest("crates/demo/Cargo.toml", src)
    }

    #[test]
    fn path_and_workspace_deps_allowed() {
        let src = r##"
[package]
name = "demo"
version = "0.1.0"

[dependencies]
ktg-common = { path = "../common" }
ktg-graph.workspace = true
ktg-core = { workspace = true }

[dependencies.ktg-index]
path = "../index"
"##;
        assert!(manifest(src).is_empty(), "{:?}", manifest(src));
    }

    #[test]
    fn version_string_dep_flagged() {
        let f = manifest("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::RegistryDep);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn inline_version_and_git_deps_flagged() {
        let src = "[dependencies]\nfoo = { version = \"1\", default-features = false }\nbar = { git = \"https://example.com/bar\" }\n";
        assert_eq!(manifest(src).len(), 2);
    }

    #[test]
    fn dep_table_with_version_flagged() {
        let src = "[dependencies.foo]\nversion = \"1\"\n";
        assert_eq!(manifest(src).len(), 1);
    }

    #[test]
    fn banned_names_flagged_even_as_path_deps() {
        let src = "[dependencies]\nrand = { path = \"../rand\" }\n";
        assert_eq!(manifest(src).len(), 1, "the historical crates must not return at all");
    }

    #[test]
    fn banned_prefixes_flagged() {
        let src = "[dev-dependencies]\nrand_chacha = \"0.3\"\ncrossbeam-channel = \"0.5\"\ncriterion = { version = \"0.5\" }\n";
        let f = manifest(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::RegistryDep));
    }

    #[test]
    fn package_section_version_is_not_a_dependency() {
        let src = "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n";
        assert!(manifest(src).is_empty());
    }

    #[test]
    fn build_dependencies_also_scanned() {
        let src = "[build-dependencies]\ncc = \"1.0\"\n";
        assert_eq!(manifest(src).len(), 1);
    }

    // ---- lint registry --------------------------------------------------

    #[test]
    fn lint_ids_roundtrip() {
        for lint in [
            Lint::RegistryDep,
            Lint::PanicInLib,
            Lint::DefaultHasher,
            Lint::Nondeterminism,
            Lint::LibHeader,
            Lint::UntaggedTodo,
        ] {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
        }
        assert_eq!(Lint::from_id("L9"), None);
        assert_eq!(Lint::from_id("bogus"), None);
    }
}

//! L10: cancel-token threading — every public solve entry point in the
//! `bb`, `dktg` and `serve` modules must accept a `CancelToken` or
//! (transitively) call code that handles one.
//!
//! An *entry point* is a public, non-test `fn` with a body, defined in
//! one of the solver/serving files, whose signature mentions an
//! `…Outcome` type — the workspace convention for "this returns a
//! solver verdict". *Aware* functions mention `CancelToken` in their
//! signature or body; awareness propagates to callers through the call
//! graph (an entry that delegates to `solve_prepared`, which polls the
//! token, is fine). The call graph over-approximates edges, which for
//! this pass can only make an entry *more* likely to count as aware —
//! clean code is never flagged spuriously; the lint exists to catch a
//! brand-new entry point wired around the cancellation web entirely.

use super::{Finding, Lint};
use crate::callgraph::{CallGraph, FnRef};
use crate::lexer::TokenKind;
use crate::parser::Ast;
use std::collections::BTreeSet;

/// Whether L10 applies to functions defined in this file.
pub fn is_entry_file(relpath: &str) -> bool {
    relpath.starts_with("crates/core/src/bb")
        || relpath.starts_with("crates/core/src/dktg")
        || relpath.starts_with("crates/core/src/serve")
}

/// Runs the cancel-threading pass over the whole workspace view.
pub fn lint(paths: &[String], asts: &[Ast<'_>], graph: &CallGraph, out: &mut Vec<Finding>) {
    // Seeds: every function that mentions CancelToken in sig or body.
    let mut seeds = Vec::new();
    for (fi, ast) in asts.iter().enumerate() {
        for (ii, f) in ast.fns.iter().enumerate() {
            let (sig_start, sig_end) = f.sig_range();
            let span_end = f.body.map_or(sig_end.min(ast.tokens.len()), |(_, close)| close + 1);
            let mentions = ast.tokens[sig_start..span_end.min(ast.tokens.len())]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "CancelToken");
            if mentions {
                seeds.push(FnRef { file: fi, item: ii });
            }
        }
    }
    let aware: BTreeSet<FnRef> = graph.callers_closure(&seeds).into_iter().collect();

    for (fi, ast) in asts.iter().enumerate() {
        if !is_entry_file(&paths[fi]) {
            continue;
        }
        for (ii, f) in ast.fns.iter().enumerate() {
            if !f.is_pub || f.in_test || f.body.is_none() {
                continue;
            }
            let (sig_start, sig_end) = f.sig_range();
            let returns_outcome = ast.tokens[sig_start..sig_end.min(ast.tokens.len())]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text.ends_with("Outcome"));
            if !returns_outcome {
                continue;
            }
            if !aware.contains(&FnRef { file: fi, item: ii }) {
                out.push(Finding::new(
                    Lint::CancelThreading,
                    &paths[fi],
                    f.line,
                    format!(
                        "public solve entry point `{}` neither accepts nor forwards a \
                         `CancelToken` — thread the token so shutdown and deadlines can \
                         bound its latency",
                        f.qualified()
                    ),
                ));
            }
        }
    }
}

//! L7: lock discipline — the fixed acquisition order (session →
//! cache-shard → stats-stripe), and no lock acquisition inside a
//! `catch_unwind` closure.
//!
//! The pass walks each non-test function body block by block, tracking
//! `let`-bound guards ([`crate::scopes`]). Acquiring a tier while a
//! guard from a *later* tier is live inverts the global order and is
//! flagged; guards die at end of block, at `drop(guard)`, or when
//! shadowed. Unclassified locks (tier `None`) participate as guards but
//! never trigger the ordering check — the order only constrains the
//! three named tiers.

use super::{Finding, Lint};
use crate::parser::Ast;
use crate::scopes::{self, Guard, LockTier};

/// Runs the lock-discipline pass over one parsed file.
pub fn lint(relpath: &str, ast: &Ast<'_>, out: &mut Vec<Finding>) {
    for f in &ast.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let mut guards: Vec<Guard> = Vec::new();
        walk_block(relpath, ast, open, close, &mut guards, out);
    }
    lint_catch_unwind(relpath, ast, out);
}

/// Walks one `{ … }` block, statement by statement, with the guards
/// live on entry. Guards bound inside die when the block ends.
fn walk_block(
    relpath: &str,
    ast: &Ast<'_>,
    open: usize,
    close: usize,
    guards: &mut Vec<Guard>,
    out: &mut Vec<Finding>,
) {
    let entry_guards = guards.len();
    for stmt in scopes::statements(&ast.tokens, open, close) {
        if let Some(name) = scopes::drops(&ast.tokens, &stmt) {
            guards.retain(|g| g.name != name);
            continue;
        }
        // Acquisitions written at this statement's own level (nested
        // blocks are handled by the recursion below, with the current
        // guard set live).
        let (s, e) = stmt.range;
        let mut stmt_acqs = Vec::new();
        let mut at = s;
        for &(b_open, b_close) in &stmt.blocks {
            stmt_acqs.extend(scopes::acquisitions(&ast.tokens, at, b_open));
            at = b_close + 1;
        }
        stmt_acqs.extend(scopes::acquisitions(&ast.tokens, at, e));

        for acq in &stmt_acqs {
            check_order(relpath, ast, acq, guards, out);
        }
        if let Some(name) = scopes::let_binding(&ast.tokens, &stmt) {
            guards.retain(|g| g.name != name); // shadowing ends the old guard
            if let Some(acq) = stmt_acqs.first() {
                guards.push(Guard { name: name.to_string(), tier: acq.tier, at: acq.at });
            }
        }
        for &(b_open, b_close) in &stmt.blocks {
            walk_block(relpath, ast, b_open, b_close, guards, out);
        }
    }
    guards.truncate(entry_guards);
}

/// Flags `acq` when a live guard holds a later tier.
fn check_order(
    relpath: &str,
    ast: &Ast<'_>,
    acq: &scopes::Acquisition,
    guards: &[Guard],
    out: &mut Vec<Finding>,
) {
    let Some(tier) = acq.tier else { return };
    let Some(worst) = guards
        .iter()
        .filter(|g| g.tier.is_some_and(|gt| gt > tier))
        .max_by_key(|g| g.tier)
    else {
        return;
    };
    let held = worst.tier.map_or("?", LockTier::name);
    out.push(Finding::new(
        Lint::LockDiscipline,
        relpath,
        ast.tokens[acq.at].line,
        format!(
            "acquires the {} lock (`{}`) while the {held} guard `{}` is live — the \
             acquisition order is session → cache-shard → stats-stripe",
            tier.name(),
            acq.receiver,
            worst.name
        ),
    ));
}

/// Flags any lock acquisition written inside a `catch_unwind(…)` call.
fn lint_catch_unwind(relpath: &str, ast: &Ast<'_>, out: &mut Vec<Finding>) {
    let tokens = &ast.tokens;
    for i in 0..tokens.len() {
        if ast.in_test[i]
            || tokens[i].text != "catch_unwind"
            || !matches!(tokens.get(i + 1), Some(p) if p.text == "(")
        {
            continue;
        }
        let mut depth = 0usize;
        let mut close = tokens.len();
        for (j, t) in tokens.iter().enumerate().skip(i + 1) {
            match t.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        for acq in scopes::acquisitions(tokens, i + 2, close) {
            out.push(Finding::new(
                Lint::LockDiscipline,
                relpath,
                tokens[acq.at].line,
                format!(
                    "lock acquisition (`{}`) inside a `catch_unwind` closure — a panic \
                     between acquire and release poisons the lock inside the isolation \
                     boundary; acquire outside and pass the data in",
                    acq.receiver
                ),
            ));
        }
    }
}

//! L1: every dependency in every manifest must be a path/workspace
//! dependency on a sibling crate; the historical registry dependencies
//! must not reappear under any spelling.

use super::{Finding, Lint};

const BANNED: [&str; 5] = ["crossbeam", "parking_lot", "rand", "proptest", "criterion"];

/// Checks one `Cargo.toml`.
pub fn check(relpath: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    let mut dep_table_name: Option<String> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let section = section.trim_matches('[').trim_matches(']');
            in_dep_section = section.contains("dependencies");
            // `[dependencies.foo]` long-form tables.
            dep_table_name = section
                .rsplit_once("dependencies.")
                .map(|(_, name)| name.trim().to_string())
                .filter(|_| in_dep_section);
            if let Some(name) = &dep_table_name {
                if is_banned(name) {
                    findings.push(banned_finding(relpath, lineno, name));
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        if let Some(table) = &dep_table_name {
            // Inside `[dependencies.foo]`: only path/workspace keys allowed.
            if matches!(key, "version" | "git" | "registry" | "branch" | "tag" | "rev") {
                findings.push(registry_finding(relpath, lineno, table, line));
            }
            continue;
        }
        // Inline entry: `name = …` or `name.workspace = true`.
        let dep_name = key.split('.').next().unwrap_or(key).trim_matches('"');
        if is_banned(dep_name) {
            findings.push(banned_finding(relpath, lineno, dep_name));
            continue;
        }
        let allowed = key.ends_with(".workspace")
            || key.ends_with(".path")
            || value.contains("path")
            || value.contains("workspace");
        let registry_like = value.starts_with('"')
            || value.contains("version")
            || value.contains("git")
            || value.contains("registry");
        if !allowed && registry_like {
            findings.push(registry_finding(relpath, lineno, dep_name, line));
        }
    }
    findings
}

fn is_banned(name: &str) -> bool {
    BANNED
        .iter()
        .any(|b| name == *b || name.starts_with(&format!("{b}-")) || name.starts_with(&format!("{b}_")))
}

fn banned_finding(relpath: &str, line: u32, name: &str) -> Finding {
    Finding::new(
        Lint::RegistryDep,
        relpath,
        line,
        format!(
            "`{name}` was removed in the offline migration and must not return — \
             extend the in-tree substrate instead"
        ),
    )
}

fn registry_finding(relpath: &str, line: u32, name: &str, entry: &str) -> Finding {
    Finding::new(
        Lint::RegistryDep,
        relpath,
        line,
        format!(
            "`{name}` is not a path dependency (`{entry}`) — every dependency must be \
             a `path`/`workspace` reference to a sibling crate"
        ),
    )
}

//! L5: `lib.rs` must open with `//!` docs and forbid `unsafe_code`.

use super::{Finding, Lint};
use crate::lexer::Token;

/// Checks the crate root's doc header and `#![forbid(unsafe_code)]`.
pub fn lint(
    relpath: &str,
    all_tokens: &[Token<'_>],
    code: &[Token<'_>],
    out: &mut Vec<Finding>,
) {
    let starts_with_docs = all_tokens.first().is_some_and(|t| t.is_inner_doc());
    if !starts_with_docs {
        out.push(Finding::new(
            Lint::LibHeader,
            relpath,
            1,
            "crate root must start with a `//!` doc header".to_string(),
        ));
    }
    let has_forbid = code.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    });
    if !has_forbid {
        out.push(Finding::new(
            Lint::LibHeader,
            relpath,
            1,
            "crate root must declare `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

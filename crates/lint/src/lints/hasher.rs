//! L3: `std::collections::HashMap`/`HashSet` with the default hasher.
//!
//! The path form is allowed only when its generics name an explicit
//! hasher (three type parameters for maps, two for sets) — that is how
//! `ktg-common` defines the Fx aliases. Imports via a
//! `collections::{...}` use-group are always flagged.

use super::{path_sep, Finding, Lint};
use crate::lexer::Token;

/// Scans the comment-stripped token stream for default-hasher uses.
pub fn lint(relpath: &str, code: &[Token<'_>], in_test: &[bool], out: &mut Vec<Finding>) {
    let flag = |t: &Token<'_>, out: &mut Vec<Finding>| {
        out.push(Finding::new(
            Lint::DefaultHasher,
            relpath,
            t.line,
            format!(
                "std `{}` with the default (SipHash) hasher — use `ktg_common::Fx{}`",
                t.text, t.text
            ),
        ));
    };
    let mut i = 0;
    while i < code.len() {
        if in_test[i] {
            i += 1;
            continue;
        }
        // `collections :: {` use-group: flag HashMap/HashSet inside.
        if code[i].text == "collections" && path_sep(code, i + 1) {
            if matches!(code.get(i + 3), Some(t) if t.text == "{") {
                let mut depth = 0usize;
                let mut j = i + 3;
                while j < code.len() {
                    match code[j].text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "HashMap" | "HashSet" => flag(&code[j], out),
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            // `collections :: HashMap …` path form.
            if let Some(t) = code.get(i + 3) {
                if t.text == "HashMap" || t.text == "HashSet" {
                    let want_commas = if t.text == "HashMap" { 2 } else { 1 };
                    if !has_explicit_hasher(code, i + 4, want_commas) {
                        flag(t, out);
                    }
                    i += 4;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Whether tokens at `i` start generics (`<…>`, optionally preceded by a
/// turbofish `::`) containing at least `want_commas` type-separating
/// commas — i.e. the type names an explicit hasher parameter. Only
/// commas at angle depth 1 and outside any `(…)`/`[…]` count, so a
/// tuple key `HashMap<(u32, u32), V>` contributes one comma, not two.
fn has_explicit_hasher(code: &[Token<'_>], mut i: usize, want_commas: usize) -> bool {
    if path_sep(code, i) {
        i += 2; // turbofish `::<`
    }
    if !matches!(code.get(i), Some(t) if t.text == "<") {
        return false; // bare type or `HashMap::new()` — default hasher
    }
    let mut angle = 0usize;
    let mut inner = 0usize; // `(…)` / `[…]` nesting inside the generics
    let mut commas = 0usize;
    for t in &code[i..] {
        match t.text {
            "<" => angle += 1,
            ">" => {
                angle -= 1;
                if angle == 0 {
                    break;
                }
            }
            "(" | "[" => inner += 1,
            ")" | "]" => inner = inner.saturating_sub(1),
            "," if angle == 1 && inner == 0 => commas += 1,
            _ => {}
        }
    }
    commas >= want_commas
}

//! L4: wall-clock nondeterminism — literal `Instant::now` /
//! `SystemTime::now` tokens, and (via the call graph) library functions
//! that *reach* such a read transitively.
//!
//! The transitive pass seeds from clock reads in deterministic-scope
//! files only: the sanctioned modules (`cancel.rs`, `parallel.rs`,
//! `ktg-bench`) are allowed to read the clock, and calling *them* is
//! the approved pattern — `CancelToken::is_cancelled` must not taint
//! its callers. What the pass catches is a helper inside deterministic
//! scope smuggling a clock read that its callers then launder through
//! an innocent-looking call.

use super::{path_sep, scope_of, Finding, Lint};
use crate::callgraph::{CallGraph, FnRef};
use crate::lexer::Token;
use crate::parser::Ast;
use std::collections::BTreeSet;

/// Literal `Instant::now` / `SystemTime::now` outside the allowlist.
pub fn lint_literal(relpath: &str, code: &[Token<'_>], in_test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i];
        if clock_read_at(code, i) {
            out.push(Finding::new(
                Lint::Nondeterminism,
                relpath,
                t.line,
                format!(
                    "`{}::now` makes library output nondeterministic — time only in \
                     `ktg-bench` or `ktg_common::parallel`",
                    t.text
                ),
            ));
        }
    }
}

/// Whether the token at `i` starts an `Instant::now` / `SystemTime::now`
/// read.
fn clock_read_at(code: &[Token<'_>], i: usize) -> bool {
    let t = code[i];
    (t.text == "Instant" || t.text == "SystemTime")
        && path_sep(code, i + 1)
        && matches!(code.get(i + 3), Some(n) if n.text == "now")
}

/// The transitive pass: flags call sites in deterministic-scope,
/// non-test functions whose callee (provably, per the call graph)
/// contains or reaches a literal clock read in deterministic scope.
pub fn lint_transitive(
    paths: &[String],
    asts: &[Ast<'_>],
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    // Roots: functions in deterministic scope whose body holds a
    // literal clock read (outside #[cfg(test)]).
    let mut roots = Vec::new();
    for (fi, ast) in asts.iter().enumerate() {
        if !scope_of(&paths[fi]).deterministic {
            continue;
        }
        for (ii, f) in ast.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some((open, close)) = f.body else { continue };
            if (open..close).any(|j| !ast.in_test[j] && clock_read_at(&ast.tokens, j)) {
                roots.push(FnRef { file: fi, item: ii });
            }
        }
    }
    if roots.is_empty() {
        return;
    }
    // Only provable chains: taint flows through unambiguous edges, so a
    // `.build()` that *might* be the clock-reading index builder never
    // taints an unrelated caller.
    let tainted: BTreeSet<FnRef> =
        graph.unambiguous_callers_closure(&roots).into_iter().collect();
    let root_set: BTreeSet<FnRef> = roots.into_iter().collect();

    // One finding per (caller, callee-name, line): a tainted callee
    // called from deterministic-scope non-test code. Roots themselves
    // already carry a literal finding at the read site.
    let mut seen = BTreeSet::new();
    for e in &graph.edges {
        if e.ambiguous || !tainted.contains(&e.callee) || root_set.contains(&e.caller) {
            continue;
        }
        let caller_path = &paths[e.caller.file];
        if !scope_of(caller_path).deterministic {
            continue;
        }
        let caller_fn = &asts[e.caller.file].fns[e.caller.item];
        if caller_fn.in_test {
            continue;
        }
        if seen.insert((e.caller, e.name.clone(), e.line)) {
            out.push(Finding::new(
                Lint::Nondeterminism,
                caller_path,
                e.line,
                format!(
                    "`{}` calls `{}`, which transitively reads the wall clock — thread a \
                     `CancelToken`/`Stopwatch` instead of timing in library code",
                    caller_fn.qualified(),
                    e.name
                ),
            ));
        }
    }
}

//! The ten workspace lints.
//!
//! Each lint reports [`Finding`]s against a *relative* path (workspace
//! root = `""`), so results are stable across machines and usable as
//! ratchet-baseline keys. All Rust-source lints run on the token stream
//! of [`crate::lexer`] — never on raw text — so string literals, doc
//! comments and `#[cfg(test)]` modules are classified correctly. The
//! concurrency lints additionally use the item parser
//! ([`crate::parser`]), the scope model ([`crate::scopes`]) and the
//! workspace call graph ([`crate::callgraph`]).
//!
//! | id  | name             | scope                         | rule |
//! |-----|------------------|-------------------------------|------|
//! | L1  | registry-dep     | every `Cargo.toml`            | dependencies must be `path`/`workspace` entries |
//! | L2  | panic-in-lib     | `crates/*/src` minus bins     | no `.unwrap()` / `.expect(` / `panic!` |
//! | L3  | default-hasher   | `crates/*/src` minus bins     | no `std::collections::{HashMap,HashSet}` without explicit hasher |
//! | L4  | nondeterminism   | lib code minus bench/parallel | no `Instant::now` / `SystemTime::now`, directly **or via calls** |
//! | L5  | lib-header       | every `src/lib.rs`            | starts with `//!` docs and declares `#![forbid(unsafe_code)]` |
//! | L6  | untagged-todo    | every `.rs` file              | to-do comments carry an issue tag, e.g. `TODO(#42)` |
//! | L7  | lock-discipline  | library code                  | locks acquired in tier order (session → cache shard → stats stripe); none inside `catch_unwind` |
//! | L8  | atomic-ordering  | library code                  | every atomic `Ordering::` use matches `tools/atomics-allowlist.txt` |
//! | L9  | fault-placement  | library code                  | `fault::inject`/`fault::recoverable` precede shared-state writes in their block |
//! | L10 | cancel-threading | `bb` / `dktg` / `serve`       | every `pub fn` solve entry point accepts or forwards a `CancelToken` |
//!
//! `#[cfg(test)]` items are exempt from L2–L4 and L7–L9: test code may
//! unwrap, time things, and lock in whatever order reproduces a bug.

pub mod atomics;
pub mod cancel;
pub mod clock;
pub mod faults;
pub mod hasher;
pub mod header;
pub mod locks;
pub mod manifest;
pub mod panics;
pub mod todo;

use crate::callgraph::CallGraph;
use crate::lexer::{self, Token};
use crate::parser::{self, Ast};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one of the ten lints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// L1: registry (non-path) dependency in a manifest.
    RegistryDep,
    /// L2: `unwrap`/`expect`/`panic!` in library code.
    PanicInLib,
    /// L3: default-hasher std `HashMap`/`HashSet` in library code.
    DefaultHasher,
    /// L4: wall-clock nondeterminism outside the sanctioned modules,
    /// direct or reached through the call graph.
    Nondeterminism,
    /// L5: `lib.rs` missing its doc header or `#![forbid(unsafe_code)]`.
    LibHeader,
    /// L6: to-do/fix-me comment without an issue tag.
    UntaggedTodo,
    /// L7: lock acquired against the fixed tier order, or inside a
    /// `catch_unwind` closure.
    LockDiscipline,
    /// L8: atomic memory ordering not covered by the committed
    /// per-site allowlist.
    AtomicOrdering,
    /// L9: fault-injection site placed after a shared-state write in
    /// its enclosing block.
    FaultPlacement,
    /// L10: solve entry point that neither accepts nor forwards a
    /// `CancelToken`.
    CancelThreading,
}

/// Every lint, in id order — the registry iterated by `--list` and
/// `--explain`.
pub const ALL_LINTS: [Lint; 10] = [
    Lint::RegistryDep,
    Lint::PanicInLib,
    Lint::DefaultHasher,
    Lint::Nondeterminism,
    Lint::LibHeader,
    Lint::UntaggedTodo,
    Lint::LockDiscipline,
    Lint::AtomicOrdering,
    Lint::FaultPlacement,
    Lint::CancelThreading,
];

impl Lint {
    /// Stable short id used in output and the ratchet baseline.
    pub fn id(self) -> &'static str {
        match self {
            Lint::RegistryDep => "L1",
            Lint::PanicInLib => "L2",
            Lint::DefaultHasher => "L3",
            Lint::Nondeterminism => "L4",
            Lint::LibHeader => "L5",
            Lint::UntaggedTodo => "L6",
            Lint::LockDiscipline => "L7",
            Lint::AtomicOrdering => "L8",
            Lint::FaultPlacement => "L9",
            Lint::CancelThreading => "L10",
        }
    }

    /// Parses a baseline id back into a lint.
    pub fn from_id(id: &str) -> Option<Lint> {
        ALL_LINTS.into_iter().find(|l| l.id() == id)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::RegistryDep => "registry-dep",
            Lint::PanicInLib => "panic-in-lib",
            Lint::DefaultHasher => "default-hasher",
            Lint::Nondeterminism => "nondeterminism",
            Lint::LibHeader => "lib-header",
            Lint::UntaggedTodo => "untagged-todo",
            Lint::LockDiscipline => "lock-discipline",
            Lint::AtomicOrdering => "atomic-ordering",
            Lint::FaultPlacement => "fault-placement",
            Lint::CancelThreading => "cancel-threading",
        }
    }

    /// The rule and its rationale, printed by `ktg-lint --explain`.
    pub fn explain(self) -> &'static str {
        match self {
            Lint::RegistryDep => {
                "Every dependency in every Cargo.toml must be a `path`/`workspace` \
                 reference to a sibling crate, and the historically removed registry \
                 crates (crossbeam, parking_lot, rand, proptest, criterion) must not \
                 reappear under any spelling.\n\nWhy: the workspace builds fully \
                 offline; the in-tree substrate (ktg_common::rng/::parallel, \
                 ktg_bench::harness) replaces them."
            }
            Lint::PanicInLib => {
                "Library code must not call `.unwrap()`, `.expect(…)` or `panic!`; \
                 surface failures as `KtgError` results or restructure so the failure \
                 is impossible.\n\nWhy: the serving stack isolates per-item panics \
                 with catch_unwind, but a panic that never happens is cheaper than \
                 one that is absorbed — and a Result forces the caller to decide."
            }
            Lint::DefaultHasher => {
                "std `HashMap`/`HashSet` with the default SipHash hasher are banned \
                 in library code; use the `ktg_common::FxHashMap`/`FxHashSet` \
                 aliases.\n\nWhy: hashing sits on hot paths (keyword masks, memo \
                 keys); Fx is several times faster and deterministic across runs."
            }
            Lint::Nondeterminism => {
                "Library code outside `ktg-bench`, `ktg_common::parallel` and \
                 `ktg_common::cancel` must not read the wall clock — neither a \
                 literal `Instant::now()`/`SystemTime::now()` nor a call chain that \
                 reaches one (the call-graph makes this transitive).\n\nWhy: every \
                 answer must be byte-identical across threads, caches and faults; \
                 deadlines flow through `CancelToken` (cancel.rs), whose \
                 nondeterminism is openly tagged `Degraded`."
            }
            Lint::LibHeader => {
                "Every crate root (`src/lib.rs`) must start with `//!` module docs \
                 and declare `#![forbid(unsafe_code)]`.\n\nWhy: the workspace's \
                 exactness story depends on safe Rust; the doc header keeps each \
                 crate's role discoverable."
            }
            Lint::UntaggedTodo => {
                "To-do/fix-me comments must carry an issue tag: `TODO(#42): …`.\n\n\
                 Why: untracked debt disappears; a tag makes every deferral \
                 auditable."
            }
            Lint::LockDiscipline => {
                "Locks must be acquired in the fixed tier order — session RwLock \
                 (tier 0) before cache-shard Mutex (tier 1) before stats stripe \
                 (tier 2). Acquiring an earlier tier while a later-tier guard is \
                 live is flagged, as is any lock acquisition written directly \
                 inside a `catch_unwind` closure.\n\nWhy: a fixed global order makes \
                 deadlock impossible by construction, and a poisoned-while-panicking \
                 lock inside the isolation boundary would turn one bad query into a \
                 stuck server. Tiers are classified syntactically from receiver \
                 identifiers (session / shard·cache / stripe·stats·latency)."
            }
            Lint::AtomicOrdering => {
                "Every atomic `Ordering::` use in library code must match a \
                 committed per-site entry in tools/atomics-allowlist.txt \
                 (`<path> <fn> <method> <ordering>`); regenerate with \
                 `ktg-lint --update-atomics` after review.\n\nWhy: orderings are \
                 chosen once, under review — e.g. `SharedThreshold::fetch_max` \
                 is AcqRel so a pruning floor published by one worker is seen by \
                 all. A silent weakening to Relaxed would be a correctness bug \
                 no test reliably catches; this lint turns it into a diff."
            }
            Lint::FaultPlacement => {
                "`fault::inject(…)` / `fault::recoverable(…)` calls must precede \
                 any write through a lock guard or `self` field in their enclosing \
                 block.\n\nWhy: the fault registry's recovery is byte-identical \
                 only because a fault can fire before shared state mutates — a \
                 site placed after a write would make recovery observe (and \
                 retry on top of) a half-applied mutation."
            }
            Lint::CancelThreading => {
                "Every `pub fn` solve entry point in `ktg_core::bb`, \
                 `ktg_core::dktg` and `ktg_core::serve` (a public function whose \
                 return type carries an `…Outcome`) must accept a `CancelToken` \
                 or (transitively) call code that polls one.\n\nWhy: bounded \
                 latency is a serving invariant; an entry point outside the \
                 cancellation web would hang a drain/shutdown on one \
                 pathological query."
            }
        }
    }
}

/// One lint violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
    /// The normalized source line (filled by [`analyze`]; empty for
    /// file-level findings).
    pub snippet: String,
    /// Per-violation fingerprint over lint + path + snippet (filled by
    /// [`analyze`]) — the ratchet-baseline key.
    pub fingerprint: String,
}

impl Finding {
    /// A finding with its fingerprint not yet attached.
    pub fn new(lint: Lint, path: &str, line: u32, message: String) -> Finding {
        Finding {
            lint,
            path: path.to_string(),
            line,
            message,
            snippet: String::new(),
            fingerprint: String::new(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path,
            self.line,
            self.lint.id(),
            self.lint.name(),
            self.message
        )
    }
}

/// How the path-based scoping classifies a Rust file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileScope {
    /// Library code: under `crates/*/src`, not a `src/bin` target.
    /// L2, L3 and L7–L9 apply here.
    pub lib_code: bool,
    /// L4 applies: lib code outside `crates/bench`,
    /// `crates/common/src/parallel.rs`, and
    /// `crates/common/src/cancel.rs` (the one module allowed to read
    /// the wall clock — every deadline in the workspace flows through
    /// its token, so confining clock reads there keeps the rest of the
    /// tree deterministic by construction).
    pub deterministic: bool,
    /// L5 applies: the file is a crate root `src/lib.rs`.
    pub lib_root: bool,
}

/// Classifies a workspace-relative path (always `/`-separated).
pub fn scope_of(relpath: &str) -> FileScope {
    let lib_code = relpath.starts_with("crates/")
        && relpath.contains("/src/")
        && !relpath.contains("/src/bin/")
        && !relpath.contains("/benches/")
        && !relpath.contains("/tests/");
    let deterministic = lib_code
        && !relpath.starts_with("crates/bench/")
        && relpath != "crates/common/src/parallel.rs"
        && relpath != "crates/common/src/cancel.rs";
    let lib_root = relpath.ends_with("src/lib.rs");
    FileScope { lib_code, deterministic, lib_root }
}

/// One source file handed to [`analyze`].
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// Runs the token-level source lints (L2–L6) over one Rust file.
///
/// The syntactic passes (L7–L9) and the workspace passes (transitive
/// L4, L10) run from [`analyze`], which sees every file at once.
pub fn check_rust_source(relpath: &str, source: &str) -> Vec<Finding> {
    let scope = scope_of(relpath);
    let all_tokens = lexer::tokenize(source);
    let code: Vec<Token<'_>> = all_tokens.iter().copied().filter(|t| !t.is_comment()).collect();
    let in_test = parser::cfg_test_mask(&code);

    let mut findings = Vec::new();
    if scope.lib_code {
        panics::lint(relpath, &code, &in_test, &mut findings);
        hasher::lint(relpath, &code, &in_test, &mut findings);
    }
    if scope.deterministic {
        clock::lint_literal(relpath, &code, &in_test, &mut findings);
    }
    if scope.lib_root {
        header::lint(relpath, &all_tokens, &code, &mut findings);
    }
    todo::lint(relpath, &all_tokens, &mut findings);
    findings.sort_by_key(|a| (a.line, a.lint));
    findings
}

/// Runs every lint over a whole workspace view: the token passes per
/// file, the syntactic concurrency passes per library file, and the
/// call-graph passes across all of them; then attaches snippets and
/// fingerprints. This is the one entry point both `scan_workspace` and
/// the fixture-corpus tests use.
pub fn analyze(
    sources: &[SourceFile],
    manifests: &[SourceFile],
    atomics_allowlist: &atomics::Allowlist,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut paths: Vec<String> = Vec::with_capacity(sources.len());
    let mut asts: Vec<Ast<'_>> = Vec::with_capacity(sources.len());
    for sf in sources {
        findings.extend(check_rust_source(&sf.path, &sf.text));
        paths.push(sf.path.clone());
        asts.push(parser::parse(&sf.text));
    }
    for (i, sf) in sources.iter().enumerate() {
        if scope_of(&sf.path).lib_code {
            locks::lint(&sf.path, &asts[i], &mut findings);
            atomics::lint(&sf.path, &asts[i], atomics_allowlist, &mut findings);
            faults::lint(&sf.path, &asts[i], &mut findings);
        }
    }
    let graph = CallGraph::build(&paths, &asts);
    clock::lint_transitive(&paths, &asts, &graph, &mut findings);
    cancel::lint(&paths, &asts, &graph, &mut findings);

    for mf in manifests {
        findings.extend(manifest::check(&mf.path, &mf.text));
    }

    let text_of: BTreeMap<&str, &str> = sources
        .iter()
        .chain(manifests.iter())
        .map(|sf| (sf.path.as_str(), sf.text.as_str()))
        .collect();
    for f in &mut findings {
        f.snippet = text_of
            .get(f.path.as_str())
            .and_then(|text| snippet_at(text, f.line))
            .unwrap_or_default();
        f.fingerprint = fingerprint(f.lint, &f.path, &f.snippet);
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    findings
}

/// The normalized source line a finding anchors to: trimmed, internal
/// whitespace collapsed, capped — so reformatting within a line (or a
/// pure re-indent) keeps the fingerprint stable.
pub fn snippet_at(source: &str, line: u32) -> Option<String> {
    if line == 0 {
        return None;
    }
    let raw = source.lines().nth(line as usize - 1)?;
    let mut out = String::with_capacity(raw.len().min(160));
    let mut last_space = true; // leading whitespace drops
    for ch in raw.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(ch);
            last_space = false;
        }
        if out.len() >= 160 {
            break;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    Some(out)
}

/// The per-violation fingerprint: FNV-1a 64 over lint id, path and
/// normalized snippet, rendered as 16 hex digits. Line numbers are
/// deliberately excluded so unrelated edits above a violation do not
/// churn the baseline.
pub fn fingerprint(lint: Lint, path: &str, snippet: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [lint.id(), "\u{0}", path, "\u{0}", snippet] {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Whether `code[i..i+2]` is the `::` path separator.
pub(crate) fn path_sep(code: &[Token<'_>], i: usize) -> bool {
    matches!((code.get(i), code.get(i + 1)), (Some(a), Some(b)) if a.text == ":" && b.text == ":")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path classified as library code for the scoped lints.
    const LIB: &str = "crates/demo/src/algo.rs";

    fn lints_in(path: &str, src: &str) -> Vec<Lint> {
        check_rust_source(path, src).into_iter().map(|f| f.lint).collect()
    }

    // ---- scoping -------------------------------------------------------

    #[test]
    fn scope_classification() {
        assert!(scope_of(LIB).lib_code);
        assert!(scope_of(LIB).deterministic);
        assert!(!scope_of(LIB).lib_root);
        assert!(!scope_of("crates/demo/src/bin/main.rs").lib_code);
        assert!(!scope_of("crates/demo/benches/b.rs").lib_code);
        assert!(!scope_of("crates/demo/tests/it.rs").lib_code);
        assert!(!scope_of("examples/src/basic.rs").lib_code);
        assert!(scope_of("crates/bench/src/runner.rs").lib_code);
        assert!(!scope_of("crates/bench/src/runner.rs").deterministic);
        assert!(!scope_of("crates/common/src/parallel.rs").deterministic);
        assert!(!scope_of("crates/common/src/cancel.rs").deterministic);
        assert!(scope_of("crates/common/src/fault.rs").deterministic);
        assert!(scope_of("crates/demo/src/lib.rs").lib_root);
        assert!(scope_of("tests/src/lib.rs").lib_root);
    }

    // ---- L2 panic-in-lib ----------------------------------------------

    #[test]
    fn unwrap_expect_panic_flagged_in_lib() {
        let src = r##"
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a + b > 9 { panic!("overflow"); }
                a
            }
        "##;
        assert_eq!(
            lints_in(LIB, src),
            vec![Lint::PanicInLib, Lint::PanicInLib, Lint::PanicInLib]
        );
    }

    #[test]
    fn unwrap_inside_string_literal_not_flagged() {
        // The case a grep-based gate gets wrong.
        let src = r##"
            pub fn f() -> &'static str {
                let msg = "never call .unwrap() in library code";
                let other = "x.expect( is also banned, as is panic!(…)";
                msg
            }
        "##;
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn unwrap_inside_comments_not_flagged() {
        let src = r##"
            /// Calls `x.unwrap()` — see the panic! docs.
            // x.expect("no")
            /* block: y.unwrap() */
            pub fn f() {}
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn unwrap_or_family_not_flagged() {
        let src = r##"
            pub fn f(x: Option<u32>) -> u32 {
                x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
            }
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn cfg_test_module_exempt_from_panics() {
        let src = r##"
            pub fn lib_code() {}

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    Some(1).unwrap();
                    panic!("fine in tests");
                }
            }
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn cfg_test_mask_ends_with_the_item() {
        // The unwrap AFTER the #[cfg(test)] fn must still fire.
        let src = r##"
            #[cfg(test)]
            fn helper() { Some(1).unwrap(); }

            pub fn real() { Some(2).unwrap(); }
        "##;
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn cfg_not_test_items_still_linted() {
        // `#[cfg(not(test))]` is release-only code — the opposite of
        // test-gated. The purely textual mask used to exempt it.
        let src = r##"
            #[cfg(not(test))]
            pub fn release_path() { Some(1).unwrap(); }
        "##;
        assert_eq!(lints_in(LIB, src), vec![Lint::PanicInLib]);
    }

    #[test]
    fn bins_and_benches_exempt_from_panics() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(lints_in("crates/demo/src/bin/main.rs", src).is_empty());
        assert!(lints_in("crates/demo/benches/b.rs", src).is_empty());
        assert!(lints_in("tools/gen.rs", src).is_empty());
    }

    // ---- L3 default-hasher --------------------------------------------

    #[test]
    fn default_hasher_path_form_flagged() {
        let src = r##"
            pub type M = std::collections::HashMap<String, u32>;
            pub type S = std::collections::HashSet<u32>;
        "##;
        assert_eq!(lints_in(LIB, src), vec![Lint::DefaultHasher, Lint::DefaultHasher]);
    }

    #[test]
    fn default_hasher_use_group_flagged() {
        let src = "use std::collections::{BTreeMap, HashMap};";
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 1, "BTreeMap is fine: {findings:?}");
        assert_eq!(findings[0].lint, Lint::DefaultHasher);
    }

    #[test]
    fn explicit_hasher_param_allowed() {
        // Exactly how ktg-common defines its Fx aliases.
        let src = r##"
            pub type M = std::collections::HashMap<u32, u32, crate::FxBuildHasher>;
            pub type S = std::collections::HashSet<u32, crate::FxBuildHasher>;
        "##;
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn tuple_key_without_hasher_flagged() {
        // The comma inside the tuple key fooled the old comma counter
        // into seeing three type parameters.
        let src = "pub type M = std::collections::HashMap<(u32, u32), u32>;";
        assert_eq!(lints_in(LIB, src), vec![Lint::DefaultHasher]);
    }

    #[test]
    fn tuple_key_with_hasher_allowed() {
        let src =
            "pub type M = std::collections::HashMap<(u32, u32), u32, crate::FxBuildHasher>;";
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn turbofish_without_hasher_flagged() {
        let src = "pub fn f() { let m = std::collections::HashMap::<u32, u32>::new(); let _ = m; }";
        assert_eq!(lints_in(LIB, src), vec![Lint::DefaultHasher]);
    }

    #[test]
    fn fx_aliases_not_flagged() {
        let src = r##"
            use ktg_common::{FxHashMap, FxHashSet};
            pub fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); let _ = m; }
        "##;
        assert!(lints_in(LIB, src).is_empty());
    }

    // ---- L4 nondeterminism --------------------------------------------

    #[test]
    fn wall_clock_reads_flagged() {
        let src = r##"
            pub fn f() {
                let t = std::time::Instant::now();
                let s = std::time::SystemTime::now();
                let _ = (t, s);
            }
        "##;
        assert_eq!(lints_in(LIB, src), vec![Lint::Nondeterminism, Lint::Nondeterminism]);
    }

    #[test]
    fn bench_parallel_and_cancel_may_read_the_clock() {
        let src = "pub fn f() { let _ = std::time::Instant::now(); }";
        assert!(lints_in("crates/bench/src/runner.rs", src).is_empty());
        assert!(lints_in("crates/common/src/parallel.rs", src).is_empty());
        assert!(lints_in("crates/common/src/cancel.rs", src).is_empty());
    }

    #[test]
    fn instant_without_now_not_flagged() {
        let src = "pub fn f(t: std::time::Instant) -> std::time::Instant { t }";
        assert!(lints_in(LIB, src).is_empty());
    }

    // ---- L5 lib-header -------------------------------------------------

    #[test]
    fn bare_lib_root_flagged_twice() {
        let findings = check_rust_source("crates/demo/src/lib.rs", "pub fn x() {}");
        assert_eq!(findings.len(), 2, "missing docs AND missing forbid: {findings:?}");
        assert!(findings.iter().all(|f| f.lint == Lint::LibHeader));
    }

    #[test]
    fn proper_lib_root_clean() {
        let src = "//! Demo crate.\n\n#![forbid(unsafe_code)]\n\npub fn x() {}\n";
        assert!(lints_in("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn forbid_without_docs_flagged_once() {
        let src = "#![forbid(unsafe_code)]\npub fn x() {}\n";
        assert_eq!(lints_in("crates/demo/src/lib.rs", src), vec![Lint::LibHeader]);
    }

    #[test]
    fn non_root_files_skip_header_check() {
        assert!(lints_in(LIB, "pub fn x() {}").is_empty());
    }

    // ---- L6 untagged-todo ---------------------------------------------

    #[test]
    fn untagged_markers_flagged() {
        let src = "// TODO: finish this\npub fn f() {}\n/* FIXME later */\n";
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn tagged_markers_accepted() {
        let src = "// TODO(#42): finish this\n/* FIXME(#issue-7): soon */\npub fn f() {}\n";
        assert!(lints_in(LIB, src).is_empty());
    }

    #[test]
    fn markers_in_strings_and_idents_ignored() {
        let src = r##"
            pub fn f() -> &'static str { "TODO: not a comment" }
            pub fn metodos_todo() {}
            // TODOS is a different word, as is FIXMES
        "##;
        assert!(lints_in(LIB, src).is_empty(), "{:?}", check_rust_source(LIB, src));
    }

    #[test]
    fn multiline_block_comment_reports_marker_line() {
        let src = "/* line one\n   TODO here\n*/\npub fn f() {}\n";
        let findings = check_rust_source(LIB, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    // ---- L1 registry-dep ----------------------------------------------

    fn check_toml(src: &str) -> Vec<Finding> {
        manifest::check("crates/demo/Cargo.toml", src)
    }

    #[test]
    fn path_and_workspace_deps_allowed() {
        let src = r##"
[package]
name = "demo"
version = "0.1.0"

[dependencies]
ktg-common = { path = "../common" }
ktg-graph.workspace = true
ktg-core = { workspace = true }

[dependencies.ktg-index]
path = "../index"
"##;
        assert!(check_toml(src).is_empty(), "{:?}", check_toml(src));
    }

    #[test]
    fn version_string_dep_flagged() {
        let f = check_toml("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::RegistryDep);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn inline_version_and_git_deps_flagged() {
        let src = "[dependencies]\nfoo = { version = \"1\", default-features = false }\nbar = { git = \"https://example.com/bar\" }\n";
        assert_eq!(check_toml(src).len(), 2);
    }

    #[test]
    fn dep_table_with_version_flagged() {
        let src = "[dependencies.foo]\nversion = \"1\"\n";
        assert_eq!(check_toml(src).len(), 1);
    }

    #[test]
    fn banned_names_flagged_even_as_path_deps() {
        let src = "[dependencies]\nrand = { path = \"../rand\" }\n";
        assert_eq!(check_toml(src).len(), 1, "the historical crates must not return at all");
    }

    #[test]
    fn banned_prefixes_flagged() {
        let src = "[dev-dependencies]\nrand_chacha = \"0.3\"\ncrossbeam-channel = \"0.5\"\ncriterion = { version = \"0.5\" }\n";
        let f = check_toml(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.lint == Lint::RegistryDep));
    }

    #[test]
    fn package_section_version_is_not_a_dependency() {
        let src = "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n";
        assert!(check_toml(src).is_empty());
    }

    #[test]
    fn build_dependencies_also_scanned() {
        let src = "[build-dependencies]\ncc = \"1.0\"\n";
        assert_eq!(check_toml(src).len(), 1);
    }

    // ---- lint registry --------------------------------------------------

    #[test]
    fn lint_ids_roundtrip() {
        for lint in ALL_LINTS {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
            assert!(!lint.explain().is_empty());
        }
        assert_eq!(Lint::from_id("L11"), None);
        assert_eq!(Lint::from_id("bogus"), None);
    }

    // ---- fingerprints ---------------------------------------------------

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint(Lint::PanicInLib, "a.rs", "x.unwrap();");
        assert_eq!(a, fingerprint(Lint::PanicInLib, "a.rs", "x.unwrap();"));
        assert_ne!(a, fingerprint(Lint::PanicInLib, "b.rs", "x.unwrap();"));
        assert_ne!(a, fingerprint(Lint::Nondeterminism, "a.rs", "x.unwrap();"));
        assert_ne!(a, fingerprint(Lint::PanicInLib, "a.rs", "y.unwrap();"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn snippets_normalize_whitespace() {
        let src = "fn a() {}\n    let x =\t 1;   \nfn c() {}";
        assert_eq!(snippet_at(src, 2).unwrap(), "let x = 1;");
        assert_eq!(snippet_at(src, 0), None, "file-level findings have no snippet");
        assert_eq!(snippet_at(src, 99), None);
    }

    // ---- analyze orchestration ------------------------------------------

    #[test]
    fn analyze_attaches_fingerprints_and_sorts() {
        let sources = vec![SourceFile {
            path: LIB.to_string(),
            text: "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        }];
        let manifests = vec![SourceFile {
            path: "crates/demo/Cargo.toml".to_string(),
            text: "[dependencies]\nserde = \"1.0\"\n".to_string(),
        }];
        let findings = analyze(&sources, &manifests, &atomics::Allowlist::default());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.fingerprint.len() == 16));
        assert!(findings.iter().all(|f| !f.snippet.is_empty()));
        // Sorted by path: the manifest (Cargo.toml) precedes src/algo.rs.
        assert_eq!(findings[0].lint, Lint::RegistryDep);
        assert_eq!(findings[1].lint, Lint::PanicInLib);
    }
}

//! L9: fault-site placement — `fault::inject(…)` /
//! `fault::recoverable(…)` must precede any write through a lock guard
//! or a `self` field in their enclosing block.
//!
//! The fault registry's recovery story is byte-identical *because* a
//! fault fires before shared state mutates; a site placed after a
//! write would let recovery observe a half-applied mutation. The pass
//! walks each block in statement order, remembering the first
//! shared-state write; a fault site after it is flagged. Nested blocks
//! start with a clean slate — a write inside an `if` arm does not
//! poison a fault site in the next statement's straight-line code, but
//! the guard set stays live across the recursion.

use super::{Finding, Lint};
use crate::lexer::TokenKind;
use crate::parser::Ast;
use crate::scopes;

/// Mutating container methods that count as writes when called on
/// `self`-rooted or guard-rooted receivers.
const MUTATORS: [&str; 9] =
    ["push", "insert", "remove", "clear", "extend", "push_back", "pop", "truncate", "set"];

/// Files the pass never runs on: the registry itself places faults.
const EXEMPT: [&str; 1] = ["crates/common/src/fault.rs"];

/// Runs the fault-placement pass over one parsed file.
pub fn lint(relpath: &str, ast: &Ast<'_>, out: &mut Vec<Finding>) {
    if EXEMPT.contains(&relpath) {
        return;
    }
    for f in &ast.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let mut guards = Vec::new();
        walk_block(relpath, ast, open, close, &mut guards, out);
    }
}

fn walk_block(
    relpath: &str,
    ast: &Ast<'_>,
    open: usize,
    close: usize,
    guards: &mut Vec<String>,
    out: &mut Vec<Finding>,
) {
    let entry_guards = guards.len();
    let mut first_write: Option<u32> = None;
    for stmt in scopes::statements(&ast.tokens, open, close) {
        if let Some(name) = scopes::drops(&ast.tokens, &stmt) {
            guards.retain(|g| g != name);
            continue;
        }
        // Fault sites are checked against writes that happened EARLIER
        // in this block, so scan for the site before recording this
        // statement's own write (`fault::inject(); *g = x;` is the
        // correct order even within one statement pair).
        if let Some((line, name)) = fault_site(ast, &stmt) {
            if let Some(wline) = first_write {
                out.push(Finding::new(
                    Lint::FaultPlacement,
                    relpath,
                    line,
                    format!(
                        "`fault::{name}` after a shared-state write (line {wline}) — fault \
                         sites must precede the writes they make recoverable"
                    ),
                ));
            }
        }
        if first_write.is_none() {
            if let Some(line) = write_in_stmt(ast, &stmt, guards) {
                first_write = Some(line);
            }
        }
        if let Some(name) = scopes::let_binding(&ast.tokens, &stmt) {
            guards.retain(|g| g != name);
            let (s, e) = stmt.range;
            if !scopes::acquisitions(&ast.tokens, s, e).is_empty() {
                guards.push(name.to_string());
            }
        }
        for &(b_open, b_close) in &stmt.blocks {
            walk_block(relpath, ast, b_open, b_close, guards, out);
        }
    }
    guards.truncate(entry_guards);
}

/// A `fault :: inject|recoverable (` call in the statement, if any.
fn fault_site(ast: &Ast<'_>, stmt: &scopes::Statement) -> Option<(u32, &'static str)> {
    let tokens = &ast.tokens;
    let (s, e) = stmt.range;
    for i in s..e.min(tokens.len()) {
        if tokens[i].text == "fault"
            && tokens[i].kind == TokenKind::Ident
            && super::path_sep(tokens, i + 1)
        {
            match tokens.get(i + 3).map(|t| t.text) {
                Some("inject") => return Some((tokens[i].line, "inject")),
                Some("recoverable") => return Some((tokens[i].line, "recoverable")),
                _ => {}
            }
        }
    }
    None
}

/// The line of a shared-state write at this statement's own level
/// (nested blocks excluded — the recursion sees those).
fn write_in_stmt(ast: &Ast<'_>, stmt: &scopes::Statement, guards: &[String]) -> Option<u32> {
    let tokens = &ast.tokens;
    let (s, e) = stmt.range;
    let is_let = tokens.get(s).is_some_and(|t| t.text == "let");
    let in_nested = |i: usize| stmt.blocks.iter().any(|&(o, c)| o <= i && i <= c);
    // First identifier of the statement names the written place's root:
    // `self.x = …`, `guard.field = …`, `*guard = …`, `(*guard) = …`.
    let rooted = || -> bool {
        for t in &tokens[s..e.min(tokens.len())] {
            if t.kind == TokenKind::Ident {
                return t.text == "self" || guards.iter().any(|g| g == t.text);
            }
            if !matches!(t.text, "*" | "&" | "(") {
                return false;
            }
        }
        false
    };
    for i in s..e.min(tokens.len()) {
        if in_nested(i) {
            continue;
        }
        let t = tokens[i];
        // Assignment: a lone `=` or a `+=`/`<<=`-style compound, never
        // the comparison/arrow pairs `==` `!=` `<=` `>=` `=>`, and not
        // a `let` initializer (a fresh local is not shared state).
        if t.text == "=" && !is_let {
            let next = tokens.get(i + 1).map(|t| t.text);
            let prev = if i > s { tokens[i - 1].text } else { "" };
            let prev2 = if i > s + 1 { tokens[i - 2].text } else { "" };
            let shift_assign = (prev == "<" || prev == ">") && prev2 == prev;
            let comparison = next == Some("=")
                || next == Some(">")
                || prev == "="
                || prev == "!"
                || ((prev == "<" || prev == ">") && !shift_assign);
            if !comparison && rooted() {
                return Some(t.line);
            }
        }
        // Mutating method on a self/guard-rooted receiver.
        if t.kind == TokenKind::Ident
            && MUTATORS.contains(&t.text)
            && i > s
            && tokens[i - 1].text == "."
            && matches!(tokens.get(i + 1), Some(p) if p.text == "(")
            && rooted()
        {
            return Some(t.line);
        }
    }
    None
}

//! L6: to-do markers in comments must carry an issue tag: `TODO(#42)`.

use super::{Finding, Lint};
use crate::lexer::Token;

/// Scans comment tokens for untagged to-do markers.
pub fn lint(relpath: &str, all_tokens: &[Token<'_>], out: &mut Vec<Finding>) {
    for t in all_tokens.iter().filter(|t| t.is_comment()) {
        let bytes = t.text.as_bytes();
        for (off, marker) in find_markers(t.text) {
            let rest = &bytes[off + marker.len()..];
            // Accept `TODO(#123)` / `FIXME(#issue-slug)`: an immediate
            // paren group whose content starts with `#`.
            let tagged = rest.first() == Some(&b'(')
                && rest.get(1) == Some(&b'#')
                && rest.iter().skip(2).take_while(|&&b| b != b')').next().is_some()
                && rest.contains(&b')');
            if !tagged {
                let line = t.line + t.text[..off].matches('\n').count() as u32;
                out.push(Finding::new(
                    Lint::UntaggedTodo,
                    relpath,
                    line,
                    format!("`{marker}` without an issue tag — write `{marker}(#NN): …`"),
                ));
            }
        }
    }
}

/// Word-boundary occurrences of the to-do markers in a comment's text.
fn find_markers(text: &str) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    for marker in ["TODO", "FIXME"] {
        let mut from = 0;
        while let Some(pos) = text[from..].find(marker) {
            let at = from + pos;
            let before_ok = at == 0
                || !text.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && text.as_bytes()[at - 1] != b'_';
            let after = at + marker.len();
            let after_ok = after >= text.len()
                || !text.as_bytes()[after].is_ascii_alphanumeric()
                    && text.as_bytes()[after] != b'_';
            if before_ok && after_ok {
                hits.push((at, marker));
            }
            from = after;
        }
    }
    hits.sort_unstable_by_key(|&(at, _)| at);
    hits
}

//! L8: atomic-ordering audit — every `Ordering::<variant>` use in
//! library code must be covered by the committed per-site allowlist at
//! `tools/atomics-allowlist.txt`.
//!
//! A *site* is `(path, function, method, ordering)`, where the method
//! is the call the ordering is an argument of (`load`, `store`,
//! `fetch_max`, `compare_exchange`, …), with a count for call sites
//! that repeat the same key. An ordering not in the allowlist — a new
//! atomic, or an existing one whose ordering was edited — fails the
//! lint until the allowlist is regenerated (`ktg-lint
//! --update-atomics`) and the diff reviewed. `std::cmp::Ordering` never
//! matches: only the five atomic variants are audited.

use super::{scope_of, Finding, Lint};
use crate::lexer::TokenKind;
use crate::parser::Ast;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The five atomic memory orderings.
const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One audited `Ordering::` use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// Qualified enclosing function (`Owner::name`), or `-` at item level.
    pub func: String,
    /// The method the ordering is passed to, or `-` if none encloses it.
    pub method: String,
    /// The ordering variant.
    pub variant: String,
    /// 1-based source line.
    pub line: u32,
}

/// The committed allowlist: site key → allowed use count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeMap<(String, String, String, String), usize>,
}

impl Allowlist {
    /// Parses the committed file. Lines are
    /// `<path> <fn> <method> <ordering> <count>`; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [path, func, method, variant, count] = fields[..] else {
                return Err(format!(
                    "atomics allowlist line {}: expected `<path> <fn> <method> <ordering> \
                     <count>`, got `{line}`",
                    idx + 1
                ));
            };
            let count: usize = count.parse().map_err(|_| {
                format!("atomics allowlist line {}: bad count `{count}`", idx + 1)
            })?;
            entries.insert(
                (path.to_string(), func.to_string(), method.to_string(), variant.to_string()),
                count,
            );
        }
        Ok(Allowlist { entries })
    }

    /// Renders the canonical file form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Atomic-ordering allowlist (L8). One audited `Ordering::` site per line:\n\
             #   <path> <fn> <method> <ordering> <count>\n\
             # Regenerate with `ktg-lint --update-atomics` and review the diff —\n\
             # an ordering change is a memory-model decision, not a refactor.\n",
        );
        for ((path, func, method, variant), count) in &self.entries {
            let _ = writeln!(out, "{path} {func} {method} {variant} {count}");
        }
        out
    }

    /// Allowed count for a site key.
    fn allowed(&self, path: &str, site: &Site) -> usize {
        self.entries
            .get(&(
                path.to_string(),
                site.func.clone(),
                site.method.clone(),
                site.variant.clone(),
            ))
            .copied()
            .unwrap_or(0)
    }

    /// Builds the allowlist covering exactly the sites in the given
    /// files (the `--update-atomics` path).
    pub fn collect(paths: &[String], asts: &[Ast<'_>]) -> Allowlist {
        let mut entries: BTreeMap<(String, String, String, String), usize> = BTreeMap::new();
        for (fi, ast) in asts.iter().enumerate() {
            if !scope_of(&paths[fi]).lib_code {
                continue;
            }
            for site in sites(ast) {
                *entries
                    .entry((
                        paths[fi].clone(),
                        site.func,
                        site.method,
                        site.variant,
                    ))
                    .or_insert(0) += 1;
            }
        }
        Allowlist { entries }
    }
}

/// Every audited `Ordering::` use in one parsed file (non-test code).
pub fn sites(ast: &Ast<'_>) -> Vec<Site> {
    let tokens = &ast.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ast.in_test[i]
            || tokens[i].text != "Ordering"
            || tokens[i].kind != TokenKind::Ident
            || !super::path_sep(tokens, i + 1)
        {
            continue;
        }
        let Some(variant) = tokens.get(i + 3) else { continue };
        if !VARIANTS.contains(&variant.text) {
            continue; // cmp::Ordering::{Less,Equal,Greater}, or a path prefix
        }
        // The method: the identifier before the `(` that encloses this
        // argument position.
        let mut depth = 0i32;
        let mut method = "-".to_string();
        let mut j = i;
        while j > 0 {
            j -= 1;
            match tokens[j].text {
                ")" | "]" | "}" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth < 0 {
                        if let Some(m) = tokens.get(j.wrapping_sub(1)) {
                            if m.kind == TokenKind::Ident {
                                method = m.text.to_string();
                            }
                        }
                        break;
                    }
                }
                "[" | "{" => depth -= 1,
                ";" if depth == 0 => break, // statement boundary — no enclosing call
                _ => {}
            }
        }
        let func = ast.fn_at(i).map_or_else(|| "-".to_string(), |f| f.qualified());
        out.push(Site { func, method, variant: variant.text.to_string(), line: tokens[i].line });
    }
    out
}

/// Runs the audit over one parsed file.
pub fn lint(relpath: &str, ast: &Ast<'_>, allow: &Allowlist, out: &mut Vec<Finding>) {
    let mut used: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for site in sites(ast) {
        let key = (site.func.clone(), site.method.clone(), site.variant.clone());
        let n = used.entry(key).or_insert(0);
        *n += 1;
        if *n > allow.allowed(relpath, &site) {
            out.push(Finding::new(
                Lint::AtomicOrdering,
                relpath,
                site.line,
                format!(
                    "`{}(Ordering::{})` in `{}` is not covered by tools/atomics-allowlist.txt \
                     — review the memory-ordering choice, then `ktg-lint --update-atomics`",
                    site.method, site.variant, site.func
                ),
            ));
        }
    }
}

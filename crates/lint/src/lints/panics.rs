//! L2: `.unwrap()`, `.expect(`, `panic!` in non-test library code.

use super::{Finding, Lint};
use crate::lexer::{Token, TokenKind};

/// Scans the comment-stripped token stream for panic sites.
pub fn lint(relpath: &str, code: &[Token<'_>], in_test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if in_test[i] || code[i].kind != TokenKind::Ident {
            continue;
        }
        let t = code[i];
        let firing = match t.text {
            "unwrap" | "expect" => {
                i > 0
                    && code[i - 1].text == "."
                    && matches!(code.get(i + 1), Some(n) if n.text == "(")
            }
            "panic" => matches!(code.get(i + 1), Some(n) if n.text == "!"),
            _ => false,
        };
        if firing {
            let what = if t.text == "panic" { "panic!" } else { t.text };
            out.push(Finding::new(
                Lint::PanicInLib,
                relpath,
                t.line,
                format!(
                    "`{what}` in library code — return a `KtgError` (or restructure so the \
                     failure is impossible)"
                ),
            ));
        }
    }
}

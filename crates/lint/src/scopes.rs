//! Per-block scope analysis: statements, lock-guard bindings, and
//! their liveness.
//!
//! The lock-discipline (L7) and fault-site-placement (L9) lints reason
//! about *order within a block*: which guards are live when a lock is
//! acquired, and whether a shared-state write precedes a fault site.
//! This module provides the shared machinery: splitting a function body
//! into statements (`;` at depth 0, nested `{ … }` blocks recursed),
//! recognizing lock-acquisition expressions, and tracking `let`-bound
//! guards until end of scope, `drop(guard)`, or shadowing.
//!
//! The model is deliberately syntactic. It does not chase moves,
//! borrows, or guards returned from helper functions — it recognizes
//! the acquisition *forms this workspace actually uses* (`.lock()`,
//! `.read()`, `.write()` with empty argument lists, and the
//! poison-recovering helpers `lock_mutex` / `read_session` /
//! `write_session`) and classifies each into a lock tier by the
//! identifiers appearing in the receiver expression.

use crate::lexer::{Token, TokenKind};

/// The workspace's fixed lock-acquisition order. A lower tier must
/// never be acquired while a guard from a higher tier is live.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockTier {
    /// Tier 0: the serving session `RwLock` (`ServeSession` behind
    /// `read_session` / `write_session`).
    Session = 0,
    /// Tier 1: a result-cache shard `Mutex` (or the NL expansion shards).
    CacheShard = 1,
    /// Tier 2: a stats stripe `Mutex` (latency rings, counters).
    StatsStripe = 2,
}

impl LockTier {
    /// Display name used in findings.
    pub fn name(self) -> &'static str {
        match self {
            LockTier::Session => "session",
            LockTier::CacheShard => "cache-shard",
            LockTier::StatsStripe => "stats-stripe",
        }
    }
}

/// One recognized lock acquisition.
#[derive(Clone, Debug)]
pub struct Acquisition {
    /// Classified tier, or `None` for locks outside the ordered set.
    pub tier: Option<LockTier>,
    /// Token index of the acquisition method / helper name.
    pub at: usize,
    /// Identifiers of the receiver expression (for diagnostics).
    pub receiver: String,
}

/// A live `let`-bound guard.
#[derive(Clone, Debug)]
pub struct Guard {
    /// The binding name.
    pub name: String,
    /// The tier of the lock it holds, when classified.
    pub tier: Option<LockTier>,
    /// Token index where the guard was bound (for diagnostics).
    pub at: usize,
}

/// The poison-recovering helper functions that return guards.
const HELPERS: [(&str, bool); 3] =
    [("lock_mutex", false), ("read_session", true), ("write_session", true)];

/// Classifies an acquisition by the identifiers around it. `idents` is
/// every identifier in the receiver expression (plus helper arguments).
pub fn classify_tier(idents: &[&str]) -> Option<LockTier> {
    let has = |needles: &[&str]| {
        idents.iter().any(|id| {
            let id = id.to_ascii_lowercase();
            needles.iter().any(|n| id.contains(n))
        })
    };
    if has(&["session"]) {
        Some(LockTier::Session)
    } else if has(&["shard", "cache", "expanded"]) {
        Some(LockTier::CacheShard)
    } else if has(&["stripe", "stats", "latency"]) {
        Some(LockTier::StatsStripe)
    } else {
        None
    }
}

/// Scans `[start, end)` for lock acquisitions:
///
/// * `<recv> . lock ( )` / `. read ( )` / `. write ( )` with an empty
///   argument list (so `file.write(buf)` is never an acquisition);
/// * `lock_mutex(<arg>)` / `read_session()` / `write_session()` calls.
pub fn acquisitions(tokens: &[Token<'_>], start: usize, end: usize) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in start..end.min(tokens.len()) {
        let t = tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let empty_call = |j: usize| {
            matches!(tokens.get(j), Some(p) if p.text == "(")
                && matches!(tokens.get(j + 1), Some(p) if p.text == ")")
        };
        match t.text {
            "lock" | "read" | "write" => {
                let is_method = i > start && tokens[i - 1].text == ".";
                if is_method && empty_call(i + 1) {
                    let recv = receiver_idents(tokens, start, i - 1);
                    let tier = classify_tier(&recv);
                    out.push(Acquisition { tier, at: i, receiver: recv.join(".") });
                }
            }
            name => {
                if let Some(&(_, takes_self)) = HELPERS.iter().find(|(h, _)| *h == name) {
                    let is_call = matches!(tokens.get(i + 1), Some(p) if p.text == "(");
                    // Skip the definition site (`fn lock_mutex(...)`).
                    let is_def = i > 0 && tokens[i - 1].text == "fn";
                    if is_call && !is_def {
                        let mut idents: Vec<&str> = vec![name];
                        if !takes_self {
                            // Classify by the helper's argument idents.
                            let close = arg_close(tokens, i + 1, end);
                            idents.extend(
                                tokens[i + 2..close]
                                    .iter()
                                    .filter(|a| a.kind == TokenKind::Ident)
                                    .map(|a| a.text),
                            );
                        }
                        let tier = classify_tier(&idents);
                        out.push(Acquisition { tier, at: i, receiver: idents.join(".") });
                    }
                }
            }
        }
    }
    out
}

/// Index of the `)` closing the `(` at `open`.
fn arg_close(tokens: &[Token<'_>], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().take(end.min(tokens.len())).skip(open) {
        match t.text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end.min(tokens.len()).saturating_sub(1)
}

/// The identifiers of the method-call receiver ending just before
/// `dot` — walks the chain back over `ident`, `.`, `::`, index
/// brackets and call parens: `self.stripes[stripe]` → `[self,
/// stripes, stripe]`.
fn receiver_idents<'a>(tokens: &[Token<'a>], start: usize, dot: usize) -> Vec<&'a str> {
    let mut idents = Vec::new();
    let mut j = dot; // tokens[dot] is the `.`
    let mut depth = 0usize;
    while j > start {
        j -= 1;
        let t = tokens[j];
        match t.text {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break; // opened the enclosing expression — receiver ended
                }
                depth -= 1;
            }
            "." | ":" | "&" | "*" => {}
            _ if t.kind == TokenKind::Ident => {
                if depth == 0 || depth == 1 {
                    idents.push(t.text);
                }
            }
            _ if depth > 0 => {}
            _ => break,
        }
    }
    idents.reverse();
    idents
}

/// One statement within a block: a token range and the nested blocks it
/// contains.
#[derive(Clone, Debug)]
pub struct Statement {
    /// Token range `[start, end)` of the whole statement.
    pub range: (usize, usize),
    /// Ranges of nested `{ … }` blocks inside the statement (brace
    /// indices inclusive), in source order.
    pub blocks: Vec<(usize, usize)>,
}

/// Splits the body of a block (`open`/`close` are the brace indices)
/// into statements: `;` at depth 0 ends a statement, and a `{ … }` at
/// depth 0 whose close is followed by a statement-starting token also
/// ends one (block expressions, `if`/`match`/loop statements).
pub fn statements(tokens: &[Token<'_>], open: usize, close: usize) -> Vec<Statement> {
    let mut out = Vec::new();
    let mut stmt_start = open + 1;
    let mut blocks = Vec::new();
    let mut depth = 0usize;
    let mut j = open + 1;
    while j < close {
        match tokens[j].text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                let b_close = matching(tokens, j, close);
                blocks.push((j, b_close));
                j = b_close;
                // A block ends its statement (`if`/`match`/loop bodies)
                // unless the expression visibly continues: `else`
                // chains, method calls or `?` on a block expression, a
                // struct literal awaiting its `;`, or a delimiter that
                // means the block sat inside a larger expression.
                let continues = matches!(
                    tokens.get(j + 1).map(|t| t.text),
                    Some("else" | "." | "?" | ";" | "," | ")" | "]" | "}" | "=" | "==")
                ) || j + 1 >= close;
                if !continues {
                    out.push(Statement { range: (stmt_start, j + 1), blocks: blocks.clone() });
                    blocks.clear();
                    stmt_start = j + 1;
                }
            }
            ";" if depth == 0 => {
                out.push(Statement { range: (stmt_start, j + 1), blocks: blocks.clone() });
                blocks.clear();
                stmt_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if stmt_start < close {
        out.push(Statement { range: (stmt_start, close), blocks });
    }
    out
}

/// Index of the `}` matching the `{` at `open`, bounded by `end`.
pub fn matching(tokens: &[Token<'_>], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().take(end.min(tokens.len())).skip(open) {
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end.min(tokens.len()).saturating_sub(1)
}

/// If the statement is a `let <name> = …;` binding, the bound name.
/// `let Some(g) = …` / tuple patterns are not guard bindings here —
/// the workspace binds guards by simple name.
pub fn let_binding<'a>(tokens: &[Token<'a>], stmt: &Statement) -> Option<&'a str> {
    let (s, e) = stmt.range;
    let t = tokens.get(s)?;
    if t.text != "let" {
        return None;
    }
    let mut j = s + 1;
    // Skip `mut`.
    if matches!(tokens.get(j), Some(t) if t.text == "mut") {
        j += 1;
    }
    let name = tokens.get(j)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    // The next meaningful token must be `=` or `:` (a type ascription);
    // `(`/`{` would make it a pattern binding.
    match tokens.get(j + 1).map(|t| t.text) {
        Some("=" | ":") if j + 1 < e => Some(name.text),
        _ => None,
    }
}

/// Whether the statement is `drop ( <name> )`.
pub fn drops<'a>(tokens: &[Token<'a>], stmt: &Statement) -> Option<&'a str> {
    let (s, e) = stmt.range;
    if e.saturating_sub(s) < 4 {
        return None;
    }
    if tokens[s].text == "drop" && tokens[s + 1].text == "(" {
        let name = tokens.get(s + 2)?;
        if name.kind == TokenKind::Ident && tokens.get(s + 3).map(|t| t.text) == Some(")") {
            return Some(name.text);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn toks(src: &str) -> Vec<Token<'_>> {
        lexer::code_tokens(src)
    }

    #[test]
    fn classify_by_identifier() {
        assert_eq!(classify_tier(&["self", "session"]), Some(LockTier::Session));
        assert_eq!(classify_tier(&["shard"]), Some(LockTier::CacheShard));
        assert_eq!(classify_tier(&["self", "stripes", "i"]), Some(LockTier::StatsStripe));
        assert_eq!(classify_tier(&["latency_ring"]), Some(LockTier::StatsStripe));
        assert_eq!(classify_tier(&["shared", "pending"]), None);
    }

    #[test]
    fn method_acquisitions_recognized() {
        let t = toks("let g = self.session.read(); let h = shard.lock();");
        let acqs = acquisitions(&t, 0, t.len());
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].tier, Some(LockTier::Session));
        assert_eq!(acqs[1].tier, Some(LockTier::CacheShard));
    }

    #[test]
    fn write_with_arguments_is_io_not_a_lock() {
        let t = toks("file.write(buf); out.write_all(b); self.session.write();");
        let acqs = acquisitions(&t, 0, t.len());
        assert_eq!(acqs.len(), 1, "{acqs:?}");
        assert_eq!(acqs[0].tier, Some(LockTier::Session));
    }

    #[test]
    fn helper_acquisitions_classified_by_argument() {
        let t = toks("let g = lock_mutex(&self.stripes[i]); let s = read_session();");
        let acqs = acquisitions(&t, 0, t.len());
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].tier, Some(LockTier::StatsStripe));
        assert_eq!(acqs[1].tier, Some(LockTier::Session));
    }

    #[test]
    fn helper_definition_is_not_an_acquisition() {
        let t = toks("fn lock_mutex<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock() }");
        let acqs = acquisitions(&t, 0, t.len());
        // The body's `m.lock()` is found, but the `fn lock_mutex` is not.
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].receiver, "m");
    }

    #[test]
    fn statements_split_on_semicolons_and_blocks() {
        let src = "{ let a = 1; if x { y(); } let b = 2; }";
        let t = toks(src);
        let close = matching(&t, 0, t.len());
        let stmts = statements(&t, 0, close);
        assert_eq!(stmts.len(), 3, "{stmts:?}");
        assert_eq!(stmts[1].blocks.len(), 1);
    }

    #[test]
    fn let_bindings_and_drop() {
        let src = "{ let mut g = m.lock(); drop(g); let (a, b) = pair; }";
        let t = toks(src);
        let close = matching(&t, 0, t.len());
        let stmts = statements(&t, 0, close);
        assert_eq!(let_binding(&t, &stmts[0]), Some("g"));
        assert_eq!(drops(&t, &stmts[1]), Some("g"));
        assert_eq!(let_binding(&t, &stmts[2]), None, "tuple patterns are not guards");
    }

    #[test]
    fn receiver_stops_at_expression_boundary() {
        let t = toks("f(session.read())");
        let acqs = acquisitions(&t, 0, t.len());
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].receiver, "session");
    }
}

//! A workspace-level call graph over the parsed files.
//!
//! Nodes are `fn` items keyed by `<file>::<Owner>::<name>`; edges are
//! syntactic call sites resolved by name. Resolution is deliberately
//! conservative and cheap:
//!
//! * `name(…)` free calls resolve to same-file functions first, then to
//!   `use`-imported names (the import's last segment narrows candidate
//!   files by module name), then to every workspace function of that
//!   name;
//! * `path::name(…)` qualified calls use the qualifying segment to
//!   prefer functions whose file or owner matches it;
//! * `.name(…)` method calls resolve to every impl method of that name
//!   in the workspace.
//!
//! Over-approximation (one call site fanning out to several same-named
//! functions) is safe for both consumers: the transitive-L4 pass only
//! *reports* an edge when the callee provably contains a clock read,
//! and the L10 cancel-threading pass uses reachability of
//! `CancelToken`-aware code, where extra edges can only make an entry
//! point *more* likely to count as aware — never produce a spurious
//! violation on clean code.

use crate::parser::Ast;
use std::collections::BTreeMap;

/// A function node: which file it lives in and which `Ast::fns` slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Index into that file's `Ast::fns`.
    pub item: usize,
}

/// One resolved call edge.
#[derive(Clone, Debug)]
pub struct CallEdge {
    /// The calling function.
    pub caller: FnRef,
    /// The called function.
    pub callee: FnRef,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
    /// The name as written at the call site.
    pub name: String,
    /// Whether the call site resolved to more than one candidate — an
    /// over-approximated edge. Passes that must not report spurious
    /// chains (transitive L4) skip these; passes where extra edges are
    /// safe (L10 awareness) use them.
    pub ambiguous: bool,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every resolved edge.
    pub edges: Vec<CallEdge>,
    /// Per-node outgoing edge indices.
    pub out: BTreeMap<FnRef, Vec<usize>>,
    /// Per-node incoming edge indices.
    pub incoming: BTreeMap<FnRef, Vec<usize>>,
}

/// Words that look like calls but never are.
const NON_CALLS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "else", "let", "move",
];

impl CallGraph {
    /// Builds the graph over `files`: parallel slices of relative path
    /// and parsed AST.
    pub fn build(paths: &[String], asts: &[Ast<'_>]) -> CallGraph {
        // Name → candidate functions, workspace wide.
        let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        for (fi, ast) in asts.iter().enumerate() {
            for (ii, f) in ast.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push(FnRef { file: fi, item: ii });
            }
        }

        let mut edges = Vec::new();
        for (fi, ast) in asts.iter().enumerate() {
            // `use` imports visible in this file: alias → path.
            let imports: BTreeMap<&str, &[String]> =
                ast.uses.iter().map(|u| (u.alias.as_str(), u.path.as_slice())).collect();
            for (ii, f) in ast.fns.iter().enumerate() {
                let Some((open, close)) = f.body else { continue };
                let caller = FnRef { file: fi, item: ii };
                for j in open + 1..close {
                    let t = ast.tokens[j];
                    if t.kind != crate::lexer::TokenKind::Ident
                        || NON_CALLS.contains(&t.text)
                        || !matches!(ast.tokens.get(j + 1), Some(p) if p.text == "(")
                    {
                        continue;
                    }
                    let Some(candidates) = by_name.get(t.text) else { continue };
                    let is_method = j > 0 && ast.tokens[j - 1].text == ".";
                    // A `seg :: name (` qualified call: the segment two
                    // `:`-tokens back.
                    let qualifier = (!is_method
                        && j >= 3
                        && ast.tokens[j - 1].text == ":"
                        && ast.tokens[j - 2].text == ":")
                        .then(|| ast.tokens[j - 3].text);

                    let resolved =
                        resolve(candidates, fi, is_method, qualifier, &imports, paths, asts);
                    let ambiguous = resolved.len() > 1;
                    for callee in resolved {
                        if callee == caller {
                            continue; // recursion adds nothing to either pass
                        }
                        edges.push(CallEdge {
                            caller,
                            callee,
                            line: t.line,
                            name: t.text.to_string(),
                            ambiguous,
                        });
                    }
                }
            }
        }

        let mut out: BTreeMap<FnRef, Vec<usize>> = BTreeMap::new();
        let mut incoming: BTreeMap<FnRef, Vec<usize>> = BTreeMap::new();
        for (idx, e) in edges.iter().enumerate() {
            out.entry(e.caller).or_default().push(idx);
            incoming.entry(e.callee).or_default().push(idx);
        }
        CallGraph { edges, out, incoming }
    }

    /// Marks every function from which some function in `seeds` is
    /// reachable — i.e. propagates a property *backwards* from callees
    /// to callers, returning the full closed set (seeds included).
    pub fn callers_closure(&self, seeds: &[FnRef]) -> Vec<FnRef> {
        self.closure(seeds, false, |e| e.caller, |g, f| g.incoming.get(&f))
    }

    /// [`Self::callers_closure`] restricted to unambiguous edges: the
    /// closure of *provable* callers, for passes that must not report
    /// over-approximated chains.
    pub fn unambiguous_callers_closure(&self, seeds: &[FnRef]) -> Vec<FnRef> {
        self.closure(seeds, true, |e| e.caller, |g, f| g.incoming.get(&f))
    }

    /// Marks every function that can reach some function in `seeds`
    /// forward (callees' closure), returning the closed set.
    pub fn callees_closure(&self, seeds: &[FnRef]) -> Vec<FnRef> {
        self.closure(seeds, false, |e| e.callee, |g, f| g.out.get(&f))
    }

    fn closure(
        &self,
        seeds: &[FnRef],
        skip_ambiguous: bool,
        step: impl Fn(&CallEdge) -> FnRef,
        adjacency: impl Fn(&CallGraph, FnRef) -> Option<&Vec<usize>>,
    ) -> Vec<FnRef> {
        let mut marked: std::collections::BTreeSet<FnRef> = seeds.iter().copied().collect();
        let mut queue: Vec<FnRef> = seeds.to_vec();
        while let Some(f) = queue.pop() {
            if let Some(adj) = adjacency(self, f) {
                for &ei in adj {
                    let e = &self.edges[ei];
                    if skip_ambiguous && e.ambiguous {
                        continue;
                    }
                    let next = step(e);
                    if marked.insert(next) {
                        queue.push(next);
                    }
                }
            }
        }
        marked.into_iter().collect()
    }
}

/// Narrows `candidates` for one call site.
fn resolve(
    candidates: &[FnRef],
    caller_file: usize,
    is_method: bool,
    qualifier: Option<&str>,
    imports: &BTreeMap<&str, &[String]>,
    paths: &[String],
    asts: &[Ast<'_>],
) -> Vec<FnRef> {
    // Same-file candidates win outright: module-local calls are by far
    // the most common and always unambiguous enough.
    if !is_method && qualifier.is_none() {
        let local: Vec<FnRef> =
            candidates.iter().copied().filter(|c| c.file == caller_file).collect();
        if !local.is_empty() {
            return local;
        }
    }
    if is_method {
        // Only impl methods can be called with `.`.
        return candidates
            .iter()
            .copied()
            .filter(|c| asts[c.file].fns[c.item].owner.is_some())
            .collect();
    }
    if let Some(seg) = qualifier {
        // `seg::name(…)`: prefer candidates whose file stem, owner, or
        // an import of `seg` in the calling file matches.
        let import_path = imports.get(seg);
        let narrowed: Vec<FnRef> = candidates
            .iter()
            .copied()
            .filter(|c| {
                let file = &paths[c.file];
                let stem = file
                    .rsplit('/')
                    .next()
                    .and_then(|f| f.strip_suffix(".rs"))
                    .unwrap_or_default();
                let owner_matches =
                    asts[c.file].fns[c.item].owner.as_deref() == Some(seg);
                let module_matches = stem == seg
                    || (stem == "mod" && file.ends_with(&format!("/{seg}/mod.rs")));
                let import_matches = import_path
                    .is_some_and(|p| p.last().is_some_and(|last| last == seg))
                    && module_matches;
                owner_matches || module_matches || import_matches
            })
            .collect();
        if !narrowed.is_empty() {
            return narrowed;
        }
        // `self::f()` / `crate::f()` and other unmatched qualifiers fall
        // back to every candidate.
    }
    candidates.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn graph<'a>(files: &'a [(&str, &str)]) -> (Vec<String>, Vec<Ast<'a>>, CallGraph) {
        let paths: Vec<String> = files.iter().map(|(p, _)| p.to_string()).collect();
        let asts: Vec<Ast<'_>> = files.iter().map(|(_, s)| parser::parse(s)).collect();
        let g = CallGraph::build(&paths, &asts);
        (paths, asts, g)
    }

    fn edge_names(g: &CallGraph) -> Vec<String> {
        g.edges.iter().map(|e| e.name.clone()).collect()
    }

    #[test]
    fn same_file_calls_resolve_locally() {
        let files = [(
            "crates/a/src/lib.rs",
            "fn helper() {} pub fn entry() { helper(); }",
        )];
        let (_, _, g) = graph(&files);
        assert_eq!(edge_names(&g), vec!["helper"]);
        assert_eq!(g.edges[0].caller.item, 1);
        assert_eq!(g.edges[0].callee.item, 0);
    }

    #[test]
    fn cross_file_qualified_calls_narrow_by_module() {
        let files = [
            ("crates/a/src/solve.rs", "pub fn run() {}"),
            ("crates/b/src/other.rs", "pub fn run() {}"),
            ("crates/c/src/lib.rs", "pub fn go() { solve::run(); }"),
        ];
        let (_, _, g) = graph(&files);
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges);
        assert_eq!(g.edges[0].callee.file, 0, "qualifier `solve` picks solve.rs");
    }

    #[test]
    fn method_calls_resolve_to_impl_methods_only() {
        let files = [
            ("crates/a/src/x.rs", "pub fn poll() {}"),
            ("crates/b/src/y.rs", "struct T; impl T { pub fn poll(&self) {} }"),
            ("crates/c/src/z.rs", "pub fn f(t: &T) { t.poll(); }"),
        ];
        let (_, _, g) = graph(&files);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].callee.file, 1, "free fn is not a method candidate");
    }

    #[test]
    fn closures_propagate_both_ways() {
        let files = [(
            "crates/a/src/lib.rs",
            "fn leaf() {} fn mid() { leaf(); } pub fn top() { mid(); }",
        )];
        let (_, _, g) = graph(&files);
        let leaf = FnRef { file: 0, item: 0 };
        let top = FnRef { file: 0, item: 2 };
        let callers = g.callers_closure(&[leaf]);
        assert!(callers.contains(&top), "top reaches leaf transitively");
        let callees = g.callees_closure(&[top]);
        assert!(callees.contains(&leaf));
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let files = [(
            "crates/a/src/lib.rs",
            "pub fn f(x: bool) { if (x) { } match (x) { _ => {} } assert!(x); }",
        )];
        let (_, _, g) = graph(&files);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }
}

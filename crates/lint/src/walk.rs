//! Workspace file discovery.
//!
//! A small recursive walker (the dependency budget excludes `walkdir`)
//! that finds every Rust source file and every `Cargo.toml` under the
//! workspace root, skipping build output, VCS metadata and benchmark
//! artifacts. Paths are returned workspace-relative with `/` separators
//! and sorted, so lint output and baselines are deterministic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own deliberately-violating test corpus.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "bench_results", "node_modules", "fixtures"];

/// The files a lint run operates on, as workspace-relative paths.
#[derive(Debug, Default)]
pub struct WorkspaceFiles {
    /// Every `.rs` file.
    pub rust_sources: Vec<String>,
    /// Every `Cargo.toml`.
    pub manifests: Vec<String>,
}

/// Walks `root` collecting Rust sources and manifests.
pub fn discover(root: &Path) -> io::Result<WorkspaceFiles> {
    let mut files = WorkspaceFiles::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !name.starts_with('.') && !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name == "Cargo.toml" {
                files.manifests.push(relative(root, &path));
            } else if name.ends_with(".rs") {
                files.rust_sources.push(relative(root, &path));
            }
        }
    }
    files.rust_sources.sort();
    files.manifests.sort();
    Ok(files)
}

/// Renders `path` relative to `root` with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lint crate lives inside the workspace it lints: discovery from
    /// the real root must find this very file and skip `target/`.
    #[test]
    fn discovers_own_workspace() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("lint crate lives in a workspace");
        let files = discover(&root).expect("workspace is readable");
        assert!(files.rust_sources.iter().any(|p| p == "crates/lint/src/walk.rs"));
        assert!(files.manifests.iter().any(|p| p == "Cargo.toml"));
        assert!(files.manifests.iter().any(|p| p == "crates/lint/Cargo.toml"));
        assert!(files.rust_sources.iter().all(|p| !p.starts_with("target/")));
        let mut sorted = files.rust_sources.clone();
        sorted.sort();
        assert_eq!(sorted, files.rust_sources, "deterministic order");
    }
}

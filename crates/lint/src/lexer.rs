//! A minimal hand-rolled Rust lexer.
//!
//! The lints need to reason about *code*, not raw bytes: `"unwrap()"`
//! inside a string literal, `// TODO(#1)` inside a doc example, and
//! `.unwrap()` in an actual call chain are three different things that a
//! `grep` cannot tell apart. This lexer tokenizes Rust source far enough
//! to make those distinctions:
//!
//! * line comments (`//`), doc comments (`///`, `//!`) and nested block
//!   comments (`/* /* */ */`, `/** */`, `/*! */`) become [`TokenKind`]
//!   comment tokens carrying their text;
//! * string literals (`"…"` with escapes, raw strings `r"…"` /
//!   `r#"…"#` with any number of hashes, byte/C-string prefixes) and
//!   char literals (`'a'`, `'\''`, `'\u{1F600}'`) become opaque literal
//!   tokens — their *contents* are never scanned by any lint;
//! * lifetimes (`'a`, `'static`) are distinguished from char literals;
//! * identifiers (including raw `r#ident`) and single-char punctuation
//!   carry through with line numbers for reporting.
//!
//! It does **not** build an AST, balance delimiters, or validate the
//! source — rustc does that. It only has to be honest about where code
//! stops and text begins.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident`).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `<`, `{`, ...).
    Punct,
    /// A numeric literal (lumped; lints never inspect numbers).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A `//` comment. `text` includes the slashes, so doc comments are
    /// recognizable by their `///` / `//!` prefix.
    LineComment,
    /// A `/* … */` comment (nesting handled); `text` includes delimiters.
    BlockComment,
}

/// One token: kind, raw text slice, and 1-based line of its first byte.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: &'a str,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is a comment of either flavour.
    #[inline]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is an inner doc comment (`//!` or `/*! … */`).
    #[inline]
    pub fn is_inner_doc(&self) -> bool {
        self.text.starts_with("//!") || self.text.starts_with("/*!")
    }
}

/// Tokenizes `source`, comments included. Unterminated literals and
/// comments are closed at end of input (the lexer never fails: rustc is
/// the arbiter of validity, the linter must just survive anything).
pub fn tokenize(source: &str) -> Vec<Token<'_>> {
    Lexer { src: source.as_bytes(), text: source, pos: 0, line: 1 }.run()
}

/// Tokenizes and drops comments — the view most lints want.
pub fn code_tokens(source: &str) -> Vec<Token<'_>> {
    tokenize(source).into_iter().filter(|t| !t.is_comment()).collect()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut tokens = Vec::new();
        while let Some(&b) = self.src.get(self.pos) {
            let start = self.pos;
            let line = self.line;
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                _ if b.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' => match self.src.get(self.pos + 1) {
                    Some(b'/') => {
                        self.take_line_comment();
                        TokenKind::LineComment
                    }
                    Some(b'*') => {
                        self.take_block_comment();
                        TokenKind::BlockComment
                    }
                    _ => {
                        self.pos += 1;
                        TokenKind::Punct
                    }
                },
                b'"' => {
                    self.take_string();
                    TokenKind::Str
                }
                b'\'' => self.take_char_or_lifetime(),
                b'r' | b'b' | b'c' => {
                    if let Some(len) = raw_or_prefixed_string_len(&self.src[self.pos..]) {
                        self.advance_counting_lines(len);
                        TokenKind::Str
                    } else {
                        self.take_ident();
                        TokenKind::Ident
                    }
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.take_ident();
                    TokenKind::Ident
                }
                _ if b.is_ascii_digit() => {
                    self.take_number();
                    TokenKind::Number
                }
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            tokens.push(Token { kind, text: &self.text[start..self.pos], line });
        }
        tokens
    }

    fn take_line_comment(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn take_block_comment(&mut self) {
        // self.pos is at the leading '/'; consume "/*" then track nesting.
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.src.get(self.pos), self.src.get(self.pos + 1)) {
                (None, _) => break,
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(&b), _) => {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes a `"…"` string starting at the current quote.
    fn take_string(&mut self) {
        self.pos += 1;
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'\\' => self.pos += 2, // skip the escaped byte
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'a` / `'static`
    /// (lifetime / label) starting at the `'`.
    fn take_char_or_lifetime(&mut self) -> TokenKind {
        let rest = &self.src[self.pos + 1..];
        match rest.first() {
            // `'\…'` is always a char literal.
            Some(b'\\') => {
                self.pos += 2; // the quote and the backslash
                // Skip the escape payload up to the closing quote.
                while let Some(&b) = self.src.get(self.pos) {
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                }
                TokenKind::Char
            }
            // `'x'` where x is any single non-quote byte and the next byte
            // is the closing quote.
            Some(_) if rest.get(1) == Some(&b'\'') && rest[0] != b'\'' => {
                self.pos += 3;
                TokenKind::Char
            }
            // `'ident` with no closing quote: a lifetime or label.
            Some(&b) if b == b'_' || b.is_ascii_alphabetic() => {
                self.pos += 1;
                self.take_ident();
                TokenKind::Lifetime
            }
            _ => {
                self.pos += 1;
                TokenKind::Punct
            }
        }
    }

    fn take_ident(&mut self) {
        // Raw identifier prefix `r#ident`.
        if self.src.get(self.pos) == Some(&b'r') && self.src.get(self.pos + 1) == Some(&b'#') {
            self.pos += 2;
        }
        while let Some(&b) = self.src.get(self.pos) {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn take_number(&mut self) {
        // Numbers only need to be skipped coherently: digits, `_`, `.`,
        // radix/exponent letters and suffixes.
        while let Some(&b) = self.src.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                // Don't swallow `..` range operators or method calls on
                // integer literals (`1..n`, `1.max(x)` keeps the dot only
                // when followed by a digit).
                if b == b'.' && !matches!(self.src.get(self.pos + 1), Some(d) if d.is_ascii_digit())
                {
                    break;
                }
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Advances `len` bytes, keeping the line counter honest.
    fn advance_counting_lines(&mut self, len: usize) {
        for &b in &self.src[self.pos..self.pos + len] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos += len;
    }
}

/// If `rest` starts a raw / byte / C string literal (`r"`, `r#"`, `br"`,
/// `b"`, `c"`, `cr#"`, ...), returns the full literal length. Returns
/// `None` when `rest` starts a plain identifier like `raw_ids`.
fn raw_or_prefixed_string_len(rest: &[u8]) -> Option<usize> {
    let mut i = 0;
    // Optional one-letter prefixes: b, c, br, cr — or bare r.
    match rest.first()? {
        b'b' | b'c' => {
            i += 1;
            if rest.get(i) == Some(&b'r') {
                i += 1;
            }
        }
        b'r' => i += 1,
        _ => return None,
    }
    let hashes_start = i;
    while rest.get(i) == Some(&b'#') {
        i += 1;
    }
    let hashes = i - hashes_start;
    if rest.get(i) != Some(&b'"') {
        return None;
    }
    // A raw string (one or more hashes, or bare r"/b"/c") — find the
    // closing quote followed by `hashes` hashes. Escapes are only
    // meaningful in non-raw strings (prefix without `r` and zero hashes).
    let raw = hashes > 0 || rest[..i].contains(&b'r');
    i += 1;
    while i < rest.len() {
        match rest[i] {
            b'\\' if !raw => i += 2,
            b'"' => {
                let close = &rest[i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&h| h == b'#') {
                    return Some(i + 1 + hashes);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Some(rest.len()) // unterminated: consume to EOF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = y.unwrap();");
        assert_eq!(ts[0], (TokenKind::Ident, "let"));
        assert_eq!(ts[3], (TokenKind::Ident, "y"));
        assert_eq!(ts[4], (TokenKind::Punct, "."));
        assert_eq!(ts[5], (TokenKind::Ident, "unwrap"));
    }

    #[test]
    fn string_contents_are_opaque() {
        let ts = kinds(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!ts.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        assert!(!ts.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let ts = kinds(r#""a\"b" c"#);
        assert_eq!(ts[0].0, TokenKind::Str);
        assert_eq!(ts[0].1, r#""a\"b""#);
        assert_eq!(ts[1], (TokenKind::Ident, "c"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside"# ; x"###;
        let ts = kinds(src);
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Str && t.starts_with("r#")));
        assert_eq!(*ts.last().unwrap(), (TokenKind::Ident, "x"));
    }

    #[test]
    fn raw_prefix_vs_identifier() {
        let ts = kinds("let raw_ids = r\"s\"; let b = 1;");
        assert_eq!(ts[1], (TokenKind::Ident, "raw_ids"));
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Str && *t == "r\"s\""));
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "b"));
    }

    #[test]
    fn char_vs_lifetime() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> =
            ts.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = ts.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let src = "//! inner\n/// outer\n// plain\nfn f() {}\n";
        let ts = tokenize(src);
        assert!(ts[0].is_inner_doc());
        assert_eq!(ts[1].kind, TokenKind::LineComment);
        assert!(!ts[1].is_inner_doc());
        assert_eq!(ts[2].kind, TokenKind::LineComment);
        assert_eq!(ts[3].text, "fn");
        assert_eq!(ts[3].line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* outer /* inner */ still outer */ x");
        assert_eq!(ts[0].0, TokenKind::BlockComment);
        assert_eq!(ts[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let ts = kinds(r#"let url = "https://example.org";"#);
        assert!(!ts.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"line1\nline2\";\nlet b = 1;";
        let ts = tokenize(src);
        let b = ts.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let ts = kinds("let x = 1.max(2); let y = 1..3; let z = 1.5;");
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "max"));
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Number && *t == "1.5"));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'"] {
            let _ = tokenize(src);
        }
    }

    #[test]
    fn code_tokens_drops_comments() {
        let ts = code_tokens("// c\nfn f() {} /* d */");
        assert!(ts.iter().all(|t| !t.is_comment()));
        assert_eq!(ts[0].text, "fn");
    }
}

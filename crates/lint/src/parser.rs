//! A lightweight syntactic layer over the lexer.
//!
//! The concurrency lints (L7–L10) and the transitive L4 pass need more
//! structure than a flat token stream: which `fn` a token belongs to,
//! what an `impl` block's type is, where a function's body starts and
//! ends, and what a file `use`s. This module builds exactly that — an
//! item-level view of one file — without becoming a real Rust parser:
//! it balances delimiters and recognizes `fn` / `impl` / `mod` / `use`
//! items, and nothing else. rustc remains the arbiter of validity; the
//! parser only has to agree with it on *where things are*.
//!
//! Everything operates on the comment-stripped code-token stream of
//! [`crate::lexer`], so strings and comments can never confuse item
//! recognition, and token indices returned here index into
//! [`Ast::tokens`].

use crate::lexer::{self, Token, TokenKind};

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// The `impl` type the function belongs to, if any (`Foo` for both
    /// `impl Foo` and `impl Trait for Foo`).
    pub owner: Option<String>,
    /// Whether the function is `pub` (any visibility restriction —
    /// `pub(crate)`, `pub(super)` — still counts as non-private).
    pub is_pub: bool,
    /// Whether the item sits under `#[cfg(test)]` (directly or via an
    /// enclosing module).
    pub in_test: bool,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token range `[open, close]` of the body braces, if the function
    /// has a body (trait declarations do not).
    pub body: Option<(usize, usize)>,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
}

impl FnItem {
    /// `Owner::name` when the function lives in an `impl`, else `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Token range of the signature: `fn` keyword up to (excluding) the
    /// body open brace or the terminating `;`.
    pub fn sig_range(&self) -> (usize, usize) {
        let end = self.body.map_or(usize::MAX, |(open, _)| open);
        (self.sig_start, end)
    }
}

/// One `use` import: the full path and the name it binds locally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseImport {
    /// Path segments, e.g. `["ktg_common", "fault"]`.
    pub path: Vec<String>,
    /// The local binding: the last segment, or the `as` alias.
    pub alias: String,
}

/// The item-level view of one file.
pub struct Ast<'a> {
    /// The comment-stripped code tokens every index below points into.
    pub tokens: Vec<Token<'a>>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` import, with groups (`use a::{b, c}`) expanded.
    pub uses: Vec<UseImport>,
    /// Per-token flag: the token sits inside `#[cfg(test)]`-gated code.
    pub in_test: Vec<bool>,
}

impl Ast<'_> {
    /// The innermost function whose body contains token index `i`.
    pub fn fn_at(&self, i: usize) -> Option<&FnItem> {
        // Innermost = the latest-starting fn whose body spans `i`
        // (nested fns start later than their enclosing fn).
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(open, close)| open <= i && i <= close))
            .max_by_key(|f| f.sig_start)
    }
}

/// Parses one file into its item-level view.
pub fn parse(source: &str) -> Ast<'_> {
    let tokens = lexer::code_tokens(source);
    let in_test = cfg_test_mask(&tokens);
    let mut p = Parser { tokens: &tokens, fns: Vec::new(), uses: Vec::new() };
    p.items(0, tokens.len(), None);
    let Parser { fns, uses, .. } = p;
    let mut fns = fns;
    for f in &mut fns {
        f.in_test = in_test[f.sig_start];
    }
    Ast { tokens, fns, uses, in_test }
}

struct Parser<'t, 'a> {
    tokens: &'t [Token<'a>],
    fns: Vec<FnItem>,
    uses: Vec<UseImport>,
}

impl Parser<'_, '_> {
    /// Walks the items in `[start, end)`, recursing into `impl` and
    /// inline `mod` bodies. `owner` is the enclosing `impl` type.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            match self.tokens[i].text {
                "fn" if self.tokens[i].kind == TokenKind::Ident => {
                    i = self.fn_item(i, end, owner);
                }
                "impl" if self.tokens[i].kind == TokenKind::Ident => {
                    i = self.impl_item(i, end);
                }
                "mod" if self.tokens[i].kind == TokenKind::Ident => {
                    // `mod name { … }`: recurse; `mod name;`: skip.
                    match self.find_at_depth(i + 1, end, &["{", ";"]) {
                        Some(open) if self.tokens[open].text == "{" => {
                            let close = self.matching_brace(open, end);
                            self.items(open + 1, close, None);
                            i = close + 1;
                        }
                        Some(semi) => i = semi + 1,
                        None => i = end,
                    }
                }
                "use" if self.tokens[i].kind == TokenKind::Ident => {
                    i = self.use_item(i, end);
                }
                // Skip token trees we must not scan for the `fn` keyword
                // as an *item* (macro bodies, const initializers with
                // blocks are still fine to enter — a nested `fn` there is
                // a real item for our purposes).
                _ => i += 1,
            }
        }
    }

    fn fn_item(&mut self, at: usize, end: usize, owner: Option<&str>) -> usize {
        let Some(name_tok) = self.tokens.get(at + 1) else { return end };
        if name_tok.kind != TokenKind::Ident {
            return at + 1; // `fn` used as a type (`Fn`-adjacent tokens) — not an item
        }
        let is_pub = self.visibility_before(at);
        // Find the body `{` or declaration-ending `;` at item depth:
        // skip balanced `(…)` / `[…]` / `<…>`-free scanning — braces in a
        // signature only occur inside parens (closure defaults) which the
        // depth counter absorbs.
        let mut depth = 0usize;
        let mut j = at + 2;
        let mut body = None;
        while j < end {
            match self.tokens[j].text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    let close = self.matching_brace(j, end);
                    body = Some((j, close));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        self.fns.push(FnItem {
            name: name_tok.text.to_string(),
            owner: owner.map(str::to_string),
            is_pub,
            in_test: false, // filled in by `parse`
            sig_start: at,
            body,
            line: self.tokens[at].line,
        });
        if let Some((open, close)) = body {
            // Nested fns (rare, but the corpus has them) are items too.
            self.items(open + 1, close, owner);
            close + 1
        } else {
            j + 1
        }
    }

    fn impl_item(&mut self, at: usize, end: usize) -> usize {
        let Some(open) = self.find_at_depth(at + 1, end, &["{"]) else { return end };
        let close = self.matching_brace(open, end);
        let ty = impl_type_name(&self.tokens[at + 1..open]);
        self.items(open + 1, close, ty.as_deref());
        close + 1
    }

    fn use_item(&mut self, at: usize, end: usize) -> usize {
        let Some(semi) = self.find_at_depth(at + 1, end, &[";"]) else { return end };
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(at + 1, semi, &mut prefix);
        semi + 1
    }

    /// Recursively expands a use tree: `a::b::{c, d as e, f::g}`.
    fn use_tree(&mut self, start: usize, end: usize, prefix: &mut Vec<String>) {
        let depth_here = prefix.len();
        let mut i = start;
        while i < end {
            let t = self.tokens[i];
            match (t.kind, t.text) {
                (TokenKind::Ident, "as") => {
                    // `… as alias`: rebind the segment just pushed.
                    if let Some(alias) = self.tokens.get(i + 1) {
                        self.record_use(prefix, alias.text);
                        prefix.truncate(depth_here.max(prefix.len().saturating_sub(1)));
                        // Skip to the next `,` at this level.
                        i = self.find_at_depth(i + 1, end, &[","]).unwrap_or(end);
                    }
                }
                (TokenKind::Ident, _) | (TokenKind::Punct, "*") => {
                    prefix.push(t.text.to_string());
                    // Terminal segment?  (next token is `,`, `}` or end)
                    let next = self.tokens.get(i + 1).map(|t| t.text);
                    let is_terminal = !matches!(next, Some("::"));
                    // The lexer splits `::` into two `:` puncts.
                    let is_path_sep = matches!(next, Some(":"));
                    if is_terminal && !is_path_sep {
                        let followed_by_as =
                            matches!(self.tokens.get(i + 1), Some(n) if n.text == "as");
                        if !followed_by_as {
                            self.record_use(prefix, t.text);
                            prefix.pop();
                        }
                    }
                    i += 1;
                }
                (_, "{") => {
                    let close = self.matching_brace(i, end);
                    // Split the group body on top-level commas.
                    let mut seg_start = i + 1;
                    let mut depth = 0usize;
                    for j in i + 1..close {
                        match self.tokens[j].text {
                            "{" | "(" | "[" => depth += 1,
                            "}" | ")" | "]" => depth = depth.saturating_sub(1),
                            "," if depth == 0 => {
                                self.use_tree(seg_start, j, prefix);
                                seg_start = j + 1;
                            }
                            _ => {}
                        }
                    }
                    if seg_start < close {
                        self.use_tree(seg_start, close, prefix);
                    }
                    prefix.truncate(depth_here);
                    i = close + 1;
                }
                (_, ":") => i += 1, // path separator halves
                (_, ",") => {
                    prefix.truncate(depth_here);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        prefix.truncate(depth_here);
    }

    fn record_use(&mut self, path: &[String], alias: &str) {
        if path.is_empty() || alias == "*" {
            return;
        }
        self.uses.push(UseImport { path: path.to_vec(), alias: alias.to_string() });
    }

    /// First occurrence of any of `what` at delimiter depth 0 in
    /// `[start, end)`.
    fn find_at_depth(&self, start: usize, end: usize, what: &[&str]) -> Option<usize> {
        let mut depth = 0usize;
        for j in start..end.min(self.tokens.len()) {
            let t = self.tokens[j].text;
            if depth == 0 && what.contains(&t) {
                return Some(j);
            }
            match t {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        return None; // left the enclosing scope
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        None
    }

    /// Index of the `}` matching the `{` at `open` (or `end - 1` for
    /// unbalanced input — the parser never panics on bad source).
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        for j in open..end.min(self.tokens.len()) {
            match self.tokens[j].text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        end.min(self.tokens.len()).saturating_sub(1)
    }

    /// Whether the tokens immediately before the `fn` keyword grant
    /// visibility: `pub`, `pub(crate)`, `pub(super)`, `pub(in …)`,
    /// possibly with `const` / `async` / `unsafe` / `extern "C"` between.
    fn visibility_before(&self, at: usize) -> bool {
        let mut j = at;
        while j > 0 {
            j -= 1;
            let t = self.tokens[j];
            match (t.kind, t.text) {
                (TokenKind::Ident, "const" | "async" | "unsafe" | "extern") => continue,
                (TokenKind::Str, _) => continue, // the "C" in `extern "C"`
                (_, ")") => {
                    // Walk back over a `(crate)`-style restriction.
                    let mut depth = 0usize;
                    loop {
                        match self.tokens[j].text {
                            ")" => depth += 1,
                            "(" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            return false;
                        }
                        j -= 1;
                    }
                    continue;
                }
                (TokenKind::Ident, "pub") => return true,
                _ => return false,
            }
        }
        false
    }
}

/// Extracts the type name an `impl` block attaches methods to, from the
/// tokens between `impl` and its `{`: the last path segment of the type
/// (after `for`, if present), with generics stripped.
fn impl_type_name(header: &[Token<'_>]) -> Option<String> {
    // Restrict to the part after `for`, if any (`impl Trait for Type`).
    let after_for = header
        .iter()
        .position(|t| t.kind == TokenKind::Ident && t.text == "for")
        .map_or(header, |p| &header[p + 1..]);
    // Cut a trailing `where` clause.
    let before_where = after_for
        .iter()
        .position(|t| t.kind == TokenKind::Ident && t.text == "where")
        .map_or(after_for, |p| &after_for[..p]);
    // The type's own name is the last ident at angle-depth 0.
    let mut depth = 0usize;
    let mut name = None;
    for t in before_where {
        match t.text {
            "<" => depth += 1,
            ">" => depth = depth.saturating_sub(1),
            _ if depth == 0 && t.kind == TokenKind::Ident => name = Some(t.text.to_string()),
            _ => {}
        }
    }
    name
}

/// Marks the code tokens covered by a `#[cfg(test)]`-gated item (module,
/// function, impl, ...). The gated item ends at the first `;` at top
/// depth or the close of the first `{ … }` block after the attribute.
///
/// `#[cfg(not(test))]` does *not* gate its item out of linting — the
/// `test` ident must not sit inside a `not(…)` group (the purely textual
/// predecessor of this check got that wrong).
pub fn cfg_test_mask(code: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].text == "#" && matches!(code.get(i + 1), Some(t) if t.text == "[") {
            let (content_start, after_bracket) = match matching_bracket(code, i + 1) {
                Some(end) => (i + 2, end + 1),
                None => break,
            };
            let attr = &code[content_start..after_bracket - 1];
            if is_cfg_test_attr(attr) {
                let end = item_end(code, after_bracket);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = after_bracket;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether an attribute body (tokens between `[` and `]`) is a cfg whose
/// predicate enables the item only under `test` — i.e. it mentions
/// `test` at a position not nested under `not(…)`.
fn is_cfg_test_attr(attr: &[Token<'_>]) -> bool {
    if attr.first().map(|t| t.text) != Some("cfg") {
        return false;
    }
    let mut not_depths: Vec<usize> = Vec::new(); // paren depths where a not(…) opened
    let mut depth = 0usize;
    let mut prev_ident = "";
    for t in &attr[1..] {
        match t.text {
            "(" => {
                depth += 1;
                if prev_ident == "not" {
                    not_depths.push(depth);
                }
                prev_ident = "";
            }
            ")" => {
                if not_depths.last() == Some(&depth) {
                    not_depths.pop();
                }
                depth = depth.saturating_sub(1);
                prev_ident = "";
            }
            "test" if t.kind == TokenKind::Ident && not_depths.is_empty() => return true,
            _ => {
                prev_ident = if t.kind == TokenKind::Ident { t.text } else { "" };
            }
        }
    }
    false
}

/// Index one past the `]` matching the `[` at `open`.
pub(crate) fn matching_bracket(code: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open) {
        match t.text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// One past the end of the item starting at `start`: the first `;` at
/// delimiter depth 0, or the close of the first `{ … }` block entered.
pub(crate) fn item_end(code: &[Token<'_>], start: usize) -> usize {
    let mut depth = 0usize;
    let mut entered_block = false;
    for (j, t) in code.iter().enumerate().skip(start) {
        match t.text {
            "{" | "(" | "[" => {
                entered_block |= t.text == "{";
                depth += 1;
            }
            "}" | ")" | "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 && entered_block && t.text == "}" {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
    }
    code.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_free_and_impl_fns() {
        let src = r#"
            pub fn free(x: u32) -> u32 { x }
            struct S;
            impl S {
                fn private(&self) {}
                pub(crate) fn crate_visible(&self) {}
            }
            impl Clone for S {
                fn clone(&self) -> S { S }
            }
        "#;
        let ast = parse(src);
        let names: Vec<String> = ast.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(names, vec!["free", "S::private", "S::crate_visible", "S::clone"]);
        assert!(ast.fns[0].is_pub);
        assert!(!ast.fns[1].is_pub);
        assert!(ast.fns[2].is_pub, "pub(crate) counts as visible");
    }

    #[test]
    fn impl_type_name_handles_generics_and_paths() {
        let src = r#"
            impl<'g> NlIndex<'g> { fn a(&self) {} }
            impl DistanceOracle for bfs::BfsOracle<'_> { fn b(&self) {} }
            impl<T: Clone> Wrapper<T> where T: Send { fn c(&self) {} }
        "#;
        let ast = parse(src);
        let owners: Vec<_> = ast.fns.iter().map(|f| f.owner.clone().unwrap()).collect();
        assert_eq!(owners, vec!["NlIndex", "BfsOracle", "Wrapper"]);
    }

    #[test]
    fn bodies_are_bracketed_and_nested_fns_found() {
        let src = "fn outer() { fn inner() { let x = 1; } inner(); }";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        let outer = &ast.fns[0];
        let inner = &ast.fns[1];
        let (o_open, o_close) = outer.body.unwrap();
        let (i_open, i_close) = inner.body.unwrap();
        assert!(o_open < i_open && i_close < o_close);
        assert_eq!(ast.tokens[o_open].text, "{");
        assert_eq!(ast.tokens[o_close].text, "}");
        // fn_at resolves to the innermost enclosing fn.
        let x_idx = ast.tokens.iter().position(|t| t.text == "x").unwrap();
        assert_eq!(ast.fn_at(x_idx).unwrap().name, "inner");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn required(&self); fn provided(&self) {} }";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 2);
        assert!(ast.fns[0].body.is_none());
        assert!(ast.fns[1].body.is_some());
    }

    #[test]
    fn use_groups_expand() {
        let src = r#"
            use ktg_common::{fault, CancelToken as Token, FxHashMap};
            use std::sync::Mutex;
            use crate::bb::solve;
        "#;
        let ast = parse(src);
        let mut found: Vec<(Vec<String>, String)> =
            ast.uses.iter().map(|u| (u.path.clone(), u.alias.clone())).collect();
        found.sort();
        assert!(found.contains(&(
            vec!["ktg_common".into(), "fault".into()],
            "fault".into()
        )));
        assert!(found.contains(&(
            vec!["ktg_common".into(), "CancelToken".into()],
            "Token".into()
        )));
        assert!(found.contains(&(
            vec!["std".into(), "sync".into(), "Mutex".into()],
            "Mutex".into()
        )));
        assert!(found.contains(&(
            vec!["crate".into(), "bb".into(), "solve".into()],
            "solve".into()
        )));
    }

    #[test]
    fn cfg_test_marks_fns() {
        let src = r#"
            pub fn lib_fn() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        "#;
        let ast = parse(src);
        assert!(!ast.fns.iter().find(|f| f.name == "lib_fn").unwrap().in_test);
        assert!(ast.fns.iter().find(|f| f.name == "helper").unwrap().in_test);
    }

    #[test]
    fn cfg_not_test_is_not_test_gated() {
        let src = r#"
            #[cfg(not(test))]
            fn release_only() {}
            #[cfg(test)]
            fn test_only() {}
            #[cfg(all(feature = "x", not(test)))]
            fn feature_release() {}
            #[cfg(any(test, feature = "slow"))]
            fn test_or_slow() {}
        "#;
        let ast = parse(src);
        let by_name = |n: &str| ast.fns.iter().find(|f| f.name == n).unwrap().in_test;
        assert!(!by_name("release_only"), "not(test) must not exempt from linting");
        assert!(by_name("test_only"));
        assert!(!by_name("feature_release"));
        assert!(by_name("test_or_slow"));
    }

    #[test]
    fn fn_in_string_or_comment_is_not_an_item() {
        let src = r#"
            // fn ghost() {}
            pub fn real() -> &'static str { "fn ghost2() {}" }
        "#;
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "real");
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        for src in ["fn f() {", "impl X {", "use a::{b", "fn"] {
            let _ = parse(src);
        }
    }
}

//! The ratchet baseline.
//!
//! Pre-existing violations are recorded in `tools/lint-baseline.txt` as
//! `<lint-id> <path> <fingerprint> <count>` lines — one entry per
//! *violation* (the fingerprint hashes lint + path + normalized source
//! snippet), not per file. A CI run fails when any finding's
//! fingerprint count exceeds its recorded allowance — so a brand-new
//! violation in an already-dirty file can no longer hide under that
//! file's count, the failure mode of the old per-file format. Fixing
//! violations makes the run report improvements; `ktg-lint
//! --update-baseline` then drops the stale entries so they cannot creep
//! back.
//!
//! The old 3-field `<lint-id> <path> <count>` format is rejected with a
//! migration hint rather than misparsed.

use crate::lints::{Finding, Lint};
use std::collections::BTreeMap;
use std::fmt;

/// Violation counts keyed by `(lint, path, fingerprint)` — the ratchet
/// state. The count absorbs duplicate identical snippets (two
/// `x.unwrap()` on identical normalized lines in one file).
pub type Counts = BTreeMap<(Lint, String, String), usize>;

/// Aggregates findings into baseline-comparable counts.
pub fn count(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts.entry((f.lint, f.path.clone(), f.fingerprint.clone())).or_insert(0) += 1;
    }
    counts
}

/// Parses a baseline file. Unknown lint ids, malformed lines, and the
/// legacy per-file format are reported as errors — a corrupt baseline
/// must not silently allow regressions.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(path), Some(fp), n, None) =
            (parts.next(), parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `<lint> <path> <fingerprint> <count>`",
                idx + 1
            ));
        };
        let Some(lint) = Lint::from_id(id) else {
            return Err(format!("baseline line {}: unknown lint id `{id}`", idx + 1));
        };
        if n.is_none() && fp.chars().all(|c| c.is_ascii_digit()) {
            return Err(format!(
                "baseline line {}: legacy per-file format (`<lint> <path> <count>`) — \
                 regenerate the fingerprint baseline with `ktg-lint --update-baseline`",
                idx + 1
            ));
        }
        let Some(n) = n else {
            return Err(format!(
                "baseline line {}: expected `<lint> <path> <fingerprint> <count>`",
                idx + 1
            ));
        };
        if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!("baseline line {}: bad fingerprint `{fp}`", idx + 1));
        }
        let Ok(n) = n.parse::<usize>() else {
            return Err(format!("baseline line {}: bad count `{n}`", idx + 1));
        };
        if counts.insert((lint, path.to_string(), fp.to_string()), n).is_some() {
            return Err(format!("baseline line {}: duplicate entry for {id} {path} {fp}", idx + 1));
        }
    }
    Ok(counts)
}

/// Renders counts as the canonical baseline file (sorted, commented).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# ktg-lint ratchet baseline: one entry per pre-existing violation,\n\
         #   <lint> <path> <fingerprint> <count>\n\
         # (fingerprint = FNV-1a-64 of lint + path + normalized snippet). A run\n\
         # fails on any finding not covered here. Regenerate with\n\
         #   cargo run -p ktg-lint --offline -- --update-baseline\n\
         # after *fixing* violations; never hand-add entries.\n",
    );
    for ((lint, path, fp), n) in counts {
        if *n > 0 {
            out.push_str(&format!("{} {} {} {}\n", lint.id(), path, fp, n));
        }
    }
    out
}

/// The verdict of a ratchet comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// `(lint, path, fingerprint, current, baseline)` where current > baseline.
    pub regressions: Vec<(Lint, String, String, usize, usize)>,
    /// `(lint, path, fingerprint, current, baseline)` where current < baseline.
    pub improvements: Vec<(Lint, String, String, usize, usize)>,
}

impl Comparison {
    /// Whether the run passes the ratchet.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (lint, path, fp, cur, base) in &self.regressions {
            writeln!(
                f,
                "REGRESSION [{} {}] {} ({fp}): {} violation(s), baseline allows {}",
                lint.id(),
                lint.name(),
                path,
                cur,
                base
            )?;
        }
        for (lint, path, fp, cur, base) in &self.improvements {
            writeln!(
                f,
                "improved  [{} {}] {} ({fp}): {} violation(s), baseline recorded {}",
                lint.id(),
                lint.name(),
                path,
                cur,
                base
            )?;
        }
        Ok(())
    }
}

/// Compares current counts against the baseline.
pub fn compare(current: &Counts, baseline: &Counts) -> Comparison {
    let mut cmp = Comparison::default();
    for ((lint, path, fp), &cur) in current {
        let base = baseline.get(&(*lint, path.clone(), fp.clone())).copied().unwrap_or(0);
        if cur > base {
            cmp.regressions.push((*lint, path.clone(), fp.clone(), cur, base));
        } else if cur < base {
            cmp.improvements.push((*lint, path.clone(), fp.clone(), cur, base));
        }
    }
    // Entries that vanished entirely are improvements too (stale baseline).
    for ((lint, path, fp), &base) in baseline {
        if base > 0 && !current.contains_key(&(*lint, path.clone(), fp.clone())) {
            cmp.improvements.push((*lint, path.clone(), fp.clone(), 0, base));
        }
    }
    cmp.regressions.sort();
    cmp.improvements.sort();
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::fingerprint;

    fn finding(lint: Lint, path: &str, snippet: &str) -> Finding {
        Finding {
            lint,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            fingerprint: fingerprint(lint, path, snippet),
        }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding(Lint::PanicInLib, "crates/a/src/x.rs", "x.unwrap();"),
            finding(Lint::PanicInLib, "crates/a/src/x.rs", "x.unwrap();"),
            finding(Lint::PanicInLib, "crates/a/src/x.rs", "y.expect(\"z\");"),
            finding(Lint::Nondeterminism, "crates/b/src/y.rs", "Instant::now()"),
        ];
        let counts = count(&findings);
        assert_eq!(counts.len(), 3, "identical snippets share one fingerprint");
        let parsed = parse(&render(&counts)).unwrap();
        assert_eq!(counts, parsed);
        let fp = fingerprint(Lint::PanicInLib, "crates/a/src/x.rs", "x.unwrap();");
        assert_eq!(parsed[&(Lint::PanicInLib, "crates/a/src/x.rs".to_string(), fp)], 2);
    }

    #[test]
    fn new_violation_in_dirty_file_regresses() {
        // The per-file count format could not catch this: same file,
        // same lint, same total — but a different violation.
        let baseline = count(&[finding(Lint::PanicInLib, "a.rs", "old.unwrap();")]);
        let current = count(&[finding(Lint::PanicInLib, "a.rs", "new.unwrap();")]);
        let cmp = compare(&current, &baseline);
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.improvements.len(), 1, "the old entry went stale");
    }

    #[test]
    fn duplicate_snippet_count_regresses() {
        let baseline = count(&[finding(Lint::PanicInLib, "a.rs", "x.unwrap();")]);
        let current = count(&[
            finding(Lint::PanicInLib, "a.rs", "x.unwrap();"),
            finding(Lint::PanicInLib, "a.rs", "x.unwrap();"),
        ]);
        let cmp = compare(&current, &baseline);
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions[0].3, 2);
        assert_eq!(cmp.regressions[0].4, 1);
    }

    #[test]
    fn new_file_regresses_from_zero() {
        let cmp =
            compare(&count(&[finding(Lint::DefaultHasher, "new.rs", "HashMap")]), &Counts::new());
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions[0].4, 0);
    }

    #[test]
    fn improvement_passes_and_is_reported() {
        let baseline = count(&[
            finding(Lint::PanicInLib, "a.rs", "x.unwrap();"),
            finding(Lint::PanicInLib, "a.rs", "x.unwrap();"),
            finding(Lint::UntaggedTodo, "gone.rs", "// TODO"),
        ]);
        let current = count(&[finding(Lint::PanicInLib, "a.rs", "x.unwrap();")]);
        let cmp = compare(&current, &baseline);
        assert!(cmp.is_pass());
        assert_eq!(cmp.improvements.len(), 2, "shrunk count + vanished entry");
    }

    #[test]
    fn malformed_baselines_are_errors() {
        let fp = "0123456789abcdef";
        assert!(parse("L2 a.rs").is_err(), "missing fields");
        assert!(parse(&format!("L99 a.rs {fp} 1")).is_err(), "unknown lint");
        assert!(parse(&format!("L2 a.rs {fp} x")).is_err(), "bad count");
        assert!(parse(&format!("L2 a.rs {fp} 1 extra")).is_err(), "trailing field");
        assert!(parse(&format!("L2 a.rs {fp} 1\nL2 a.rs {fp} 2")).is_err(), "duplicate");
        assert!(parse("L2 a.rs zzzz 1").is_err(), "bad fingerprint");
        assert!(parse(&format!("# comment\n\nL2 a.rs {fp} 1\n")).is_ok());
    }

    #[test]
    fn legacy_format_rejected_with_migration_hint() {
        let err = parse("L2 crates/a/src/x.rs 3").unwrap_err();
        assert!(err.contains("legacy"), "{err}");
        assert!(err.contains("--update-baseline"), "{err}");
    }
}

//! The ratchet baseline.
//!
//! Pre-existing violations are recorded in `tools/lint-baseline.txt` as
//! `<lint-id> <path> <count>` lines. A CI run fails only when a file's
//! count for some lint *exceeds* its recorded baseline — so the pass
//! lands green on a codebase with history, while every regression (and
//! every violation in a new file) fails immediately. Fixing violations
//! makes the run report an improvement; `ktg-lint --update-baseline`
//! then tightens the recorded counts so they cannot creep back.

use crate::lints::{Finding, Lint};
use std::collections::BTreeMap;
use std::fmt;

/// Violation counts keyed by `(lint, path)` — the ratchet state.
pub type Counts = BTreeMap<(Lint, String), usize>;

/// Aggregates findings into baseline-comparable counts.
pub fn count(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts.entry((f.lint, f.path.clone())).or_insert(0) += 1;
    }
    counts
}

/// Parses a baseline file. Unknown lint ids and malformed lines are
/// reported as errors — a corrupt baseline must not silently allow
/// regressions.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(path), Some(n), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("baseline line {}: expected `<lint> <path> <count>`", idx + 1));
        };
        let Some(lint) = Lint::from_id(id) else {
            return Err(format!("baseline line {}: unknown lint id `{id}`", idx + 1));
        };
        let Ok(n) = n.parse::<usize>() else {
            return Err(format!("baseline line {}: bad count `{n}`", idx + 1));
        };
        if counts.insert((lint, path.to_string()), n).is_some() {
            return Err(format!("baseline line {}: duplicate entry for {id} {path}", idx + 1));
        }
    }
    Ok(counts)
}

/// Renders counts as the canonical baseline file (sorted, commented).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# ktg-lint ratchet baseline: pre-existing violations per (lint, file).\n\
         # A run fails only when a count here is exceeded. Regenerate with\n\
         #   cargo run -p ktg-lint --offline -- --update-baseline\n\
         # after *reducing* counts; never hand-edit numbers upward.\n",
    );
    for ((lint, path), n) in counts {
        if *n > 0 {
            out.push_str(&format!("{} {} {}\n", lint.id(), path, n));
        }
    }
    out
}

/// The verdict of a ratchet comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// `(lint, path, current, baseline)` where current > baseline.
    pub regressions: Vec<(Lint, String, usize, usize)>,
    /// `(lint, path, current, baseline)` where current < baseline.
    pub improvements: Vec<(Lint, String, usize, usize)>,
}

impl Comparison {
    /// Whether the run passes the ratchet.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (lint, path, cur, base) in &self.regressions {
            writeln!(
                f,
                "REGRESSION [{} {}] {}: {} violation(s), baseline allows {}",
                lint.id(),
                lint.name(),
                path,
                cur,
                base
            )?;
        }
        for (lint, path, cur, base) in &self.improvements {
            writeln!(
                f,
                "improved  [{} {}] {}: {} violation(s), baseline recorded {}",
                lint.id(),
                lint.name(),
                path,
                cur,
                base
            )?;
        }
        Ok(())
    }
}

/// Compares current counts against the baseline.
pub fn compare(current: &Counts, baseline: &Counts) -> Comparison {
    let mut cmp = Comparison::default();
    for ((lint, path), &cur) in current {
        let base = baseline.get(&(*lint, path.clone())).copied().unwrap_or(0);
        if cur > base {
            cmp.regressions.push((*lint, path.clone(), cur, base));
        } else if cur < base {
            cmp.improvements.push((*lint, path.clone(), cur, base));
        }
    }
    // Entries that vanished entirely are improvements too (stale baseline).
    for ((lint, path), &base) in baseline {
        if base > 0 && !current.contains_key(&(*lint, path.clone())) {
            cmp.improvements.push((*lint, path.clone(), 0, base));
        }
    }
    cmp.regressions.sort();
    cmp.improvements.sort();
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: Lint, path: &str) -> Finding {
        Finding { lint, path: path.to_string(), line: 1, message: String::new() }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding(Lint::PanicInLib, "crates/a/src/x.rs"),
            finding(Lint::PanicInLib, "crates/a/src/x.rs"),
            finding(Lint::Nondeterminism, "crates/b/src/y.rs"),
        ];
        let counts = count(&findings);
        let parsed = parse(&render(&counts)).unwrap();
        assert_eq!(counts, parsed);
        assert_eq!(parsed[&(Lint::PanicInLib, "crates/a/src/x.rs".to_string())], 2);
    }

    #[test]
    fn regression_detected() {
        let baseline = count(&[finding(Lint::PanicInLib, "a.rs")]);
        let current = count(&[
            finding(Lint::PanicInLib, "a.rs"),
            finding(Lint::PanicInLib, "a.rs"),
        ]);
        let cmp = compare(&current, &baseline);
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].2, 2);
        assert_eq!(cmp.regressions[0].3, 1);
    }

    #[test]
    fn new_file_regresses_from_zero() {
        let cmp = compare(&count(&[finding(Lint::DefaultHasher, "new.rs")]), &Counts::new());
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions[0].3, 0);
    }

    #[test]
    fn improvement_passes_and_is_reported() {
        let baseline = count(&[
            finding(Lint::PanicInLib, "a.rs"),
            finding(Lint::PanicInLib, "a.rs"),
            finding(Lint::UntaggedTodo, "gone.rs"),
        ]);
        let current = count(&[finding(Lint::PanicInLib, "a.rs")]);
        let cmp = compare(&current, &baseline);
        assert!(cmp.is_pass());
        assert_eq!(cmp.improvements.len(), 2, "shrunk file + vanished file");
    }

    #[test]
    fn malformed_baselines_are_errors() {
        assert!(parse("L2 a.rs").is_err(), "missing count");
        assert!(parse("L9 a.rs 1").is_err(), "unknown lint");
        assert!(parse("L2 a.rs x").is_err(), "bad count");
        assert!(parse("L2 a.rs 1 extra").is_err(), "trailing field");
        assert!(parse("L2 a.rs 1\nL2 a.rs 2").is_err(), "duplicate");
        assert!(parse("# comment\n\nL2 a.rs 1\n").is_ok());
    }
}

pub mod fixture;

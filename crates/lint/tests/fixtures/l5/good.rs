//! Fixture: a crate root with the required doc header.

#![forbid(unsafe_code)]

pub mod fixture;

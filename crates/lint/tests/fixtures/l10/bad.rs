//! Fixture: a solve entry point that cannot be cancelled.

/// Solves the demo query to completion, deadline-blind.
pub fn solve_demo(budget: usize) -> DemoOutcome {
    DemoOutcome { nodes: budget }
}

//! Fixture: the entry point threads a `CancelToken`.

use ktg_common::CancelToken;

/// Solves the demo query, polling the caller's token.
pub fn solve_demo(budget: usize, cancel: &CancelToken) -> DemoOutcome {
    let _ = cancel.is_cancelled();
    DemoOutcome { nodes: budget }
}

//! Fixture: std map with the default (SipHash) hasher.

/// Counts keyword occurrences — iteration order varies per process.
pub fn count(keys: &[u32]) -> std::collections::HashMap<u32, usize> {
    let mut counts = std::collections::HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

//! Fixture: the deterministic Fx hasher via the workspace alias.

use ktg_common::FxHashMap;

/// Counts keyword occurrences with a stable iteration order.
pub fn count(keys: &[u32]) -> FxHashMap<u32, usize> {
    let mut counts = FxHashMap::default();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

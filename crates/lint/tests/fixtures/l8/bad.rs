//! Fixture: an `Ordering::` use absent from the committed allowlist.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps the demo hit counter.
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

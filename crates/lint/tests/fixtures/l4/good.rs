//! Fixture: elapsed time threaded in through a caller-owned stopwatch.

use ktg_common::Stopwatch;

/// Reports elapsed nanoseconds measured by the caller's stopwatch.
pub fn solve_timed(watch: &Stopwatch) -> u64 {
    watch.elapsed_nanos()
}

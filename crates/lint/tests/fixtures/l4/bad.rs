//! Fixture: a wall-clock read in deterministic library scope, plus a
//! caller that reaches it transitively.

use std::time::Instant;

fn clock_nanos() -> u128 {
    Instant::now().elapsed().as_nanos()
}

/// Reports how long the demo solve took — nondeterministic output.
pub fn solve_timed() -> u128 {
    clock_nanos()
}

//! Fixture: the to-do marker carries its issue tag.

/// Widens the demo coverage.
pub fn widen() {
    // TODO(#42): handle the degenerate single-vertex case
}

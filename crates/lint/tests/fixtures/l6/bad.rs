//! Fixture: an untagged to-do marker.

/// Widens the demo coverage.
pub fn widen() {
    // TODO: handle the degenerate single-vertex case
}

//! Fixture: lock-order inversion, and a lock inside `catch_unwind`.

/// Reads a session entry while a cache shard is held — inverted order.
pub fn lookup(&self) -> usize {
    let shard = self.cache_shard.lock();
    let session = self.sessions.read();
    shard.len() + session.len()
}

/// Acquires the stats stripe inside an unwind boundary.
pub fn probe(&self) -> bool {
    std::panic::catch_unwind(|| self.stats_stripe.lock()).is_ok()
}

//! Fixture: locks taken in the committed order, none under unwind.

/// Session first, cache shard second — the global order.
pub fn lookup(&self) -> usize {
    let session = self.sessions.read();
    let shard = self.cache_shard.lock();
    shard.len() + session.len()
}

/// Drops the shard before touching the stats stripe.
pub fn report(&self) -> usize {
    let shard = self.cache_shard.lock();
    let size = shard.len();
    drop(shard);
    let stripe = self.stats_stripe.lock();
    size + stripe.len()
}

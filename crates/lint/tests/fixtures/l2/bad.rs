//! Fixture: a panic site in library code.

/// Parses a port number, panicking on malformed input.
pub fn parse_port(text: &str) -> u16 {
    text.parse().unwrap()
}

//! Fixture: the fallible parse surfaces its error instead of panicking.

/// Parses a port number.
///
/// # Errors
/// Returns the integer-parse error on malformed input.
pub fn parse_port(text: &str) -> Result<u16, std::num::ParseIntError> {
    text.parse()
}

//! Fixture: the fault site lands after the shared-state write.

/// Applies an update, then (too late) offers the fault site.
pub fn apply(&mut self, value: u64) {
    self.total = value;
    fault::inject("demo-apply");
}

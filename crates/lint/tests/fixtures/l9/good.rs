//! Fixture: the fault site precedes the write it makes recoverable.

/// Offers the fault site, then applies the update.
pub fn apply(&mut self, value: u64) {
    fault::inject("demo-apply");
    self.total = value;
}
